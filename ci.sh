#!/usr/bin/env bash
# CI entry point for the immutable-regions workspace.
#
# Stages:
#   1. formatting        — cargo fmt --check
#   2. lints             — cargo clippy, all targets, warnings are errors
#   3. tier-1 verify     — cargo build --release && cargo test -q
#   4. api docs          — cargo doc --no-deps with rustdoc warnings as
#                          errors, so the public API (the IrEngine façade
#                          in particular) stays fully documented
#   5. bench compilation — the criterion benches must at least build
#   6. example smoke     — every example and figure runner runs to completion
#   7. parallel smoke    — every figure runner again at --threads 2, so the
#                          parallel execution layer is exercised in CI; the
#                          table runners emit BENCH_<figure>.json series
#   8. bench baseline    — bench_diff compares the emitted series against
#                          the committed bench_baselines/ (shape and the
#                          deterministic metrics, never wall-clock)
#
# Everything is offline: all dependencies are vendored path crates (see
# vendor/README.md), so this script works without network access.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n=== %s ===\n' "$*"; }

step "1/8 cargo fmt --check"
cargo fmt --all --check

step "2/8 cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "3/8 tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

step "4/8 cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p ir-types -p ir-storage -p ir-geometry -p ir-topk -p ir-core \
    -p ir-datagen -p ir-bench -p immutable-regions

step "5/8 benches compile"
cargo bench --no-run

step "6/8 example + figure-runner smoke loop"
for example in quickstart document_retrieval hotel_sensitivity weight_tuning; do
    printf -- '--- example: %s\n' "$example"
    cargo run --release -q -p immutable-regions --example "$example" >/dev/null
done
# Every figure/ablation runner must complete at smoke scale — compiling is
# not enough, they have runtime config (workload eligibility) to exercise.
for figure_bin in figure06_partitions figure10_wsj_qlen figure11_st_qlen \
    figure12_kb_qlen figure13_vary_k figure14_vary_phi \
    figure15_oneoff_vs_iterative figure16_composition_only \
    ablation_design_choices; do
    printf -- '--- figure runner: %s\n' "$figure_bin"
    IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --bin "$figure_bin" >/dev/null
done

step "7/8 figure runners at --threads 2 (parallel path) + JSON emission"
emit_dir="$(mktemp -d)"
trap 'rm -rf "$emit_dir"' EXIT
for figure_bin in figure06_partitions figure10_wsj_qlen figure11_st_qlen \
    figure12_kb_qlen figure13_vary_k figure14_vary_phi \
    figure15_oneoff_vs_iterative figure16_composition_only \
    ablation_design_choices; do
    printf -- '--- figure runner (threads=2): %s\n' "$figure_bin"
    IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --bin "$figure_bin" -- \
        --threads 2 --emit-json "$emit_dir" >/dev/null
done

step "8/8 bench_diff against committed baseline"
cargo run --release -q -p ir-bench --bin bench_diff -- bench_baselines "$emit_dir"

printf '\nCI OK\n'
