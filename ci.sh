#!/usr/bin/env bash
# CI entry point for the immutable-regions workspace.
#
# Stages:
#   1. formatting        — cargo fmt --check
#   2. lints             — cargo clippy, all targets, warnings are errors,
#                          in both the default and the `mmap` feature config
#   3. tier-1 verify     — cargo build --release && cargo test -q
#   4. feature matrix    — build + test ir-storage and the umbrella crate
#                          with --no-default-features, default features and
#                          --features mmap; grep-assert that
#                          forbid(unsafe_code) is in force for every crate
#                          when `mmap` is off and that no `unsafe` exists
#                          outside the one mmap module
#   5. robustness        — the chaos integration suite (seeded fault plans
#                          against every backend and thread count) in both
#                          the default and the `mmap` feature config, plus
#                          a clippy gate that denies unwrap/expect in the
#                          non-test code of ir-storage and ir-core
#   6. api docs          — cargo doc --no-deps for all nine crates with
#                          rustdoc warnings as errors, so the public API
#                          (the IrEngine façade in particular) stays fully
#                          documented; grep-asserts that the README links
#                          ARCHITECTURE.md and that the doc anchors both
#                          files promise (layer diagram, formats, update
#                          flow, the Dynamic updates section) resolve
#   7. bench compilation — the criterion benches must at least build
#   8. example smoke     — every example and figure runner runs to
#                          completion sequentially (mem backend), emitting
#                          BENCH series for the backend matrix of stage 10
#   9. parallel smoke    — every figure runner again at --threads 2, so the
#                          parallel execution layer is exercised in CI; the
#                          table runners emit BENCH_<figure>.json series
#  10. backend matrix    — every figure runner with --backend mmap at
#                          --threads 1 and 2 plus --backend file at
#                          --threads 2; the emitted deterministic metrics
#                          must match the mem-backend emissions of stages
#                          8/9 *exactly* (bench_diff --exact; io/timing
#                          counters that legitimately differ are never
#                          compared) and the committed baseline within
#                          tolerance; the policy stamps are asserted so a
#                          backend-selection regression cannot make the
#                          matrix pass vacuously
#  11. snapshot matrix   — a figure runner served from a persisted index
#                          snapshot (--snapshot-dir) under every backend
#                          must emit *exactly* the built-index series
#                          (bench_diff --exact), with the policy stamps
#                          asserted ("source":"Snapshot") so a staging
#                          regression cannot pass vacuously; the cold_start
#                          runner then self-checks the snapshot's bring-up
#                          win conditions (pages touched / bytes decoded,
#                          never wall-clock) in both feature configs
#  12. fleet service     — the fleet runner (a SubscriptionManager under a
#                          deterministic drift stream) at smoke scale on the
#                          mem and file backends; the runner self-checks the
#                          serving economics (exit 1 on violation), the two
#                          emissions must match *exactly* (bench_diff
#                          --exact) with the policy stamps asserted, and
#                          both are gated against the committed
#                          bench_baselines/fleet/ baseline
#  13. cluster           — the cluster runner (a ShardedEngine over a
#                          deterministic simulated network) at smoke scale:
#                          1/2/4 shards × both partition modes, two reorder
#                          seeds on the mem backend plus the file backend;
#                          the runner self-checks the determinism contract
#                          (merged output identical to the single-engine
#                          oracle, the 1-shard run identical to the
#                          unsharded engine, conserved message counters;
#                          exit 1 on violation), all three emissions must
#                          agree *exactly* and match the committed
#                          bench_baselines/cluster/ baseline exactly, with
#                          the topology policy stamps asserted
#  14. dynamic updates   — the dynamic runner (a subscription fleet under a
#                          deterministic Zipf-popular tuple-update stream)
#                          at smoke scale on the mem and file backends; the
#                          runner self-checks the update model (survival
#                          majority, maintenance I/O strictly below the
#                          rebuild-per-batch I/O, incremental answers and
#                          maintained region reports byte-identical to a
#                          fresh engine on the mutated dataset, manager and
#                          engine health counters in agreement; exit 1 on
#                          violation), the two emissions must match
#                          *exactly* (bench_diff --exact) with the policy
#                          stamps asserted, and both are gated against the
#                          committed bench_baselines/dynamic/ baseline
#  15. bench baseline    — bench_diff compares the stage-9 series against
#                          the committed bench_baselines/ (shape and the
#                          deterministic metrics, never wall-clock)
#
# Per-stage wall-clock timings are collected and echoed as a summary table
# at the end, so slow stages are visible at a glance in CI logs.
#
# Everything is offline: all dependencies are vendored path crates (see
# vendor/README.md), so this script works without network access.

set -euo pipefail
cd "$(dirname "$0")"

STAGE_NAMES=()
STAGE_SECS=()
CURRENT_STAGE=""
STAGE_START=0

begin_stage() {
    CURRENT_STAGE="$1"
    STAGE_START=$SECONDS
    printf '\n=== %s ===\n' "$1"
}

end_stage() {
    STAGE_NAMES+=("$CURRENT_STAGE")
    STAGE_SECS+=($((SECONDS - STAGE_START)))
}

RUNNER_BINS=(figure06_partitions figure10_wsj_qlen figure11_st_qlen
    figure12_kb_qlen figure13_vary_k figure14_vary_phi
    figure15_oneoff_vs_iterative figure16_composition_only
    ablation_design_choices)

MMAP_FEATURES="ir-storage/mmap,immutable-regions/mmap,ir-bench/mmap,ir-cluster/mmap"

begin_stage "1/15 cargo fmt --check"
cargo fmt --all --check
end_stage

begin_stage "2/15 cargo clippy (default + mmap), warnings are errors"
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --features "$MMAP_FEATURES" -- -D warnings
end_stage

begin_stage "3/15 tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q
end_stage

begin_stage "4/15 feature matrix + no-unsafe assertions"
for crate in ir-storage immutable-regions; do
    for flags in "--no-default-features" "" "--features mmap"; do
        printf -- '--- %s %s\n' "$crate" "${flags:-"(default)"}"
        # shellcheck disable=SC2086
        cargo build --release -q -p "$crate" $flags
        # Test output stays visible so a matrix failure is diagnosable
        # straight from the CI log.
        # shellcheck disable=SC2086
        cargo test -q -p "$crate" $flags
    done
done
# forbid(unsafe_code) must be in force for every crate when `mmap` is off:
# either the plain attribute or the cfg_attr(not(feature = "mmap"), ...)
# form ir-storage uses.
for lib in crates/*/src/lib.rs; do
    if ! grep -Eq 'forbid\(unsafe_code\)' "$lib"; then
        echo "FAIL: $lib does not forbid unsafe_code" >&2
        exit 1
    fi
done
if ! grep -q 'cfg_attr(not(feature = "mmap"), forbid(unsafe_code))' \
    crates/ir-storage/src/lib.rs; then
    echo "FAIL: ir-storage must forbid unsafe_code whenever mmap is off" >&2
    exit 1
fi
# And the bare `unsafe` token must not appear in code position outside the
# one module that owns the mapping code (word match: `unsafe_code` in lint
# attributes does not count; comment/doc lines are filtered out so prose
# may mention the word).
if grep -rnw 'unsafe' crates --include='*.rs' |
    grep -v '^crates/ir-storage/src/mmap\.rs:' |
    grep -vE '^[^:]+:[0-9]+:[[:space:]]*(//|//!|///)'; then
    echo "FAIL: unsafe code outside crates/ir-storage/src/mmap.rs (listed above)" >&2
    exit 1
fi
echo "no-unsafe assertions hold"
end_stage

begin_stage "5/15 robustness: chaos suite + unwrap/expect lint gate"
# The chaos suite injects seeded faults (transients, outages, corruption,
# worker panics) into every backend at 1/2/8 workers and asserts typed
# errors, byte-identical recovery and a serviceable engine afterwards.
cargo test -q -p immutable-regions --test chaos
cargo test -q -p immutable-regions --features mmap --test chaos
# Non-test code in the storage and compute layers must not panic on
# fallible paths: deny unwrap/expect outright (tests keep using them).
cargo clippy -q --no-deps -p ir-storage -p ir-core --lib -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used
cargo clippy -q --no-deps -p ir-storage --features mmap --lib -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used
end_stage

begin_stage "6/15 cargo doc --no-deps (rustdoc warnings are errors) + doc anchors"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p ir-types -p ir-storage -p ir-geometry -p ir-topk -p ir-core \
    -p ir-datagen -p ir-bench -p ir-cluster -p immutable-regions
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p ir-storage --features mmap
# The prose docs must stay wired together: the README links the
# architecture doc, and the section anchors each file promises the other
# (and the ROADMAP/tests reference) actually resolve.
grep -q '(ARCHITECTURE.md)' README.md ||
    { echo "FAIL: README.md does not link ARCHITECTURE.md" >&2; exit 1; }
for anchor in '^## Layer diagram' '^## Determinism and the oracle philosophy' \
    '^## On-disk formats' '^## The update / invalidation data flow'; do
    grep -q "$anchor" ARCHITECTURE.md ||
        { echo "FAIL: ARCHITECTURE.md anchor missing: $anchor" >&2; exit 1; }
done
for anchor in '^## Dynamic updates' '^## Snapshots & cold start' \
    '^## Serving a subscription fleet'; do
    grep -q "$anchor" README.md ||
        { echo "FAIL: README.md anchor missing: $anchor" >&2; exit 1; }
done
echo "doc anchors resolve"
end_stage

begin_stage "7/15 benches compile"
cargo bench --no-run
end_stage

emit_dir_t1="$(mktemp -d)"
emit_dir_t2="$(mktemp -d)"
emit_dir_mmap_t1="$(mktemp -d)"
emit_dir_mmap_t2="$(mktemp -d)"
emit_dir_file_t2="$(mktemp -d)"
snap_root="$(mktemp -d)"
snap_built="$(mktemp -d)"
snap_mem="$(mktemp -d)"
snap_file="$(mktemp -d)"
snap_mmap="$(mktemp -d)"
cold_dir="$(mktemp -d)"
fleet_mem="$(mktemp -d)"
fleet_file="$(mktemp -d)"
cluster_mem="$(mktemp -d)"
cluster_seed2="$(mktemp -d)"
cluster_file="$(mktemp -d)"
dynamic_mem="$(mktemp -d)"
dynamic_file="$(mktemp -d)"
trap 'rm -rf "$emit_dir_t1" "$emit_dir_t2" "$emit_dir_mmap_t1" "$emit_dir_mmap_t2" \
    "$emit_dir_file_t2" "$snap_root" "$snap_built" "$snap_mem" "$snap_file" \
    "$snap_mmap" "$cold_dir" "$fleet_mem" "$fleet_file" \
    "$cluster_mem" "$cluster_seed2" "$cluster_file" \
    "$dynamic_mem" "$dynamic_file"' EXIT

begin_stage "8/15 example + figure-runner smoke loop (sequential, mem)"
for example in quickstart document_retrieval hotel_sensitivity weight_tuning; do
    printf -- '--- example: %s\n' "$example"
    cargo run --release -q -p immutable-regions --example "$example" >/dev/null
done
# Every figure/ablation runner must complete at smoke scale — compiling is
# not enough, they have runtime config (workload eligibility) to exercise.
for figure_bin in "${RUNNER_BINS[@]}"; do
    printf -- '--- figure runner: %s\n' "$figure_bin"
    IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --bin "$figure_bin" -- \
        --emit-json "$emit_dir_t1" >/dev/null
done
end_stage

begin_stage "9/15 figure runners at --threads 2 (parallel path) + JSON emission"
for figure_bin in "${RUNNER_BINS[@]}"; do
    printf -- '--- figure runner (threads=2): %s\n' "$figure_bin"
    IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --bin "$figure_bin" -- \
        --threads 2 --emit-json "$emit_dir_t2" >/dev/null
done
end_stage

begin_stage "10/15 backend matrix: mmap at --threads 1 and 2, file at --threads 2"
for figure_bin in "${RUNNER_BINS[@]}"; do
    printf -- '--- figure runner (mmap, threads=1): %s\n' "$figure_bin"
    IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --features mmap \
        --bin "$figure_bin" -- \
        --backend mmap --emit-json "$emit_dir_mmap_t1" >/dev/null
    printf -- '--- figure runner (mmap, threads=2): %s\n' "$figure_bin"
    IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --features mmap \
        --bin "$figure_bin" -- \
        --backend mmap --threads 2 --emit-json "$emit_dir_mmap_t2" >/dev/null
    printf -- '--- figure runner (file, threads=2): %s\n' "$figure_bin"
    IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --bin "$figure_bin" -- \
        --backend file --threads 2 --emit-json "$emit_dir_file_t2" >/dev/null
done
# Guard against a vacuous matrix: deterministic output is backend-invariant
# by design, so assert via the policy stamps that the alternative backends
# actually ran (a backend-selection regression would otherwise emit mem
# series that compare clean).
for f in "$emit_dir_mmap_t1"/BENCH_*.json "$emit_dir_mmap_t2"/BENCH_*.json; do
    grep -q '"backend":"Mmap"' "$f" ||
        { echo "FAIL: $f was not served by the mmap backend" >&2; exit 1; }
done
for f in "$emit_dir_file_t2"/BENCH_*.json; do
    grep -q '"backend":"File"' "$f" ||
        { echo "FAIL: $f was not served by the file backend" >&2; exit 1; }
done
# The mmap/file emissions must be *exactly* the mem emissions of stages 7/8
# in every deterministic metric (io counters that legitimately differ —
# timing and physical reads — are never part of the comparison)...
cargo run --release -q -p ir-bench --bin bench_diff -- \
    --exact "$emit_dir_t1" "$emit_dir_mmap_t1"
cargo run --release -q -p ir-bench --bin bench_diff -- \
    --exact "$emit_dir_t2" "$emit_dir_mmap_t2"
cargo run --release -q -p ir-bench --bin bench_diff -- \
    --exact "$emit_dir_t2" "$emit_dir_file_t2"
# ...and within tolerance of the committed mem-backend baseline.
cargo run --release -q -p ir-bench --bin bench_diff -- \
    bench_baselines "$emit_dir_mmap_t2"
end_stage

begin_stage "11/15 snapshot matrix: save/reopen under every backend + exact diff"
# Built-index oracle emission for the representative figure (mem, threads 2).
IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --bin figure11_st_qlen -- \
    --threads 2 --emit-json "$snap_built" >/dev/null
# The same figure served from a persisted snapshot under every backend: the
# runner builds once in memory, saves into $snap_root, reopens zero-copy.
printf -- '--- snapshot-served (mem, threads=2)\n'
IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --bin figure11_st_qlen -- \
    --threads 2 --snapshot-dir "$snap_root" --emit-json "$snap_mem" >/dev/null
printf -- '--- snapshot-served (file, threads=2)\n'
IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --bin figure11_st_qlen -- \
    --backend file --threads 2 --snapshot-dir "$snap_root" --emit-json "$snap_file" >/dev/null
printf -- '--- snapshot-served (mmap, threads=2)\n'
IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --features mmap \
    --bin figure11_st_qlen -- \
    --backend mmap --threads 2 --snapshot-dir "$snap_root" --emit-json "$snap_mmap" >/dev/null
# Snapshot-served output must be *exactly* the built-index output in every
# deterministic metric, and the policy stamp must prove the engine really
# came up from a snapshot (guard against a vacuous staging path).
for d in "$snap_mem" "$snap_file" "$snap_mmap"; do
    cargo run --release -q -p ir-bench --bin bench_diff -- --exact "$snap_built" "$d"
    grep -q '"source":"Snapshot"' "$d"/BENCH_*.json ||
        { echo "FAIL: $d was not served from a snapshot" >&2; exit 1; }
done
# The dedicated cold-start runner exits non-zero unless the snapshot open
# beats the build on the deterministic work metrics (bytes decoded on every
# backend, pages touched on file/mmap).
printf -- '--- cold_start runner (default features)\n'
IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --bin cold_start -- \
    --emit-json "$cold_dir"
printf -- '--- cold_start runner (mmap)\n'
IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --features mmap \
    --bin cold_start >/dev/null
grep -q '"source":"Snapshot"' "$cold_dir"/BENCH_coldstart.json ||
    { echo "FAIL: BENCH_coldstart.json carries no snapshot stamp" >&2; exit 1; }
end_stage

begin_stage "12/15 fleet service: drift-stream serving on mem + file backends"
# The fleet runner is self-checking (every event answered exactly once, the
# in-region majority served locally, batches bounded, manager stats equal
# to the engine health counters) and exits non-zero on any violation.
printf -- '--- fleet runner (mem, threads=1)\n'
IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --bin fleet -- \
    --emit-json "$fleet_mem" >/dev/null
printf -- '--- fleet runner (file, threads=2)\n'
IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --bin fleet -- \
    --backend file --threads 2 --emit-json "$fleet_file" >/dev/null
# The serving trace is deterministic, so the two emissions must agree
# exactly; the policy stamps prove both backends actually ran (a
# backend-selection regression would otherwise pass vacuously).
grep -q '"backend":"Mem"' "$fleet_mem"/BENCH_fleet.json ||
    { echo "FAIL: fleet emission was not served by the mem backend" >&2; exit 1; }
grep -q '"backend":"File"' "$fleet_file"/BENCH_fleet.json ||
    { echo "FAIL: fleet emission was not served by the file backend" >&2; exit 1; }
cargo run --release -q -p ir-bench --bin bench_diff -- \
    --exact "$fleet_mem" "$fleet_file"
# And both must match the committed fleet baseline (kept in its own
# subdirectory so the figure-runner baseline stages stay fleet-free).
cargo run --release -q -p ir-bench --bin bench_diff -- \
    bench_baselines/fleet "$fleet_mem"
cargo run --release -q -p ir-bench --bin bench_diff -- \
    bench_baselines/fleet "$fleet_file"
end_stage

begin_stage "13/15 cluster: sharded engine vs oracle, two seeds, mem + file"
# The cluster runner is self-checking (merged regions byte-identical to the
# single-engine oracle at every shard count and partition mode, the 1-shard
# by-query run identical to the unsharded engine's answers, conserved
# message counters) and exits non-zero on any violation.
printf -- '--- cluster runner (mem, seed 49413)\n'
IR_BENCH_SCALE=smoke IR_BENCH_CLUSTER_SEED=49413 \
    cargo run --release -q -p ir-bench --bin cluster -- \
    --emit-json "$cluster_mem" >/dev/null
printf -- '--- cluster runner (mem, seed 77)\n'
IR_BENCH_SCALE=smoke IR_BENCH_CLUSTER_SEED=77 \
    cargo run --release -q -p ir-bench --bin cluster -- \
    --emit-json "$cluster_seed2" >/dev/null
printf -- '--- cluster runner (file, seed 49413)\n'
IR_BENCH_SCALE=smoke IR_BENCH_CLUSTER_SEED=49413 \
    cargo run --release -q -p ir-bench --bin cluster -- \
    --backend file --emit-json "$cluster_file" >/dev/null
# The topology policy stamps prove sharded runs actually happened (an
# unsharded regression would emit "cluster":null and pass vacuously), and
# the backend stamps prove the file matrix leg really left mem.
for d in "$cluster_mem" "$cluster_seed2" "$cluster_file"; do
    grep -q '"cluster":{"shards":4' "$d"/BENCH_cluster.json ||
        { echo "FAIL: $d/BENCH_cluster.json carries no 4-shard topology stamp" >&2; exit 1; }
done
grep -q '"backend":"Mem"' "$cluster_mem"/BENCH_cluster.json ||
    { echo "FAIL: cluster emission was not served by the mem backend" >&2; exit 1; }
grep -q '"backend":"File"' "$cluster_file"/BENCH_cluster.json ||
    { echo "FAIL: cluster emission was not served by the file backend" >&2; exit 1; }
# Delivery order and backend must never leak into the counters: the two
# seeds and the file leg must agree with the mem emission exactly, and all
# of it must match the committed cluster baseline exactly.
cargo run --release -q -p ir-bench --bin bench_diff -- \
    --exact "$cluster_mem" "$cluster_seed2"
cargo run --release -q -p ir-bench --bin bench_diff -- \
    --exact "$cluster_mem" "$cluster_file"
cargo run --release -q -p ir-bench --bin bench_diff -- \
    --exact bench_baselines/cluster "$cluster_mem"
cargo run --release -q -p ir-bench --bin bench_diff -- \
    --exact bench_baselines/cluster "$cluster_file"
end_stage

begin_stage "14/15 dynamic updates: fleet under tuple churn on mem + file backends"
# The dynamic runner is self-checking (most regions survive each update
# batch, maintenance I/O strictly below the rebuild-per-batch I/O, every
# incremental answer and maintained region report byte-identical to a
# fresh engine on the mutated dataset, manager stats equal to the engine
# health counters) and exits non-zero on any violation.
printf -- '--- dynamic runner (mem, threads=1)\n'
IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --bin dynamic -- \
    --emit-json "$dynamic_mem"
printf -- '--- dynamic runner (file, threads=2)\n'
IR_BENCH_SCALE=smoke cargo run --release -q -p ir-bench --bin dynamic -- \
    --backend file --threads 2 --emit-json "$dynamic_file" >/dev/null
# The maintenance trace is deterministic, so the two emissions must agree
# exactly; the policy stamps prove both backends actually ran (a
# backend-selection regression would otherwise pass vacuously).
grep -q '"backend":"Mem"' "$dynamic_mem"/BENCH_dynamic.json ||
    { echo "FAIL: dynamic emission was not served by the mem backend" >&2; exit 1; }
grep -q '"backend":"File"' "$dynamic_file"/BENCH_dynamic.json ||
    { echo "FAIL: dynamic emission was not served by the file backend" >&2; exit 1; }
cargo run --release -q -p ir-bench --bin bench_diff -- \
    --exact "$dynamic_mem" "$dynamic_file"
# And both must match the committed dynamic baseline exactly.
cargo run --release -q -p ir-bench --bin bench_diff -- \
    --exact bench_baselines/dynamic "$dynamic_mem"
cargo run --release -q -p ir-bench --bin bench_diff -- \
    --exact bench_baselines/dynamic "$dynamic_file"
end_stage

begin_stage "15/15 bench_diff against committed baseline"
cargo run --release -q -p ir-bench --bin bench_diff -- \
    bench_baselines "$emit_dir_t2"
end_stage

printf '\n=== stage timing summary ===\n'
printf '%-64s %8s\n' "stage" "seconds"
total=0
for i in "${!STAGE_NAMES[@]}"; do
    printf '%-64s %8s\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
    total=$((total + STAGE_SECS[i]))
done
printf '%-64s %8s\n' "total" "$total"

printf '\nCI OK\n'
