//! Vendored, dependency-free subset of `rand_distr`: the [`Normal`] and
//! [`LogNormal`] distributions (Box–Muller sampling) over the vendored
//! `rand` traits.

pub use rand::distributions::Distribution;
use rand::{Rng, RngCore};

/// Error returned by distribution constructors for invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation (or shape) parameter was negative or NaN.
    BadVariance,
    /// The mean parameter was NaN.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation is negative or NaN"),
            NormalError::MeanTooSmall => write!(f, "mean is NaN"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal<F = f64> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Creates a normal distribution; fails on negative or NaN `std_dev`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if mean.is_nan() {
            return Err(NormalError::MeanTooSmall);
        }
        if std_dev.is_nan() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }
}

/// Draws a standard-normal sample via Box–Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal<F = f64> {
    norm: Normal<F>,
}

impl LogNormal<f64> {
    /// Creates a log-normal distribution with the location and scale of the
    /// underlying normal; fails on negative or NaN `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::{Distribution, LogNormal, Normal};
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let dist = Normal::new(3.0, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(12);
        let dist = LogNormal::new(1.0, 0.6).unwrap();
        for _ in 0..1_000 {
            assert!(dist.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
    }
}
