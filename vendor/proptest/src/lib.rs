//! Vendored, dependency-free subset of `proptest`.
//!
//! Supports the surface this workspace's property suites use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range and tuple
//! strategies, `prop_map`, `collection::{vec, btree_map}`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//! - **Deterministic**: every test derives its RNG seed from
//!   [`ProptestConfig::seed`] (fixed default) and the test name, so suites
//!   are flake-free and reproducible without an external `proptest-regressions`
//!   file.
//! - **No shrinking**: a failing case panics with its inputs unshrunk.

/// The deterministic runner internals.
pub mod test_runner {
    /// Marker returned by `prop_assume!` when a case is rejected.
    #[derive(Clone, Copy, Debug)]
    pub struct Rejected;

    /// xoshiro256** seeded via SplitMix64 — the generator driving all
    /// strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the generator deterministically from a 64-bit seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Returns the next pseudo-random `u64`.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below 0");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Base RNG seed; combined with the test name per test function.
    pub seed: u64,
}

impl ProptestConfig {
    /// Configuration running `cases` cases with the default fixed seed.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }

    /// Pins the base RNG seed explicitly.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            // Fixed default so suites are deterministic out of the box.
            seed: 0x1697_2012_5EED_CAFE,
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64)
                        .wrapping_sub(start as u64)
                        .wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    start + (rng.unit_f64() as $t) * (end - start)
                }
            }
        )*};
    }

    impl_float_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident | $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A | 0, B | 1),
        (A | 0, B | 1, C | 2),
        (A | 0, B | 1, C | 2, D | 3),
        (A | 0, B | 1, C | 2, D | 3, E | 4),
    );
}

/// Collection strategies: `vec` and `btree_map`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;

    /// An inclusive size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.lo == self.hi {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy generating `BTreeMap`s with a size in `size` (best effort
    /// when the key space is too small to reach the target size).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0usize;
            let max_attempts = target * 64 + 128;
            while map.len() < target && attempts < max_attempts {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }
}

/// Everything a property suite needs, importable with one `use`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests. See the crate docs for the
/// supported syntax subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Derive a per-test seed from the base seed and the test name so
            // sibling tests explore different (but fixed) inputs.
            let mut seed: u64 = config.seed;
            for byte in stringify!($name).bytes() {
                seed = seed.wrapping_mul(0x0100_0000_01B3).wrapping_add(byte as u64);
            }
            let mut rng = $crate::test_runner::TestRng::seed_from_u64(seed);
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            while executed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(16).max(1024),
                    "proptest: too many rejected cases in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => executed += 1,
                    ::std::result::Result::Err(_) => continue,
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    (cfg = $cfg:expr;) => {};
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Rejects the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64).with_seed(7))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u8..255, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn maps_hit_target_sizes(m in crate::collection::btree_map(0u32..100, 0.0f64..1.0, 3..=6)) {
            prop_assert!(m.len() >= 3 && m.len() <= 6, "len {}", m.len());
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n != 5);
            prop_assert_ne!(n, 5);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 5..10).prop_map(|v| v);
        let mut a = crate::test_runner::TestRng::seed_from_u64(99);
        let mut b = crate::test_runner::TestRng::seed_from_u64(99);
        for _ in 0..10 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
