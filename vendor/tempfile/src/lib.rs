//! Vendored, dependency-free subset of `tempfile`: [`tempdir`] creating a
//! unique directory under the system temp dir, removed recursively on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A directory deleted (recursively) when the handle is dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Creates a uniquely named temporary directory.
pub fn tempdir() -> std::io::Result<TempDir> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let base = std::env::temp_dir();
    let pid = std::process::id();
    for _ in 0..1024 {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        // Mix in a clock reading so names stay unique across processes that
        // share a pid after recycling.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = base.join(format!(".tmp-ir-{pid}-{n}-{nanos:08x}"));
        match std::fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::AlreadyExists,
        "could not create a unique temporary directory",
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn tempdir_creates_and_cleans_up() {
        let dir = super::tempdir().unwrap();
        let path = dir.path().to_path_buf();
        std::fs::write(path.join("f.txt"), b"x").unwrap();
        assert!(path.join("f.txt").exists());
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn tempdirs_are_unique() {
        let a = super::tempdir().unwrap();
        let b = super::tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
