//! Vendored, dependency-free subset of `rand_chacha`: a real ChaCha8 block
//! cipher core exposed as [`ChaCha8Rng`]. Deterministic under
//! `seed_from_u64`; callers in this workspace rely on determinism, not on
//! bit-compatibility with upstream `rand_chacha` streams.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// The ChaCha stream cipher with 8 rounds, as a deterministic RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    word_idx: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: four column rounds then four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.word_idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64, like
        // upstream rand's `seed_from_u64` default.
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let word = next();
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            word_idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_idx >= 16 {
            self.refill();
        }
        let word = self.block[self.word_idx];
        self.word_idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::ChaCha8Rng;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_floats_cover_the_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
