//! Vendored, dependency-free subset of `serde_json`: compact JSON
//! rendering and parsing over the vendored `serde::Value` tree.

use serde::{DeError, Deserialize, Serialize, Value};

/// Error produced by [`to_string`] or [`from_str`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Rust's shortest-roundtrip float formatting; force a
                // fractional part so the value re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // Real serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Non-BMP characters arrive as a UTF-16 surrogate
                            // pair: a high surrogate followed by `\uXXXX` with
                            // a low surrogate.
                            let code = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error("unpaired high surrogate".into()));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u codepoint".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|e| Error(format!("bad \\u escape: {e}")))?,
            16,
        )
        .map_err(|e| Error(format!("bad \\u escape: {e}")))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(format!("invalid number: {e}")))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrips_nested_values() {
        let v = serde::Value::Map(vec![
            ("a".into(), serde::Value::Seq(vec![serde::Value::I64(-3)])),
            ("b".into(), serde::Value::F64(0.25)),
            ("s".into(), serde::Value::Str("x\"\\\n".into())),
        ]);
        let mut out = String::new();
        super::write_value(&v, &mut out);
        let mut p = super::Parser {
            bytes: out.as_bytes(),
            pos: 0,
        };
        let back = p.parse_value().unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_surrogate_pair_escapes() {
        // Standard JSON encoding of non-BMP characters (here U+1F600).
        let mut p = super::Parser {
            bytes: br#""\ud83d\ude00 ok""#,
            pos: 0,
        };
        assert_eq!(
            p.parse_value().unwrap(),
            serde::Value::Str("\u{1F600} ok".into())
        );
        for bad in [r#""\ud83d""#, r#""\ud83d ""#, r#""\ude00""#] {
            let mut p = super::Parser {
                bytes: bad.as_bytes(),
                pos: 0,
            };
            assert!(p.parse_value().is_err(), "accepted {bad}");
        }
    }
}
