//! Vendored, dependency-free subset of `serde_derive`.
//!
//! Hand-parses the derive input token stream (no `syn`/`quote`, since the
//! build environment has no network access) and emits implementations of the
//! vendored `serde::Serialize` / `serde::Deserialize` traits, which model
//! values as a small JSON-like tree (`serde::Value`).
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs with named fields
//! - tuple structs (newtype and wider)
//! - unit structs
//! - enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation)
//!
//! Not supported: generics, `#[serde(...)]` attributes (none exist in this
//! tree), and exotic representations.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Splits a token stream on top-level commas, tracking `<`/`>` depth so that
/// commas inside generic arguments (e.g. `BTreeMap<u32, f64>`) do not split.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Extracts the field name from one named-field segment
/// (`#[attr]* pub? name: Type`).
fn field_name(segment: &[TokenTree]) -> Option<String> {
    let mut iter = segment.iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            TokenTree::Ident(id) => return Some(id.to_string()),
            _ => return None,
        }
    }
    None
}

fn named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .iter()
        .filter_map(|seg| field_name(seg))
        .collect()
}

fn enum_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    for segment in split_top_level(stream) {
        let mut name = None;
        let mut kind = VariantKind::Unit;
        let mut iter = segment.into_iter().peekable();
        while let Some(tt) = iter.next() {
            match tt {
                TokenTree::Punct(ref p) if p.as_char() == '#' => {
                    iter.next();
                }
                TokenTree::Ident(id) => {
                    name = Some(id.to_string());
                    match iter.peek() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            kind = VariantKind::Tuple(split_top_level(g.stream()).len());
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            kind = VariantKind::Struct(named_fields(g.stream()));
                        }
                        _ => {}
                    }
                    break;
                }
                _ => {}
            }
        }
        if let Some(name) = name {
            variants.push(Variant { name, kind });
        }
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(ref p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("serde_derive: expected struct name, got {other:?}"),
                };
                return match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Shape::NamedStruct {
                            name,
                            fields: named_fields(g.stream()),
                        }
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Shape::TupleStruct {
                            name,
                            arity: split_top_level(g.stream()).len(),
                        }
                    }
                    _ => Shape::UnitStruct { name },
                };
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("serde_derive: expected enum name, got {other:?}"),
                };
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Shape::Enum {
                            name,
                            variants: enum_variants(g.stream()),
                        };
                    }
                    other => panic!("serde_derive: expected enum body, got {other:?}"),
                }
            }
            _ => {}
        }
    }
    panic!("serde_derive: input is neither a struct nor an enum");
}

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(unused_variables, unreachable_patterns, clippy::all)]\n";

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(::std::vec![{entries}])\n}}\n}}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
             ::serde::Serialize::to_value(&self.0)\n}}\n}}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Seq(::std::vec![{items}])\n}}\n}}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Seq(::std::vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Map(::std::vec![{entries}]))]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}\n}}\n}}\n}}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         __v.expect_field(\"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n}}\n}}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::DeError> {{\n\
             ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n}}\n}}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
                .collect();
            format!(
                "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let __items = __v.expect_seq({arity})?;\n\
                 ::std::result::Result::Ok({name}({items}))\n}}\n}}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::DeError> {{\n\
             ::std::result::Result::Ok({name})\n}}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__val)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: String = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?,")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __items = __val.expect_seq({n})?; \
                                 ::std::result::Result::Ok({name}::{vn}({items})) }}"
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         __val.expect_field(\"{f}\")?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok(\
                                 {name}::{vn} {{ {inits} }}),"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__key, __val) = &__entries[0];\n\
                 match __key.as_str() {{\n\
                 {data_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"invalid value for enum {name}: {{__other:?}}\"))),\n\
                 }}\n}}\n}}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
