//! Vendored, dependency-free subset of `criterion`.
//!
//! Implements the macro and builder surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `BenchmarkId`, `Bencher::iter`) with a simple wall-clock timer: each
//! benchmark is warmed up once, then timed over enough iterations to fill a
//! short measurement window, and the mean time per iteration is printed.
//! There is no statistical analysis, HTML report, or CLI filtering.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id composed of a function name and a parameter, rendered as
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the closure given to `bench_function`; drives the timing loop.
pub struct Bencher {
    total: Duration,
    iterations: u64,
    measurement_window: Duration,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until the measurement window
    /// is filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call outside the measurement.
        black_box(routine());
        let window_start = Instant::now();
        loop {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iterations += 1;
            if window_start.elapsed() >= self.measurement_window {
                break;
            }
        }
    }
}

/// The benchmark driver. Collects and prints per-benchmark timings.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_window: Duration::from_millis(300),
        }
    }
}

fn run_bench(
    group: Option<&str>,
    id: &BenchmarkId,
    window: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let label = match group {
        Some(g) => format!("{g}/{}", id.0),
        None => id.0.clone(),
    };
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iterations: 0,
        measurement_window: window,
    };
    f(&mut bencher);
    let per_iter = if bencher.iterations > 0 {
        bencher.total / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "{label:<60} {:>12.3?}/iter ({} iterations)",
        per_iter, bencher.iterations
    );
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_bench(None, &id.into(), self.measurement_window, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by wall-clock
    /// window rather than sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            Some(&self.name),
            &id.into(),
            self.criterion.measurement_window,
            &mut f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(10);
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_and_bencher_run() {
        let mut criterion = Criterion {
            measurement_window: Duration::from_millis(5),
        };
        sample_bench(&mut criterion);
        criterion.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
