//! Vendored, dependency-free subset of `rand` 0.8.
//!
//! Provides the traits the workspace uses ([`RngCore`], [`Rng`],
//! [`SeedableRng`], [`seq::SliceRandom`]) plus the [`distributions`]
//! machinery backing `rng.gen()` and `rand_distr`. Determinism is the only
//! contract callers rely on (all seeding in this repo is explicit), so the
//! generators do not bit-match upstream `rand` streams.

/// A low-level source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution
    /// (uniform over `[0, 1)` for floats, uniform over all values for
    /// integers).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distributions and uniform-range sampling.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }

    /// The "natural" distribution of a type: uniform `[0, 1)` for floats,
    /// uniform over the whole value range for integers and `bool`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    /// Converts a random `u64` into a uniform `f64` in `[0, 1)` using the
    /// top 53 bits.
    pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Ranges that can be sampled uniformly, mirroring
    /// `rand::distributions::uniform::SampleRange`.
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for ::std::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    // Multiply-shift bounded sampling (Lemire); the slight
                    // modulo-free bias is irrelevant for test workloads.
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start.wrapping_add(hi as $t)
                }
            }

            impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    if start == <$t>::MIN && end == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    start.wrapping_add(hi as $t)
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for ::std::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    self.start + (unit_f64(rng) as $t) * (self.end - self.start)
                }
            }

            impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    start + (unit_f64(rng) as $t) * (end - start)
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = ((rng.next_u64() as u128 * (self.len() as u128)) >> 64) as usize;
                Some(&self[i])
            }
        }
    }
}

/// SplitMix64: used to expand user seeds into generator state.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast default generator (xoshiro256**), available as
/// `rand::rngs::SmallRng`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — deterministic, high-quality, and tiny.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = super::rngs::SmallRng::seed_from_u64(42);
        let mut b = super::rngs::SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.gen();
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x, b.gen::<f64>());
            let n = a.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            b.gen_range(3usize..17);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = super::rngs::SmallRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
