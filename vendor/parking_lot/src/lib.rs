//! Vendored, dependency-free subset of `parking_lot`: [`Mutex`] and
//! [`RwLock`] with the un-poisonable `lock()` / `read()` / `write()` API,
//! implemented over `std::sync` primitives (a poisoned std lock is
//! recovered rather than propagated, matching parking_lot semantics).

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
