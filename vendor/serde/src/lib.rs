//! Vendored, dependency-free subset of `serde`.
//!
//! The build environment has no access to crates.io, so this crate models
//! the fraction of serde's surface the workspace uses: derivable
//! [`Serialize`] / [`Deserialize`] traits over a JSON-like [`Value`] tree.
//! The companion `serde_json` stub renders and parses that tree as real
//! JSON, so `serde_json::to_string` / `from_str` round trips behave as the
//! callers expect.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the intermediate representation every
/// serializable type converts to and from.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer outside the `i64` range.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object, with insertion order preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object, erroring when missing or non-object.
    pub fn expect_field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::custom(format!("missing field `{name}`"))),
            other => Err(DeError::custom(format!(
                "expected object with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Interprets the value as an array of exactly `n` elements.
    pub fn expect_seq(&self, n: usize) -> Result<&[Value], DeError> {
        match self {
            Value::Seq(items) if items.len() == n => Ok(items),
            other => Err(DeError::custom(format!(
                "expected array of {n} elements, got {other:?}"
            ))),
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the JSON-like intermediate representation.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the JSON-like intermediate representation.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    ref other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::F64(f) => Ok(f as $t),
                    Value::I64(n) => Ok(n as $t),
                    Value::U64(n) => Ok(n as $t),
                    ref other => Err(DeError::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::custom(format!("expected char, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Deserialize::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Deserialize::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.expect_seq(2)?;
        Ok((
            Deserialize::from_value(&items[0])?,
            Deserialize::from_value(&items[1])?,
        ))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.expect_seq(3)?;
        Ok((
            Deserialize::from_value(&items[0])?,
            Deserialize::from_value(&items[1])?,
            Deserialize::from_value(&items[2])?,
        ))
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs: u64 = Deserialize::from_value(v.expect_field("secs")?)?;
        let nanos: u32 = Deserialize::from_value(v.expect_field("nanos")?)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

/// Map keys rendered as JSON object keys.
pub trait SerializeKey {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
}

/// Map keys parsed back from JSON object keys.
pub trait DeserializeKey: Sized + Ord {
    /// Parses the key from a JSON object key.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl SerializeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}

impl DeserializeKey for String {
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_serde_numeric_key {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
        }
        impl DeserializeKey for $t {
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse()
                    .map_err(|_| DeError::custom(format!("invalid map key `{key}`")))
            }
        }
    )*};
}

impl_serde_numeric_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: SerializeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: DeserializeKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: SerializeKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: DeserializeKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}
