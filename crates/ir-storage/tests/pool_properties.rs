//! Property and concurrency tests for the storage layer: the buffer pool
//! must be transparent (reads through any pool size return identical data)
//! and safe to share across threads, and the index layout must round-trip
//! arbitrary datasets.

use ir_storage::{BufferPool, IndexBuilder, MemPageStore, PageId, PageStore, TopKIndex, PAGE_SIZE};
use ir_types::{Dataset, DatasetBuilder, DimId, TupleId};
use proptest::prelude::*;
use std::sync::Arc;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    let dims = 8u32;
    let tuple = proptest::collection::btree_map(0..dims, 0.001f64..1.0, 0..=dims as usize);
    proptest::collection::vec(tuple, 1..80).prop_map(move |tuples| {
        let mut builder = DatasetBuilder::new(dims);
        for t in tuples {
            builder.push_pairs(t).unwrap();
        }
        builder.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32).with_seed(0xB00C_0001))]

    /// Every tuple and every inverted list survives the round trip through
    /// the paged layout, regardless of the buffer-pool capacity.
    #[test]
    fn index_round_trips_arbitrary_datasets(dataset in dataset_strategy(), pool in 1usize..64) {
        let index = IndexBuilder::new().pool_capacity(pool).build(&dataset).unwrap();
        prop_assert_eq!(index.cardinality(), dataset.cardinality());
        for (id, tuple) in dataset.iter() {
            prop_assert_eq!(&index.fetch_tuple(id).unwrap(), tuple);
        }
        // Each inverted list is sorted by decreasing value and contains
        // exactly the tuples with a non-zero coordinate.
        for dim in 0..dataset.dimensionality() {
            let dim = DimId(dim);
            let mut cursor = index.list_cursor(dim).unwrap();
            let mut prev = f64::INFINITY;
            let mut count = 0usize;
            while let Some((id, value)) = cursor.next_entry().unwrap() {
                prop_assert!(value <= prev);
                prev = value;
                prop_assert!((dataset.coordinate(id, dim) - value).abs() < 1e-12);
                count += 1;
            }
            let expected = dataset
                .iter()
                .filter(|(_, t)| t.get(dim) > 0.0)
                .count();
            prop_assert_eq!(count, expected);
        }
    }

    /// Logical read counts do not depend on the pool capacity, physical
    /// reads never exceed logical reads, and a second identical scan through
    /// a large-enough pool performs no further physical reads.
    #[test]
    fn io_accounting_is_consistent(dataset in dataset_strategy()) {
        prop_assume!(dataset.cardinality() > 0);
        let tiny = IndexBuilder::new().pool_capacity(1).build(&dataset).unwrap();
        let large = IndexBuilder::new().pool_capacity(4096).build(&dataset).unwrap();
        for index in [&tiny, &large] {
            index.cold_start();
            for (id, _) in dataset.iter() {
                index.fetch_tuple(id).unwrap();
            }
        }
        let a = tiny.io_snapshot();
        let b = large.io_snapshot();
        prop_assert_eq!(a.logical_reads, b.logical_reads);
        prop_assert!(a.physical_reads >= b.physical_reads);
        prop_assert!(a.physical_reads <= a.logical_reads);

        // Second pass over the warm large pool: zero physical reads.
        large.reset_io_stats();
        for (id, _) in dataset.iter() {
            large.fetch_tuple(id).unwrap();
        }
        prop_assert_eq!(large.io_snapshot().physical_reads, 0);
    }
}

#[test]
fn buffer_pool_is_thread_safe() {
    // Many threads hammer the same small pool; every read must return the
    // page content that was written, and the counters must add up.
    let store = Arc::new(MemPageStore::new());
    store.allocate(16).unwrap();
    let pool = Arc::new(BufferPool::with_capacity(
        Arc::clone(&store) as Arc<dyn ir_storage::PageStore>,
        4,
    ));
    for page in 0..16u32 {
        let mut data = vec![0u8; PAGE_SIZE];
        data[0] = page as u8;
        pool.write(PageId(page), &data).unwrap();
    }
    let mut handles = Vec::new();
    for t in 0..4 {
        let pool = Arc::clone(&pool);
        handles.push(std::thread::spawn(move || {
            for i in 0..500u32 {
                let page = (i * 7 + t) % 16;
                let data = pool.read(PageId(page)).unwrap();
                assert_eq!(data[0], page as u8);
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let snap = pool.io_snapshot();
    assert_eq!(snap.logical_reads, 4 * 500);
    assert!(snap.physical_reads <= snap.logical_reads);
}

#[test]
fn index_is_shareable_across_threads() {
    // The index (and its pool) can serve concurrent readers — e.g. several
    // queries computing regions in parallel.
    let mut builder = DatasetBuilder::new(4);
    for i in 0..500u32 {
        builder
            .push_pairs([(i % 4, ((i % 89) + 1) as f64 / 100.0)])
            .unwrap();
    }
    let dataset = builder.build();
    let index = Arc::new(TopKIndex::build_in_memory(&dataset).unwrap());
    let mut handles = Vec::new();
    for t in 0..4u32 {
        let index = Arc::clone(&index);
        handles.push(std::thread::spawn(move || {
            for i in 0..200u32 {
                let id = TupleId((i * 13 + t * 31) % 500);
                let tuple = index.fetch_tuple(id).unwrap();
                assert!(tuple.nnz() <= 1);
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
}
