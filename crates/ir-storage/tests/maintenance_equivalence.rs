//! The storage-level oracle law of the dynamic update model: after **any**
//! sequence of [`TupleUpdate`] batches, a maintained [`TopKIndex`] is
//! logically identical to an index freshly built from the mutated dataset —
//! same list contents in the same stored order, same tuple vectors, same
//! cardinality. Plus the physical properties maintenance promises: free
//! page runs are recycled, relocations are counted, maintenance I/O lands
//! in its own counters, and a snapshot saved mid-churn reopens as the
//! mutated state.

use ir_storage::{IndexBuilder, StorageBackend, TopKIndex};
use ir_types::{Dataset, DatasetBuilder, DimId, SeededLcg, SparseVector, TupleId, TupleUpdate};

/// Entries of one inverted list in stored order, read through a cursor.
fn list_entries(index: &TopKIndex, dim: u32) -> Vec<(TupleId, f64)> {
    let mut cursor = index.list_cursor(DimId(dim)).unwrap();
    std::iter::from_fn(|| cursor.next_entry().unwrap()).collect()
}

/// Asserts the maintained index and a fresh build of `dataset` agree on
/// every list and every tuple.
fn assert_matches_fresh_build(maintained: &TopKIndex, dataset: &Dataset) {
    let fresh = TopKIndex::build_in_memory(dataset).unwrap();
    assert_eq!(maintained.cardinality(), fresh.cardinality());
    assert_eq!(maintained.dimensionality(), fresh.dimensionality());
    for dim in 0..dataset.dimensionality() {
        assert_eq!(
            list_entries(maintained, dim),
            list_entries(&fresh, dim),
            "list {dim} diverged from a fresh build"
        );
    }
    for id in 0..dataset.cardinality() as u32 {
        assert_eq!(
            maintained.fetch_tuple(TupleId(id)).unwrap(),
            fresh.fetch_tuple(TupleId(id)).unwrap(),
            "tuple {id} diverged from a fresh build"
        );
    }
}

fn vector(pairs: &[(u32, f64)]) -> SparseVector {
    SparseVector::from_pairs(pairs.iter().copied()).unwrap()
}

#[test]
fn insert_delete_and_rescore_match_a_fresh_build() {
    let mut dataset = Dataset::running_example();
    let index = TopKIndex::build_in_memory(&dataset).unwrap();
    let updates = vec![
        TupleUpdate::Insert {
            vector: vector(&[(0, 0.95), (1, 0.15)]),
        },
        TupleUpdate::Delete { tuple: TupleId(1) },
        TupleUpdate::UpdateScore {
            tuple: TupleId(0),
            dim: DimId(1),
            value: 0.9,
        },
        // Inserted above at id 4, mutated inside the same batch.
        TupleUpdate::UpdateScore {
            tuple: TupleId(4),
            dim: DimId(0),
            value: 0.0,
        },
    ];
    let applied = index.apply_updates(&updates).unwrap();
    assert_eq!(applied.len(), 4);
    assert_eq!(applied[0].tuple, TupleId(4));
    assert!(applied[0].old_vector.is_empty());
    assert_eq!(applied[1].new_vector, SparseVector::new());
    assert_eq!(applied[3].old_vector, applied[0].new_vector);
    for update in &updates {
        dataset.apply_update(update).unwrap();
    }
    assert_matches_fresh_build(&index, &dataset);

    let stats = index.maintenance_stats();
    assert_eq!(stats.updates_applied, 4);
    assert_eq!(stats.batches, 1);
    assert!(stats.lists_rewritten >= 2, "both dimensions changed");
    assert!(
        stats.pages_written > 0,
        "maintenance I/O must be attributed"
    );
}

#[test]
fn an_invalid_update_rejects_the_whole_batch() {
    let dataset = Dataset::running_example();
    let index = TopKIndex::build_in_memory(&dataset).unwrap();
    let batch = vec![
        TupleUpdate::Delete { tuple: TupleId(0) },
        TupleUpdate::UpdateScore {
            tuple: TupleId(99),
            dim: DimId(0),
            value: 0.5,
        },
    ];
    assert!(index.apply_updates(&batch).is_err());
    // Nothing was applied: the index still matches the unmutated dataset.
    assert_matches_fresh_build(&index, &dataset);
    assert_eq!(index.maintenance_stats().updates_applied, 0);
}

#[test]
fn randomized_churn_matches_a_fresh_build_after_every_batch() {
    // A seeded mixed-operation stream over a dataset large enough that
    // lists span several pages and the tuple region relocates.
    let mut builder = DatasetBuilder::new(6);
    let mut rng = SeededLcg::mixed(0xD11A);
    for _ in 0..500 {
        let mut pairs: Vec<(u32, f64)> = Vec::new();
        for d in 0..6u32 {
            if rng.next_below(3) > 0 {
                pairs.push((d, (rng.next_below(999) + 1) as f64 / 1000.0));
            }
        }
        builder.push_pairs(pairs).unwrap();
    }
    let mut dataset = builder.build();
    let index = TopKIndex::build_in_memory(&dataset).unwrap();

    for _batch in 0..12 {
        let mut updates = Vec::new();
        for _ in 0..40 {
            let card = dataset.cardinality() as u64;
            match rng.next_below(4) {
                0 => {
                    let mut pairs: Vec<(u32, f64)> = Vec::new();
                    for d in 0..6u32 {
                        if rng.next_below(2) == 0 {
                            pairs.push((d, (rng.next_below(999) + 1) as f64 / 1000.0));
                        }
                    }
                    updates.push(TupleUpdate::Insert {
                        vector: vector(&pairs),
                    });
                }
                1 => updates.push(TupleUpdate::Delete {
                    tuple: TupleId(rng.next_below(card) as u32),
                }),
                _ => updates.push(TupleUpdate::UpdateScore {
                    tuple: TupleId(rng.next_below(card) as u32),
                    dim: DimId(rng.next_below(6) as u32),
                    value: rng.next_below(1000) as f64 / 1000.0, // 0.0 removes
                }),
            }
            // Keep the oracle dataset in lockstep so ids stay valid while
            // the batch is being composed.
            dataset.apply_update(updates.last().unwrap()).unwrap();
        }
        index.apply_updates(&updates).unwrap();
        assert_matches_fresh_build(&index, &dataset);
    }

    let stats = index.maintenance_stats();
    assert_eq!(stats.updates_applied, 12 * 40);
    assert_eq!(stats.batches, 12);
    assert!(
        stats.tuple_relocations >= 1,
        "480 updates with ~120 inserts must outgrow the tuple region at least once"
    );
}

#[test]
fn maintenance_io_is_separate_from_query_io() {
    let dataset = Dataset::running_example();
    let index = TopKIndex::build_in_memory(&dataset).unwrap();
    index.cold_start();
    index
        .apply_update(&TupleUpdate::UpdateScore {
            tuple: TupleId(2),
            dim: DimId(0),
            value: 0.99,
        })
        .unwrap();
    let maint = index.maintenance_stats();
    let pool_after_maintenance = index.io_snapshot();
    assert!(maint.pages_written > 0);
    assert!(maint.logical_reads > 0);
    // Query traffic grows the pool counters but not the maintenance ones.
    index.fetch_tuple(TupleId(0)).unwrap();
    assert_eq!(index.maintenance_stats(), maint);
    assert!(index.io_snapshot().logical_reads > pool_after_maintenance.logical_reads);
}

#[test]
fn emptied_lists_free_their_pages_for_reuse() {
    // One tuple per dimension; deleting the only tuple of dimension 0 must
    // drop its list entirely (a fresh build of the mutated dataset has no
    // list there) and recycle its page for the next list that needs one.
    let mut builder = DatasetBuilder::new(3);
    builder.push_pairs([(0, 0.7)]).unwrap();
    builder.push_pairs([(1, 0.6)]).unwrap();
    builder.push_pairs([(2, 0.5)]).unwrap();
    let mut dataset = builder.build();
    let index = TopKIndex::build_in_memory(&dataset).unwrap();
    let freed = index.list_directory(DimId(0)).unwrap();

    let batch = vec![TupleUpdate::Delete { tuple: TupleId(0) }];
    index.apply_updates(&batch).unwrap();
    dataset.apply_update(&batch[0]).unwrap();
    assert!(index.list_directory(DimId(0)).is_none());
    assert_matches_fresh_build(&index, &dataset);

    // An insert that revives dimension 0 reuses the freed page run instead
    // of allocating fresh pages past the end of the store.
    let revive = vec![TupleUpdate::Insert {
        vector: vector(&[(0, 0.4)]),
    }];
    index.apply_updates(&revive).unwrap();
    dataset.apply_update(&revive[0]).unwrap();
    assert_eq!(
        index.list_directory(DimId(0)).unwrap().first_page,
        freed.first_page,
        "freed run must be recycled deterministically"
    );
    assert_matches_fresh_build(&index, &dataset);
}

#[test]
fn snapshot_saved_mid_churn_reopens_as_the_mutated_state() {
    let mut dataset = Dataset::running_example();
    let index = TopKIndex::build_in_memory(&dataset).unwrap();
    let updates = vec![
        TupleUpdate::Delete { tuple: TupleId(3) },
        TupleUpdate::Insert {
            vector: vector(&[(0, 0.66), (1, 0.44)]),
        },
        TupleUpdate::UpdateScore {
            tuple: TupleId(0),
            dim: DimId(0),
            value: 0.11,
        },
    ];
    index.apply_updates(&updates).unwrap();
    for update in &updates {
        dataset.apply_update(update).unwrap();
    }

    let dir = tempfile::tempdir().unwrap();
    index.save_snapshot(dir.path()).unwrap();
    let reopened = IndexBuilder::new()
        .backend(StorageBackend::Memory)
        .open_snapshot(dir.path())
        .unwrap();
    assert_matches_fresh_build(&reopened, &dataset);

    // And the reopened index keeps accepting updates.
    let more = vec![TupleUpdate::UpdateScore {
        tuple: TupleId(4),
        dim: DimId(1),
        value: 0.77,
    }];
    reopened.apply_updates(&more).unwrap();
    dataset.apply_update(&more[0]).unwrap();
    assert_matches_fresh_build(&reopened, &dataset);
}

#[test]
fn file_backend_applies_updates_in_place() {
    let dir = tempfile::tempdir().unwrap();
    let mut dataset = Dataset::running_example();
    let index = IndexBuilder::new()
        .backend(StorageBackend::Disk(dir.path().to_path_buf()))
        .build(&dataset)
        .unwrap();
    let updates = vec![
        TupleUpdate::Insert {
            vector: vector(&[(0, 0.33)]),
        },
        TupleUpdate::UpdateScore {
            tuple: TupleId(1),
            dim: DimId(1),
            value: 0.0,
        },
    ];
    index.apply_updates(&updates).unwrap();
    for update in &updates {
        dataset.apply_update(update).unwrap();
    }
    assert_matches_fresh_build(&index, &dataset);
}
