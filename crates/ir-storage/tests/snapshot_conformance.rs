//! Format-conformance suite for persisted index snapshots.
//!
//! The mold of `pagestore_conformance`: one set of behavioural checks —
//! save→open roundtrip identity against a freshly built oracle, typed
//! rejection of every flavour of file damage, and typed surfacing of
//! injected device faults during open — instantiated for every backend the
//! snapshot can serve from, so a snapshot reader cannot ship without
//! honouring the exact same contract on mem, file and (with the `mmap`
//! feature) mmap.

use ir_storage::page::{frame, PageId, PAGE_SIZE};
use ir_storage::snapshot::{SNAPSHOT_FILE, SUPERHEADER_LEN};
use ir_storage::{fnv1a64, BackendKind, FaultPlan, IndexBuilder, StorageBackend, TopKIndex};
use ir_types::{Dataset, DatasetBuilder, DimId, IrError, TupleId};
use std::path::{Path, PathBuf};

/// A deterministic synthetic dataset big enough to span many posting and
/// tuple pages (no RNG dependency: a bare LCG drives the coordinates).
fn synthetic_dataset() -> Dataset {
    let mut builder = DatasetBuilder::new(16);
    let mut state = 0x5EEDu64;
    for _ in 0..600 {
        let mut pairs = Vec::new();
        for _ in 0..8 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dim = ((state >> 33) % 16) as u32;
            let value = ((state >> 11) % 1000) as f64 / 1000.0 + 0.001;
            pairs.push((dim, value));
        }
        pairs.sort_by_key(|p| p.0);
        pairs.dedup_by_key(|p| p.0);
        builder.push_pairs(pairs).unwrap();
    }
    builder.build()
}

/// The backends a snapshot can be served from in this build.
fn backends() -> Vec<BackendKind> {
    let mut kinds = vec![BackendKind::Mem, BackendKind::File];
    if cfg!(feature = "mmap") {
        kinds.push(BackendKind::Mmap);
    }
    kinds
}

/// Opens the snapshot in `dir` on the given backend kind.
fn open_on(dir: &Path, kind: BackendKind) -> ir_types::IrResult<TopKIndex> {
    let backend = match kind {
        BackendKind::Mem => StorageBackend::Memory,
        BackendKind::File => StorageBackend::Disk(dir.to_path_buf()),
        BackendKind::Mmap => StorageBackend::Mmap(dir.to_path_buf()),
    };
    IndexBuilder::new().backend(backend).open_snapshot(dir)
}

/// Every observable of the opened index must equal the oracle's: shape,
/// full posting order and values per dimension, and every stored tuple.
fn check_identical(oracle: &TopKIndex, opened: &TopKIndex, label: &str) {
    assert_eq!(opened.cardinality(), oracle.cardinality(), "{label}");
    assert_eq!(opened.dimensionality(), oracle.dimensionality(), "{label}");
    for dim in 0..oracle.dimensionality() {
        let mut a = oracle.list_cursor(DimId(dim)).unwrap();
        let mut b = opened.list_cursor(DimId(dim)).unwrap();
        loop {
            let (x, y) = (a.next_entry().unwrap(), b.next_entry().unwrap());
            assert_eq!(x, y, "{label}: dim {dim} postings diverge");
            if x.is_none() {
                break;
            }
        }
    }
    for id in 0..oracle.cardinality() {
        let id = TupleId::from(id);
        assert_eq!(
            opened.fetch_tuple(id).unwrap(),
            oracle.fetch_tuple(id).unwrap(),
            "{label}: tuple {id:?} diverges"
        );
    }
}

/// Builds the oracle in memory and saves its snapshot under a temp dir.
fn saved_snapshot(dataset: &Dataset) -> (TopKIndex, tempfile::TempDir, PathBuf) {
    let oracle = TopKIndex::build_in_memory(dataset).unwrap();
    let root = tempfile::tempdir().unwrap();
    let dir = root.path().join("snap");
    oracle.save_snapshot(&dir).unwrap();
    let file = dir.join(SNAPSHOT_FILE);
    (oracle, root, file)
}

#[test]
fn roundtrip_is_identical_on_every_backend() {
    let dataset = synthetic_dataset();
    let (oracle, root, _file) = saved_snapshot(&dataset);
    for kind in backends() {
        let opened = open_on(&root.path().join("snap"), kind).unwrap();
        assert_eq!(opened.backend_kind(), kind);
        check_identical(&oracle, &opened, &format!("backend {kind}"));
    }
}

#[test]
fn resaving_an_opened_snapshot_roundtrips_again() {
    // Save → open → save → open must converge, not accrete trailers: the
    // second snapshot's data section excludes the first's trailer pages.
    let dataset = synthetic_dataset();
    let (oracle, root, file) = saved_snapshot(&dataset);
    let first_len = std::fs::metadata(&file).unwrap().len();

    let opened = open_on(&root.path().join("snap"), BackendKind::File).unwrap();
    let resaved_dir = root.path().join("resaved");
    opened.save_snapshot(&resaved_dir).unwrap();
    let second_len = std::fs::metadata(resaved_dir.join(SNAPSHOT_FILE))
        .unwrap()
        .len();
    assert_eq!(first_len, second_len, "re-saving must not grow the file");

    let reopened = open_on(&resaved_dir, BackendKind::File).unwrap();
    check_identical(&oracle, &reopened, "second-generation snapshot");
}

/// Rewrites the last frame's payload (where the superheader lives) with
/// `mutate`, resealing the outer frame checksum so only the *snapshot*
/// layer sees the damage.
fn rewrite_superheader(path: &Path, mutate: impl FnOnce(&mut [u8])) {
    let mut bytes = std::fs::read(path).unwrap();
    let num_pages = frame::page_count(bytes.len() as u64).unwrap();
    let start = frame::offset(PageId(num_pages - 1)) as usize;
    let (payload, trailer) = bytes[start..start + frame::FRAME_LEN].split_at_mut(PAGE_SIZE);
    mutate(payload);
    trailer.copy_from_slice(&frame::seal(payload));
    std::fs::write(path, &bytes).unwrap();
}

/// Recomputes the superheader's own checksum after a field edit, so the
/// edit is only caught by the targeted validation (magic/version), never
/// masked by the checksum line of defence.
fn reseal_superheader(payload: &mut [u8]) {
    let sum = fnv1a64(&payload[..SUPERHEADER_LEN - 8]);
    payload[SUPERHEADER_LEN - 8..SUPERHEADER_LEN].copy_from_slice(&sum.to_le_bytes());
}

/// Asserts that opening the snapshot dir fails with a typed corruption
/// whose detail mentions `phrase`, on every backend.
fn assert_rejected(dir: &Path, phrase: &str, what: &str) {
    for kind in backends() {
        let err = open_on(dir, kind).map(|_| ()).unwrap_err();
        assert!(
            matches!(err, IrError::Corruption { .. }),
            "{what} on {kind}: expected typed corruption, got {err:?}"
        );
        assert!(
            err.to_string().contains(phrase),
            "{what} on {kind}: `{err}` does not mention `{phrase}`"
        );
    }
}

#[test]
fn truncated_and_torn_files_are_rejected() {
    let dataset = synthetic_dataset();

    // Torn trailing write: the file ends mid-frame.
    let (_oracle, root, file) = saved_snapshot(&dataset);
    let bytes = std::fs::read(&file).unwrap();
    std::fs::write(&file, &bytes[..bytes.len() - 3]).unwrap();
    assert_rejected(&root.path().join("snap"), "torn", "torn trailing frame");

    // Whole trailing frame missing: the last page is now a directory page,
    // not a superheader.
    let (_oracle, root, file) = saved_snapshot(&dataset);
    let bytes = std::fs::read(&file).unwrap();
    std::fs::write(&file, &bytes[..bytes.len() - frame::FRAME_LEN]).unwrap();
    assert_rejected(
        &root.path().join("snap"),
        "bad snapshot magic",
        "missing superheader page",
    );

    // Not even a page file.
    let (_oracle, root, file) = saved_snapshot(&dataset);
    std::fs::write(&file, b"not a snapshot at all").unwrap();
    assert_rejected(&root.path().join("snap"), "bytes", "foreign short file");
}

#[test]
fn foreign_and_version_bumped_superheaders_are_rejected() {
    let dataset = synthetic_dataset();

    // Foreign magic (inner checksum resealed, so magic itself is blamed).
    let (_oracle, root, file) = saved_snapshot(&dataset);
    rewrite_superheader(&file, |payload| {
        payload[..8].copy_from_slice(b"NOTSNAP\0");
        reseal_superheader(payload);
    });
    assert_rejected(
        &root.path().join("snap"),
        "bad snapshot magic",
        "foreign magic",
    );

    // A future format version, correctly checksummed: readers accept
    // exactly their own version (the rebuild-and-resave policy).
    let (_oracle, root, file) = saved_snapshot(&dataset);
    rewrite_superheader(&file, |payload| {
        payload[8..12].copy_from_slice(&2u32.to_le_bytes());
        reseal_superheader(payload);
    });
    assert_rejected(
        &root.path().join("snap"),
        "unsupported snapshot version",
        "version bump",
    );

    // A flipped field without resealing: the superheader checksum catches it.
    let (_oracle, root, file) = saved_snapshot(&dataset);
    rewrite_superheader(&file, |payload| {
        payload[16] ^= 0x01; // data_pages
    });
    assert_rejected(
        &root.path().join("snap"),
        "checksum mismatch",
        "unsealed field flip",
    );
}

#[test]
fn a_plain_page_file_is_not_a_snapshot() {
    // A page file written by the ordinary index build lacks the snapshot
    // trailer; opening it as a snapshot must fail typed, not misread.
    let dataset = synthetic_dataset();
    let dir = tempfile::tempdir().unwrap();
    let built = IndexBuilder::new()
        .backend(StorageBackend::Disk(dir.path().to_path_buf()))
        .build(&dataset)
        .unwrap();
    drop(built);
    assert!(
        dir.path().join(SNAPSHOT_FILE).is_file(),
        "the build must have left its page file behind"
    );
    assert_rejected(
        dir.path(),
        "bad snapshot magic",
        "plain page file as snapshot",
    );
}

#[test]
fn armed_faults_during_open_surface_typed_errors() {
    let dataset = synthetic_dataset();
    let (_oracle, root, _file) = saved_snapshot(&dataset);
    for kind in backends() {
        let backend = match kind {
            BackendKind::Mem => StorageBackend::Memory,
            BackendKind::File => StorageBackend::Disk(root.path().join("snap")),
            BackendKind::Mmap => StorageBackend::Mmap(root.path().join("snap")),
        };
        let err = IndexBuilder::new()
            .backend(backend)
            .fault_plan(Some(FaultPlan::device_outage(0, None)))
            .open_snapshot(root.path().join("snap"))
            .map(|_| ())
            .unwrap_err();
        assert!(
            err.to_string().contains("injected"),
            "{kind}: expected the injected outage to surface, got {err}"
        );
    }
}
