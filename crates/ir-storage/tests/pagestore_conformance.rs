//! Shared conformance suite for every page-store backend.
//!
//! One set of behavioural checks — roundtrip, reopen-after-drop
//! persistence, concurrent readers, and a proptest write/read pattern sweep
//! against an in-memory model — instantiated for [`MemPageStore`],
//! [`FilePageStore`] and (with the `mmap` feature) `MmapPageStore` through
//! the [`conformance!`] macro, so a new backend cannot ship without passing
//! the exact same contract.

use ir_storage::page::zeroed_page;
use ir_storage::{PageId, PageStore, PAGE_SIZE};
use ir_types::IrError;
use proptest::prelude::*;
use std::path::Path;
use std::sync::Arc;

/// A recognisable page body: every byte derived from the seed and offset.
fn patterned_page(seed: u8) -> Box<[u8]> {
    (0..PAGE_SIZE)
        .map(|i| seed.wrapping_mul(31).wrapping_add((i % 251) as u8))
        .collect()
}

/// Basic contract: allocation is contiguous from zero, writes round-trip,
/// fresh pages are zeroed, out-of-bounds and short writes are rejected.
fn check_roundtrip(store: &dyn PageStore) {
    assert_eq!(store.num_pages(), 0);
    assert_eq!(store.allocate(3).unwrap(), PageId(0));
    assert_eq!(store.num_pages(), 3);

    let page = patterned_page(7);
    store.write_page(PageId(1), &page).unwrap();
    assert_eq!(store.read_page(PageId(1)).unwrap(), page);
    assert!(store.read_page(PageId(2)).unwrap().iter().all(|&b| b == 0));

    assert!(store.read_page(PageId(3)).is_err());
    assert!(store.write_page(PageId(3), &page).is_err());
    assert!(store.write_page(PageId(0), &[0u8; 17]).is_err());

    assert_eq!(store.allocate(1).unwrap(), PageId(3));
    assert_eq!(store.num_pages(), 4);

    // Device-level accounting: every successful read was counted once.
    let snap = store.io_snapshot();
    assert_eq!(snap.logical_reads, 2);
    assert_eq!(snap.pages_written, 1);
    store.reset_io_stats();
    assert_eq!(store.io_snapshot().logical_reads, 0);
}

/// Many threads read a shared store concurrently (the situation the
/// parallel batch driver puts every backend in); each read must return the
/// exact page that was written and the sharded counters must add up.
fn check_concurrent_readers(store: Arc<dyn PageStore>) {
    const PAGES: u32 = 12;
    const THREADS: u32 = 8;
    const READS: u32 = 250;
    store.allocate(PAGES).unwrap();
    for page in 0..PAGES {
        store
            .write_page(PageId(page), &patterned_page(page as u8))
            .unwrap();
    }
    store.reset_io_stats();
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            ir_storage::set_thread_stats_shard(t as usize);
            for i in 0..READS {
                let page = (i * 13 + t * 5) % PAGES;
                let data = store.read_page(PageId(page)).unwrap();
                assert_eq!(data, patterned_page(page as u8), "page {page} corrupted");
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(
        store.io_snapshot().logical_reads,
        (THREADS * READS) as u64,
        "sharded per-thread counters must merge losslessly"
    );
}

/// Writes survive dropping the store and reopening the same path.
fn check_reopen_persistence(
    dir: &Path,
    create: fn(&Path) -> Arc<dyn PageStore>,
    open: fn(&Path) -> Arc<dyn PageStore>,
) {
    {
        let store = create(dir);
        store.allocate(5).unwrap();
        for page in 0..5u32 {
            store
                .write_page(PageId(page), &patterned_page(100 + page as u8))
                .unwrap();
        }
        // The store is dropped here — file handles and mappings close.
    }
    let reopened = open(dir);
    assert_eq!(reopened.num_pages(), 5);
    for page in 0..5u32 {
        assert_eq!(
            reopened.read_page(PageId(page)).unwrap(),
            patterned_page(100 + page as u8),
            "page {page} lost across reopen"
        );
    }
    // Persistence composes with further growth.
    assert_eq!(reopened.allocate(1).unwrap(), PageId(5));
    assert!(reopened
        .read_page(PageId(5))
        .unwrap()
        .iter()
        .all(|&b| b == 0));
}

/// Error paths are typed and identical across backends: out-of-range pages
/// surface [`IrError::PageOutOfBounds`] with exact coordinates (not a
/// stringly error, not a panic), short writes are rejected, and a damaged
/// stored byte surfaces [`IrError::Corruption`] naming the page — healed by
/// re-flipping (XOR) the same byte, after which the store serves the
/// original data again.
fn check_typed_error_paths(store: &dyn PageStore) {
    store.allocate(2).unwrap();
    let err = store.read_page(PageId(5)).unwrap_err();
    assert!(
        matches!(
            err,
            IrError::PageOutOfBounds {
                page: 5,
                num_pages: 2
            }
        ),
        "{err:?}"
    );
    let err = store.write_page(PageId(2), &patterned_page(1)).unwrap_err();
    assert!(
        matches!(
            err,
            IrError::PageOutOfBounds {
                page: 2,
                num_pages: 2
            }
        ),
        "{err:?}"
    );
    assert!(store.write_page(PageId(0), &[1, 2, 3]).is_err());

    store.write_page(PageId(1), &patterned_page(3)).unwrap();
    store.corrupt_stored_byte(PageId(1), 40, 0x20).unwrap();
    let err = store.read_page(PageId(1)).unwrap_err();
    assert!(
        matches!(err, IrError::Corruption { page: Some(1), .. }),
        "{err:?}"
    );
    // Neighbouring pages are unaffected, and re-applying the XOR heals.
    assert!(store.read_page(PageId(0)).is_ok());
    store.corrupt_stored_byte(PageId(1), 40, 0x20).unwrap();
    assert_eq!(store.read_page(PageId(1)).unwrap(), patterned_page(3));
    // Corruption offsets past the payload are rejected, not wrapped.
    assert!(store.corrupt_stored_byte(PageId(1), PAGE_SIZE, 1).is_err());
}

/// Proptest sweep: an arbitrary interleaving of writes and reads behaves
/// exactly like the trivial in-memory model.
fn check_pattern_sweep(store: &dyn PageStore, ops: &[(u8, u8)]) {
    let mut model: Vec<Box<[u8]>> = Vec::new();
    store.allocate(16).unwrap();
    model.resize_with(16, zeroed_page);
    for &(page, seed) in ops {
        let page = page as usize % 16;
        if seed % 3 == 0 {
            // Read and compare against the model.
            let data = store.read_page(PageId(page as u32)).unwrap();
            assert_eq!(&data, &model[page], "page {page} diverged from model");
        } else {
            let body = patterned_page(seed);
            store.write_page(PageId(page as u32), &body).unwrap();
            model[page] = body;
        }
    }
    // Full final audit.
    for (page, expected) in model.iter().enumerate() {
        let data = store.read_page(PageId(page as u32)).unwrap();
        assert_eq!(&data, expected, "final audit: page {page} diverged");
    }
}

/// Instantiates the whole suite for one backend. `$create`/`$open` are
/// `fn(&Path) -> Arc<dyn PageStore>`; pass `None` for `$open` on
/// non-persistent backends.
macro_rules! conformance {
    ($modname:ident, $create:expr, $open:expr) => {
        mod $modname {
            use super::*;

            const CREATE: fn(&Path) -> Arc<dyn PageStore> = $create;

            #[test]
            fn roundtrip() {
                let dir = tempfile::tempdir().unwrap();
                check_roundtrip(CREATE(dir.path()).as_ref());
            }

            #[test]
            fn concurrent_readers() {
                let dir = tempfile::tempdir().unwrap();
                check_concurrent_readers(CREATE(dir.path()));
            }

            #[test]
            fn typed_error_paths() {
                let dir = tempfile::tempdir().unwrap();
                check_typed_error_paths(CREATE(dir.path()).as_ref());
            }

            #[test]
            fn reopen_persistence() {
                let open: Option<fn(&Path) -> Arc<dyn PageStore>> = $open;
                if let Some(open) = open {
                    let dir = tempfile::tempdir().unwrap();
                    check_reopen_persistence(dir.path(), CREATE, open);
                }
            }

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(24).with_seed(0xC04F_0001))]

                #[test]
                fn pattern_sweep(ops in proptest::collection::vec((0u8..=255u8, 0u8..=255u8), 0..80)) {
                    let dir = tempfile::tempdir().unwrap();
                    check_pattern_sweep(CREATE(dir.path()).as_ref(), &ops);
                }
            }
        }
    };
}

conformance!(mem, |_dir| Arc::new(ir_storage::MemPageStore::new()), None);

// An armed fault injector executing the *empty* plan must be a perfect
// passthrough — the whole contract, error paths included, holds through the
// wrapper.
conformance!(
    faulty_mem_passthrough,
    |_dir| {
        let store = ir_storage::FaultInjectingPageStore::new(
            Arc::new(ir_storage::MemPageStore::new()),
            ir_storage::FaultPlan::default(),
        );
        store.arm();
        store
    },
    None
);

conformance!(
    file,
    |dir| Arc::new(ir_storage::FilePageStore::create(dir.join("pages.bin")).unwrap()),
    Some(|dir: &Path| {
        Arc::new(ir_storage::FilePageStore::open(dir.join("pages.bin")).unwrap())
            as Arc<dyn PageStore>
    })
);

#[cfg(feature = "mmap")]
conformance!(
    mmap,
    |dir| Arc::new(ir_storage::MmapPageStore::create(dir.join("pages.bin")).unwrap()),
    Some(|dir: &Path| {
        Arc::new(ir_storage::MmapPageStore::open(dir.join("pages.bin")).unwrap())
            as Arc<dyn PageStore>
    })
);

/// Every persistent backend rejects files that are not (whole) page files
/// with a typed file-level corruption error — no panic, no misread.
#[test]
fn open_rejects_garbage_files() {
    fn assert_rejected(path: &Path, what: &str) {
        let err = ir_storage::FilePageStore::open(path)
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, IrError::Corruption { page: None, .. }),
            "file store, {what}: {err:?}"
        );
        #[cfg(feature = "mmap")]
        {
            let err = ir_storage::MmapPageStore::open(path)
                .map(|_| ())
                .unwrap_err();
            assert!(
                matches!(err, IrError::Corruption { page: None, .. }),
                "mmap store, {what}: {err:?}"
            );
        }
    }

    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("garbage.bin");

    // Shorter than the header.
    std::fs::write(&path, b"short").unwrap();
    assert_rejected(&path, "truncated header");

    // Plausible length, wrong magic.
    std::fs::write(&path, vec![0xAAu8; 64 + PAGE_SIZE + 8]).unwrap();
    assert_rejected(&path, "foreign content");

    // Valid header followed by a torn (partial) frame.
    let store_path = dir.path().join("torn.bin");
    {
        let store = ir_storage::FilePageStore::create(&store_path).unwrap();
        store.allocate(1).unwrap();
    }
    let mut bytes = std::fs::read(&store_path).unwrap();
    bytes.truncate(bytes.len() - 1);
    std::fs::write(&store_path, &bytes).unwrap();
    assert_rejected(&store_path, "torn trailing frame");
}

/// The file formats are interchangeable: pages written by the positioned-
/// read file store are served verbatim by the mmap store and vice versa —
/// the backend choice is purely an access-path choice.
#[cfg(feature = "mmap")]
#[test]
fn file_and_mmap_share_one_format() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("pages.bin");
    {
        let store = ir_storage::FilePageStore::create(&path).unwrap();
        store.allocate(3).unwrap();
        store.write_page(PageId(2), &patterned_page(9)).unwrap();
    }
    {
        let store = ir_storage::MmapPageStore::open(&path).unwrap();
        assert_eq!(store.num_pages(), 3);
        assert_eq!(store.read_page(PageId(2)).unwrap(), patterned_page(9));
        store.write_page(PageId(0), &patterned_page(4)).unwrap();
    }
    let store = ir_storage::FilePageStore::open(&path).unwrap();
    assert_eq!(store.read_page(PageId(0)).unwrap(), patterned_page(4));
}
