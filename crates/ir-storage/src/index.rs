//! [`TopKIndex`]: the physical design the query algorithms operate on.
//!
//! An index bundles, for one dataset,
//!
//! * one inverted list per populated dimension (sorted access),
//! * the external tuple file (random access),
//! * the buffer pool and its I/O counters,
//! * the dataset-level metadata (cardinality, dimensionality).
//!
//! Building the index corresponds to the offline preparation step of the
//! paper's system model (Section 7.1); querying it is what TA, Scan and CPT
//! do online.

use crate::buffer::{BufferPool, RetryPolicy, DEFAULT_POOL_CAPACITY};
use crate::fault::{FaultInjectingPageStore, FaultPlan};
use crate::inverted::{write_list, InvertedListCursor, ListDirectoryEntry, ENTRY_BYTES};
use crate::maintain::{self, AppliedUpdate, MaintenanceStats, MaintenanceStatsSnapshot, Mutable};
use crate::pagestore::{FilePageStore, MemPageStore, PageStore};
use crate::snapshot::{self, SnapshotSummary};
use crate::stats::{IoConfig, IoStatsSnapshot};
use crate::tuplestore::{write_tuples, TupleReader, TupleRegion};
use ir_types::{Dataset, DimId, IrError, IrResult, SparseVector, TupleId, TupleUpdate};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::Arc;

/// Which device backs the page store.
#[derive(Clone, Debug, Default)]
pub enum StorageBackend {
    /// Pages in memory (default); I/O is still accounted at page granularity.
    #[default]
    Memory,
    /// Pages in a flat file under the given directory (`index.pages`),
    /// accessed with positioned reads.
    Disk(PathBuf),
    /// Pages in a flat file under the given directory (`index.pages`),
    /// served from a read-only memory mapping.
    ///
    /// The variant always exists so callers (CLI flags, engine policies) can
    /// name it unconditionally, but *building* an index with it requires the
    /// `mmap` cargo feature — without it [`IndexBuilder::build`] returns a
    /// descriptive [`IrError::Storage`]. The default build stays free of
    /// `unsafe` code.
    Mmap(PathBuf),
}

impl StorageBackend {
    /// The path-free classification of this backend.
    pub fn kind(&self) -> BackendKind {
        match self {
            StorageBackend::Memory => BackendKind::Mem,
            StorageBackend::Disk(_) => BackendKind::File,
            StorageBackend::Mmap(_) => BackendKind::Mmap,
        }
    }
}

/// The path-free classification of a [`StorageBackend`] — what CLI flags
/// parse, what engine policies record, and what `BENCH_*.json` metadata is
/// stamped with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// [`MemPageStore`] (the default).
    #[default]
    Mem,
    /// [`FilePageStore`] (positioned reads on a flat file).
    File,
    /// `MmapPageStore` (requires the `mmap` cargo feature).
    Mmap,
}

impl BackendKind {
    /// All kinds, in CLI presentation order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Mem, BackendKind::File, BackendKind::Mmap];
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendKind::Mem => "mem",
            BackendKind::File => "file",
            BackendKind::Mmap => "mmap",
        })
    }
}

impl FromStr for BackendKind {
    type Err = IrError;

    /// Case-insensitive, so both the CLI spellings (`mmap`) and the
    /// serialized variant names (`Mmap`, as stamped into `BENCH_*.json`
    /// policy metadata) parse.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "mem" | "memory" => Ok(BackendKind::Mem),
            "file" | "disk" => Ok(BackendKind::File),
            "mmap" => Ok(BackendKind::Mmap),
            other => Err(IrError::Storage(format!(
                "unknown storage backend `{other}` (expected mem, file or mmap)"
            ))),
        }
    }
}

/// How a [`TopKIndex`] came into existence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColdStartSource {
    /// Built from the raw dataset by [`IndexBuilder::build`] — the
    /// O(dataset) parse-sort-write pass.
    #[default]
    Built,
    /// Opened from a saved snapshot by [`IndexBuilder::open_snapshot`] —
    /// only the trailer was read, no posting or tuple was decoded.
    Snapshot,
}

impl fmt::Display for ColdStartSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ColdStartSource::Built => "built",
            ColdStartSource::Snapshot => "snapshot",
        })
    }
}

/// The deterministic work it took to bring an index up — the cold-start
/// cost the `BENCH_coldstart.json` series compares across sources.
///
/// Both metrics are deterministic (never wall-clock): re-running the same
/// build or open yields the same numbers on any machine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColdStartInfo {
    /// Where the index came from.
    pub source: ColdStartSource,
    /// Physical pages touched to bring the index up: pages written during a
    /// build; trailer pages read during a snapshot open (plus, for the mem
    /// backend only, the whole-file pages it must materialize in memory).
    pub pages: u64,
    /// Bytes parsed into in-memory structures: every posting and tuple
    /// coordinate serialized by a build; just the superheader and the
    /// 12-byte directory records decoded by a snapshot open.
    pub bytes: u64,
}

/// Builder for [`TopKIndex`].
#[derive(Debug)]
#[must_use = "an index builder does nothing until `build` is called"]
pub struct IndexBuilder {
    backend: StorageBackend,
    pool_capacity: usize,
    io_config: IoConfig,
    retry_policy: RetryPolicy,
    fault_plan: Option<FaultPlan>,
}

impl Default for IndexBuilder {
    fn default() -> Self {
        IndexBuilder {
            backend: StorageBackend::Memory,
            pool_capacity: DEFAULT_POOL_CAPACITY,
            io_config: IoConfig::default(),
            retry_policy: RetryPolicy::default(),
            fault_plan: None,
        }
    }
}

impl IndexBuilder {
    /// Starts a builder with the default (memory) backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the storage backend.
    pub fn backend(mut self, backend: StorageBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the buffer-pool capacity in pages.
    pub fn pool_capacity(mut self, pages: usize) -> Self {
        self.pool_capacity = pages;
        self
    }

    /// Sets the I/O latency model reported by the index.
    pub fn io_config(mut self, config: IoConfig) -> Self {
        self.io_config = config;
        self
    }

    /// Sets the buffer pool's transient-fault [`RetryPolicy`].
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = policy;
        self
    }

    /// Wraps the chosen backend in a [`FaultInjectingPageStore`] driven by
    /// `plan` (`None` for a healthy device — the default). The wrapper stays
    /// disarmed through index construction and is armed once the build
    /// completes, so faults strike queries, not the offline build.
    pub fn fault_plan(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Builds the physical index from an in-memory dataset.
    pub fn build(self, dataset: &Dataset) -> IrResult<TopKIndex> {
        let store: Arc<dyn PageStore> = match &self.backend {
            StorageBackend::Memory => Arc::new(MemPageStore::new()),
            StorageBackend::Disk(dir) => {
                std::fs::create_dir_all(dir)?;
                Arc::new(FilePageStore::create(dir.join("index.pages"))?)
            }
            StorageBackend::Mmap(dir) => mmap_store(dir)?,
        };
        let (store, injector): (Arc<dyn PageStore>, Option<Arc<FaultInjectingPageStore>>) =
            match self.fault_plan {
                Some(plan) => {
                    // Disarmed while the index is built: faults are a query-
                    // time phenomenon, the offline build runs fault-free.
                    let faulty = FaultInjectingPageStore::new(store, plan);
                    (Arc::clone(&faulty) as Arc<dyn PageStore>, Some(faulty))
                }
                None => (store, None),
            };
        let pool = Arc::new(BufferPool::with_capacity_and_policy(
            store,
            self.pool_capacity,
            self.retry_policy,
        ));

        // Collect the per-dimension postings.
        let mut postings: HashMap<DimId, Vec<(TupleId, f64)>> = HashMap::new();
        for (id, tuple) in dataset.iter() {
            for (dim, value) in tuple.iter() {
                postings.entry(dim).or_default().push((id, value));
            }
        }
        // Sort each list by decreasing value, ties by increasing tuple id, and
        // write it out. Dimensions are processed in increasing id order so the
        // physical layout is deterministic.
        let mut dims: Vec<DimId> = postings.keys().copied().collect();
        dims.sort_unstable();
        let mut lists: HashMap<DimId, ListDirectoryEntry> = HashMap::with_capacity(dims.len());
        for dim in dims {
            let Some(mut entries) = postings.remove(&dim) else {
                continue; // unreachable: `dims` are exactly the keys
            };
            entries.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let directory = write_list(&pool, dim, &entries)?;
            lists.insert(dim, directory);
        }

        let tuple_region: TupleRegion = write_tuples(&pool, dataset)?;

        // The cold-start cost of *this* path, captured before the counters
        // are wiped: every page written, every posting/coordinate parsed.
        let cold_start_info = ColdStartInfo {
            source: ColdStartSource::Built,
            pages: pool.io_snapshot().pages_written,
            bytes: lists
                .values()
                .map(|l| l.num_entries as u64 * ENTRY_BYTES as u64)
                .sum::<u64>()
                + tuple_region
                    .directory
                    .iter()
                    .map(|t| t.byte_len() as u64)
                    .sum::<u64>(),
        };

        // Index construction is an offline step: wipe the build-time I/O so
        // query measurements start from a clean slate (and from a cold cache).
        pool.clear_cache();
        pool.reset_io_stats();

        // The device starts misbehaving only now that the index exists.
        if let Some(faulty) = &injector {
            faulty.arm();
        }

        Ok(TopKIndex {
            pool,
            mutable: RwLock::new(Mutable::derive(lists, tuple_region, dataset.cardinality())),
            dimensionality: dataset.dimensionality(),
            io_config: self.io_config,
            backend_kind: self.backend.kind(),
            fault_injector: injector,
            cold_start_info,
            maintenance: MaintenanceStats::default(),
        })
    }

    /// Opens a previously saved snapshot (see
    /// [`TopKIndex::save_snapshot`]) instead of building from a dataset.
    ///
    /// The builder's backend selects *how* the snapshot file is served —
    /// only its [`BackendKind`] matters, any path carried by the variant is
    /// ignored because the file to serve is `dir/index.pages`:
    ///
    /// * `Memory` — the page file is materialized into a
    ///   [`MemPageStore`] frame by frame (seals preserved, not re-verified),
    /// * `Disk` — [`FilePageStore::open`] serves it with positioned reads,
    /// * `Mmap` — `MmapPageStore::open` maps it read-only (requires the
    ///   `mmap` cargo feature).
    ///
    /// Cold start reads *only* the trailer: the 64-byte superheader (magic,
    /// version, page size, checksum — each failure a typed
    /// [`IrError::Corruption`]) and the two directory sections. No inverted
    /// list or tuple bytes are deserialized before the first query. Unlike
    /// [`IndexBuilder::build`], a configured [`IndexBuilder::fault_plan`]
    /// is armed *before* the trailer is read: opening a snapshot is an
    /// online operation on a possibly misbehaving device, and injected
    /// faults during the open surface as typed errors.
    pub fn open_snapshot<P: AsRef<Path>>(self, dir: P) -> IrResult<TopKIndex> {
        let path = dir.as_ref().join(snapshot::SNAPSHOT_FILE);
        let backend_kind = self.backend.kind();
        let store: Arc<dyn PageStore> = match backend_kind {
            BackendKind::Mem => Arc::new(MemPageStore::from_page_file(&path)?),
            BackendKind::File => Arc::new(FilePageStore::open(&path)?),
            BackendKind::Mmap => open_mmap_store(&path)?,
        };
        let total_pages = store.num_pages();
        let (store, injector): (Arc<dyn PageStore>, Option<Arc<FaultInjectingPageStore>>) =
            match self.fault_plan {
                Some(plan) => {
                    let faulty = FaultInjectingPageStore::new(store, plan);
                    // Armed immediately: snapshot open is an online read
                    // path, not an offline build.
                    faulty.arm();
                    (Arc::clone(&faulty) as Arc<dyn PageStore>, Some(faulty))
                }
                None => (store, None),
            };
        let pool = Arc::new(BufferPool::with_capacity_and_policy(
            store,
            self.pool_capacity,
            self.retry_policy,
        ));
        let contents = snapshot::read_contents(&pool)?;

        let trailer_reads = pool.io_snapshot().physical_reads;
        let cold_start_info = ColdStartInfo {
            source: ColdStartSource::Snapshot,
            // The mem backend had to materialize the whole file to serve it
            // from memory; the file/mmap backends touched only the trailer.
            pages: trailer_reads
                + match backend_kind {
                    BackendKind::Mem => total_pages as u64,
                    BackendKind::File | BackendKind::Mmap => 0,
                },
            bytes: snapshot::SUPERHEADER_LEN as u64
                + (contents.lists.len() as u64 + contents.tuple_region.directory.len() as u64)
                    * snapshot::RECORD_BYTES as u64,
        };

        // The trailer pages have served their purpose; queries start from a
        // cold cache and clean counters, exactly like a fresh build.
        pool.clear_cache();
        pool.reset_io_stats();

        let cardinality = contents.tuple_region.directory.len();
        Ok(TopKIndex {
            pool,
            mutable: RwLock::new(Mutable::derive(
                contents.lists,
                contents.tuple_region,
                cardinality,
            )),
            dimensionality: contents.dimensionality,
            io_config: self.io_config,
            backend_kind,
            fault_injector: injector,
            cold_start_info,
            maintenance: MaintenanceStats::default(),
        })
    }

    /// [`IndexBuilder::build`], wrapped in an [`Arc`] so the index can be
    /// shared by owning handles (engines, subscriptions) without lifetimes.
    pub fn build_shared(self, dataset: &Dataset) -> IrResult<Arc<TopKIndex>> {
        self.build(dataset).map(Arc::new)
    }
}

/// Builds the mmap-backed store when the feature is compiled in.
#[cfg(feature = "mmap")]
fn mmap_store(dir: &Path) -> IrResult<Arc<dyn PageStore>> {
    std::fs::create_dir_all(dir)?;
    Ok(Arc::new(crate::mmap::MmapPageStore::create(
        dir.join("index.pages"),
    )?))
}

/// Without the `mmap` feature, selecting the backend is a descriptive error
/// (the default build contains no `unsafe` mapping code at all).
#[cfg(not(feature = "mmap"))]
fn mmap_store(_dir: &Path) -> IrResult<Arc<dyn PageStore>> {
    Err(IrError::Storage(
        "the mmap storage backend requires building ir-storage with the `mmap` cargo feature"
            .to_string(),
    ))
}

/// Opens an existing page file via the mmap store (feature-gated twin of
/// [`mmap_store`], used by [`IndexBuilder::open_snapshot`]).
#[cfg(feature = "mmap")]
fn open_mmap_store(path: &Path) -> IrResult<Arc<dyn PageStore>> {
    Ok(Arc::new(crate::mmap::MmapPageStore::open(path)?))
}

/// Without the `mmap` feature, opening a snapshot through the mmap backend
/// is the same descriptive error as building through it.
#[cfg(not(feature = "mmap"))]
fn open_mmap_store(_path: &Path) -> IrResult<Arc<dyn PageStore>> {
    Err(IrError::Storage(
        "the mmap storage backend requires building ir-storage with the `mmap` cargo feature"
            .to_string(),
    ))
}

/// The physical top-k index: inverted lists + tuple file + buffer pool.
///
/// The directory state (which pages hold which list, where each tuple
/// record lives) sits behind an `RwLock` so the index can be **maintained
/// in place** under churn: queries take brief read locks to copy directory
/// entries out, [`TopKIndex::apply_updates`] holds the write lock for a
/// whole batch. Mutations are single-writer and are *not* linearizable
/// with in-flight queries — a query concurrent with a batch may observe
/// either the old or the new directory (never a torn one). Queries issued
/// after `apply_updates` returns see the mutated index.
pub struct TopKIndex {
    pool: Arc<BufferPool>,
    mutable: RwLock<Mutable>,
    dimensionality: u32,
    io_config: IoConfig,
    backend_kind: BackendKind,
    fault_injector: Option<Arc<FaultInjectingPageStore>>,
    cold_start_info: ColdStartInfo,
    maintenance: MaintenanceStats,
}

impl TopKIndex {
    /// Builds an index with all defaults (memory backend).
    pub fn build_in_memory(dataset: &Dataset) -> IrResult<Self> {
        IndexBuilder::new().build(dataset)
    }

    /// Number of addressable tuple ids (deleted tuples keep their id as an
    /// empty vector, so this never shrinks).
    pub fn cardinality(&self) -> usize {
        self.mutable.read().cardinality
    }

    /// Dataset dimensionality `m`.
    pub fn dimensionality(&self) -> u32 {
        self.dimensionality
    }

    /// The I/O latency model configured for this index.
    pub fn io_config(&self) -> IoConfig {
        self.io_config
    }

    /// Which page-store backend this index was built on.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend_kind
    }

    /// The fault injector wrapping the page store, when the index was built
    /// with [`IndexBuilder::fault_plan`] (chaos runs only; `None` in
    /// production).
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjectingPageStore>> {
        self.fault_injector.as_ref()
    }

    /// The fault plan this index's device executes, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_injector.as_ref().map(|f| f.plan())
    }

    /// The buffer pool (shared with cursors and readers).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Length of dimension `dim`'s inverted list (zero when no tuple has a
    /// non-zero coordinate there).
    pub fn list_len(&self, dim: DimId) -> usize {
        self.mutable
            .read()
            .lists
            .get(&dim)
            .map_or(0, |d| d.num_entries as usize)
    }

    /// Directory entry of a dimension's list, if it exists.
    pub fn list_directory(&self, dim: DimId) -> Option<ListDirectoryEntry> {
        self.mutable.read().lists.get(&dim).copied()
    }

    /// Opens a sorted-access cursor at the head of dimension `dim`'s list.
    ///
    /// A dimension with no postings yields an empty cursor (never an error):
    /// a query weight on such a dimension is legal, it simply contributes
    /// nothing to any score. The cursor snapshots the list's directory
    /// entry: it keeps scanning the pages the list occupied when the cursor
    /// was opened, even if maintenance later moves the list.
    pub fn list_cursor(&self, dim: DimId) -> IrResult<InvertedListCursor> {
        if dim.0 >= self.dimensionality {
            return Err(IrError::UnknownDimension {
                dim: dim.0,
                dimensionality: self.dimensionality,
            });
        }
        let directory = self.list_directory(dim).unwrap_or(ListDirectoryEntry {
            dim,
            first_page: crate::page::PageId(0),
            num_entries: 0,
        });
        Ok(InvertedListCursor::new(Arc::clone(&self.pool), directory))
    }

    /// Fetches the full sparse vector of a tuple (random access). A deleted
    /// tuple reads back as the empty vector.
    pub fn fetch_tuple(&self, id: TupleId) -> IrResult<SparseVector> {
        self.tuple_reader().fetch(id)
    }

    /// Creates a long-lived tuple reader sharing this index's pool. Like a
    /// cursor, the reader snapshots the tuple region: it does not observe
    /// later maintenance.
    pub fn tuple_reader(&self) -> TupleReader {
        TupleReader::new(
            Arc::clone(&self.pool),
            self.mutable.read().tuple_region.clone(),
        )
    }

    /// Applies a batch of logical updates to the physical index in place —
    /// the storage half of the dynamic update model.
    ///
    /// The whole batch is validated against the dataset shape first, so a
    /// malformed update rejects the batch without touching a page. The
    /// batch then runs under the directory write lock: tuple records are
    /// tombstoned, overwritten in place, or appended, and each inverted
    /// list whose postings changed is rewritten once into its own or a
    /// recycled page run — bit-compatible with a fresh build of the
    /// mutated dataset. Returns one [`AppliedUpdate`] (tuple plus old/new
    /// vector) per input, in order; the layers above use exactly that pair
    /// to decide which immutable regions were punctured.
    ///
    /// All I/O performed by the batch is measured on the calling thread's
    /// shard and folded into [`TopKIndex::maintenance_stats`], so
    /// maintenance cost is accounted separately from query cost even with
    /// concurrent readers.
    pub fn apply_updates(&self, updates: &[TupleUpdate]) -> IrResult<Vec<AppliedUpdate>> {
        if updates.is_empty() {
            return Ok(Vec::new());
        }
        let mut m = self.mutable.write();
        let before = self.pool.thread_io_snapshot();
        let (applied, outcome) =
            maintain::apply_batch(&self.pool, self.dimensionality, &mut m, updates)?;
        let io = self.pool.thread_io_snapshot().since(&before);
        self.maintenance
            .record_batch(updates.len() as u64, &outcome, &io);
        Ok(applied)
    }

    /// Applies one logical update; see [`TopKIndex::apply_updates`].
    pub fn apply_update(&self, update: &TupleUpdate) -> IrResult<AppliedUpdate> {
        let mut applied = self.apply_updates(std::slice::from_ref(update))?;
        Ok(applied.pop().expect("one update in, one applied out"))
    }

    /// Cumulative maintenance counters: updates/batches applied, lists
    /// rewritten, tuple-region relocations, and the I/O attributed to
    /// maintenance (kept separate from the query counters).
    pub fn maintenance_stats(&self) -> MaintenanceStatsSnapshot {
        self.maintenance.snapshot()
    }

    /// Snapshot of the I/O counters accumulated since the last reset.
    pub fn io_snapshot(&self) -> IoStatsSnapshot {
        self.pool.io_snapshot()
    }

    /// Snapshot of the page store's own device-level counters (syscalls,
    /// page-fault equivalents — see
    /// [`PageStore::io_snapshot`](crate::pagestore::PageStore)).
    pub fn store_io_snapshot(&self) -> IoStatsSnapshot {
        self.pool.store_io_snapshot()
    }

    /// Snapshot of the calling thread's own I/O shard (per-worker
    /// attribution; see [`BufferPool::thread_io_snapshot`]).
    pub fn thread_io_snapshot(&self) -> IoStatsSnapshot {
        self.pool.thread_io_snapshot()
    }

    /// Per-worker-shard I/O snapshots; their sum equals
    /// [`TopKIndex::io_snapshot`].
    pub fn worker_io_snapshots(&self) -> Vec<IoStatsSnapshot> {
        self.pool.worker_io_snapshots()
    }

    /// Resets the I/O counters (keeps the cache warm).
    pub fn reset_io_stats(&self) {
        self.pool.reset_io_stats();
    }

    /// Clears the buffer pool cache *and* the counters — a fully cold start.
    pub fn cold_start(&self) {
        self.pool.clear_cache();
        self.pool.reset_io_stats();
    }

    /// The deterministic work it took to bring this index up: built from
    /// the dataset, or opened from a snapshot trailer.
    pub fn cold_start_info(&self) -> ColdStartInfo {
        self.cold_start_info
    }

    /// Saves the index as a versioned snapshot under `dir` (written as
    /// `dir/index.pages`; the directory is created if missing), for a later
    /// [`IndexBuilder::open_snapshot`] to serve without rebuilding.
    ///
    /// Every data page is read through this index's buffer pool, so the
    /// copy is checksum-verified and shows up in the I/O counters (and, in
    /// chaos runs, on the fault injector's operation clock). Do not save
    /// into the directory a disk/mmap-backed index is currently serving
    /// from — the save starts by truncating `dir/index.pages`, which is the
    /// live file in that case; the doomed copy then fails with a typed
    /// error, but the original file is gone. Save to a fresh directory.
    /// A snapshot saved mid-churn captures the *mutated* state: the copy
    /// runs under the directory read lock, so it is consistent with the
    /// last completed [`TopKIndex::apply_updates`] batch.
    pub fn save_snapshot<P: AsRef<Path>>(&self, dir: P) -> IrResult<SnapshotSummary> {
        let m = self.mutable.read();
        snapshot::write_snapshot(
            &self.pool,
            &m.lists,
            &m.tuple_region,
            self.dimensionality,
            dir.as_ref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_running_example() {
        let dataset = Dataset::running_example();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        assert_eq!(index.cardinality(), 4);
        assert_eq!(index.dimensionality(), 2);
        assert_eq!(index.list_len(DimId(0)), 4);
        assert_eq!(index.list_len(DimId(1)), 4);

        // L1 must be ordered d1, d2, d3, d4 (by decreasing first coordinate,
        // ties by id) exactly as in Figure 1.
        let mut cursor = index.list_cursor(DimId(0)).unwrap();
        let order: Vec<u32> = std::iter::from_fn(|| cursor.next_entry().unwrap())
            .map(|(id, _)| id.0)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);

        // L2 must be ordered d3, d4, d2, d1.
        let mut cursor = index.list_cursor(DimId(1)).unwrap();
        let order: Vec<u32> = std::iter::from_fn(|| cursor.next_entry().unwrap())
            .map(|(id, _)| id.0)
            .collect();
        assert_eq!(order, vec![2, 3, 1, 0]);

        // Random access returns the full tuples.
        for (id, tuple) in dataset.iter() {
            assert_eq!(&index.fetch_tuple(id).unwrap(), tuple);
        }
    }

    #[test]
    fn unknown_dimension_is_rejected_but_empty_dimension_is_not() {
        let dataset = Dataset::running_example();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        assert!(index.list_cursor(DimId(5)).is_err());

        // A dataset with an unpopulated dimension yields an empty cursor.
        let mut builder = ir_types::DatasetBuilder::new(3);
        builder.push_pairs([(0, 0.5)]).unwrap();
        let ds = builder.build();
        let idx = TopKIndex::build_in_memory(&ds).unwrap();
        assert_eq!(idx.list_len(DimId(2)), 0);
        let mut cursor = idx.list_cursor(DimId(2)).unwrap();
        assert!(cursor.next_entry().unwrap().is_none());
    }

    #[test]
    fn io_counters_start_clean_after_build() {
        let dataset = Dataset::running_example();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        assert_eq!(index.io_snapshot(), IoStatsSnapshot::default());
        index.fetch_tuple(TupleId(0)).unwrap();
        assert!(index.io_snapshot().logical_reads > 0);
        index.cold_start();
        assert_eq!(index.io_snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn disk_backend_round_trips() {
        let dir = tempfile::tempdir().unwrap();
        let dataset = Dataset::running_example();
        let index = IndexBuilder::new()
            .backend(StorageBackend::Disk(dir.path().to_path_buf()))
            .pool_capacity(2)
            .build(&dataset)
            .unwrap();
        for (id, tuple) in dataset.iter() {
            assert_eq!(&index.fetch_tuple(id).unwrap(), tuple);
        }
        assert!(dir.path().join("index.pages").exists());
        assert_eq!(index.backend_kind(), BackendKind::File);
    }

    #[test]
    fn backend_kind_parses_and_displays() {
        for (text, kind) in [
            ("mem", BackendKind::Mem),
            ("memory", BackendKind::Mem),
            ("file", BackendKind::File),
            ("disk", BackendKind::File),
            ("mmap", BackendKind::Mmap),
            // The serialized variant spellings (BENCH_*.json policy
            // metadata) parse too: FromStr is case-insensitive.
            ("Mem", BackendKind::Mem),
            ("File", BackendKind::File),
            ("Mmap", BackendKind::Mmap),
        ] {
            assert_eq!(text.parse::<BackendKind>().unwrap(), kind);
        }
        assert!("floppy".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Mmap.to_string(), "mmap");
        assert_eq!(
            StorageBackend::Mmap(PathBuf::from("/tmp/x")).kind(),
            BackendKind::Mmap
        );
        // Display is the canonical spelling: it must parse back.
        for kind in BackendKind::ALL {
            assert_eq!(kind.to_string().parse::<BackendKind>().unwrap(), kind);
        }
    }

    #[test]
    fn fault_plan_wraps_the_store_and_arms_after_build() {
        let dataset = Dataset::running_example();
        // An open-ended outage from op 0: had the wrapper been armed during
        // the build, construction itself would have failed.
        let plan = FaultPlan::device_outage(0, None);
        let index = IndexBuilder::new()
            .fault_plan(Some(plan.clone()))
            .build(&dataset)
            .unwrap();
        assert_eq!(index.fault_plan(), Some(&plan));
        let injector = index.fault_injector().unwrap();
        assert!(injector.is_armed(), "armed once the build completed");
        // Every post-build read hits the dead device.
        let err = index.fetch_tuple(TupleId(0)).unwrap_err();
        assert!(err.to_string().contains("injected device failure"), "{err}");
        // Without a plan there is no injector at all.
        let healthy = TopKIndex::build_in_memory(&dataset).unwrap();
        assert!(healthy.fault_injector().is_none());
        assert!(healthy.fault_plan().is_none());
    }

    #[test]
    fn snapshot_roundtrip_preserves_index_and_reports_cold_start() {
        let dataset = Dataset::running_example();
        let built = TopKIndex::build_in_memory(&dataset).unwrap();
        let info = built.cold_start_info();
        assert_eq!(info.source, ColdStartSource::Built);
        assert!(info.pages > 0, "a build writes pages");
        assert!(info.bytes > 0, "a build parses every coordinate");

        let dir = tempfile::tempdir().unwrap();
        let summary = built.save_snapshot(dir.path()).unwrap();
        assert!(summary.data_pages > 0);
        assert!(summary.trailer_pages >= 2, "directories + superheader");
        assert_eq!(
            summary.total_pages,
            summary.data_pages + summary.trailer_pages
        );
        assert_eq!(
            summary.file_bytes,
            std::fs::metadata(dir.path().join("index.pages"))
                .unwrap()
                .len()
        );

        for kind in [BackendKind::Mem, BackendKind::File] {
            let backend = match kind {
                BackendKind::Mem => StorageBackend::Memory,
                // Any path on the variant is ignored by open_snapshot.
                _ => StorageBackend::Disk(PathBuf::from("/nonexistent-ignored")),
            };
            let opened = IndexBuilder::new()
                .backend(backend)
                .open_snapshot(dir.path())
                .unwrap();
            assert_eq!(opened.cardinality(), built.cardinality());
            assert_eq!(opened.dimensionality(), built.dimensionality());
            assert_eq!(opened.backend_kind(), kind);
            for dim in 0..2 {
                assert_eq!(
                    opened.list_directory(DimId(dim)),
                    built.list_directory(DimId(dim))
                );
            }
            // Counters start clean, exactly like a fresh build.
            assert_eq!(opened.io_snapshot(), IoStatsSnapshot::default());
            for (id, tuple) in dataset.iter() {
                assert_eq!(&opened.fetch_tuple(id).unwrap(), tuple);
            }
            let info = opened.cold_start_info();
            assert_eq!(info.source, ColdStartSource::Snapshot);
            assert!(info.pages > 0);
            // The open decodes only superheader + directory records.
            assert_eq!(info.bytes, 64 + 12 * (2 + dataset.cardinality() as u64));
            assert!(
                info.bytes < built.cold_start_info().bytes,
                "snapshot open must parse fewer bytes than the build"
            );
        }
    }

    #[test]
    fn open_snapshot_with_faults_armed_surfaces_typed_errors() {
        let dataset = Dataset::running_example();
        let dir = tempfile::tempdir().unwrap();
        TopKIndex::build_in_memory(&dataset)
            .unwrap()
            .save_snapshot(dir.path())
            .unwrap();
        // A dead device from op 0: the trailer read itself must fail typed
        // (the injector arms *before* the superheader is touched).
        let err = IndexBuilder::new()
            .fault_plan(Some(FaultPlan::device_outage(0, None)))
            .open_snapshot(dir.path())
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("injected device failure"), "{err}");
    }

    #[test]
    fn open_snapshot_rejects_a_plain_page_file() {
        // A disk-built index writes a valid *page* file with no snapshot
        // trailer; open_snapshot must reject it as typed corruption, not
        // misread data pages as a trailer.
        let dir = tempfile::tempdir().unwrap();
        IndexBuilder::new()
            .backend(StorageBackend::Disk(dir.path().to_path_buf()))
            .build(&Dataset::running_example())
            .unwrap();
        let err = IndexBuilder::new()
            .open_snapshot(dir.path())
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, IrError::Corruption { .. }),
            "expected typed corruption, got: {err}"
        );
    }

    #[cfg(feature = "mmap")]
    #[test]
    fn mmap_snapshot_open_serves_directly() {
        let dataset = Dataset::running_example();
        let dir = tempfile::tempdir().unwrap();
        TopKIndex::build_in_memory(&dataset)
            .unwrap()
            .save_snapshot(dir.path())
            .unwrap();
        let opened = IndexBuilder::new()
            .backend(StorageBackend::Mmap(PathBuf::from("/ignored")))
            .open_snapshot(dir.path())
            .unwrap();
        assert_eq!(opened.backend_kind(), BackendKind::Mmap);
        assert_eq!(opened.cold_start_info().source, ColdStartSource::Snapshot);
        for (id, tuple) in dataset.iter() {
            assert_eq!(&opened.fetch_tuple(id).unwrap(), tuple);
        }
    }

    #[cfg(feature = "mmap")]
    #[test]
    fn mmap_backend_round_trips() {
        let dir = tempfile::tempdir().unwrap();
        let dataset = Dataset::running_example();
        let index = IndexBuilder::new()
            .backend(StorageBackend::Mmap(dir.path().to_path_buf()))
            .pool_capacity(2)
            .build(&dataset)
            .unwrap();
        // Build-time store traffic is wiped with the pool counters: queries
        // start from a clean slate on every backend.
        assert_eq!(index.store_io_snapshot(), IoStatsSnapshot::default());
        for (id, tuple) in dataset.iter() {
            assert_eq!(&index.fetch_tuple(id).unwrap(), tuple);
        }
        assert!(dir.path().join("index.pages").exists());
        assert_eq!(index.backend_kind(), BackendKind::Mmap);
        assert!(index.store_io_snapshot().logical_reads > 0);
    }

    #[cfg(not(feature = "mmap"))]
    #[test]
    fn mmap_backend_errors_without_the_feature() {
        let dir = tempfile::tempdir().unwrap();
        let err = IndexBuilder::new()
            .backend(StorageBackend::Mmap(dir.path().to_path_buf()))
            .build(&Dataset::running_example())
            .map(|_| ())
            .unwrap_err();
        assert!(
            err.to_string().contains("mmap"),
            "error must name the missing feature: {err}"
        );
    }
}
