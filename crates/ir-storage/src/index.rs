//! [`TopKIndex`]: the physical design the query algorithms operate on.
//!
//! An index bundles, for one dataset,
//!
//! * one inverted list per populated dimension (sorted access),
//! * the external tuple file (random access),
//! * the buffer pool and its I/O counters,
//! * the dataset-level metadata (cardinality, dimensionality).
//!
//! Building the index corresponds to the offline preparation step of the
//! paper's system model (Section 7.1); querying it is what TA, Scan and CPT
//! do online.

use crate::buffer::{BufferPool, DEFAULT_POOL_CAPACITY};
use crate::inverted::{write_list, InvertedListCursor, ListDirectoryEntry};
use crate::pagestore::{FilePageStore, MemPageStore, PageStore};
use crate::stats::{IoConfig, IoStatsSnapshot};
use crate::tuplestore::{write_tuples, TupleReader, TupleRegion};
use ir_types::{Dataset, DimId, IrError, IrResult, SparseVector, TupleId};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Which device backs the page store.
#[derive(Clone, Debug, Default)]
pub enum StorageBackend {
    /// Pages in memory (default); I/O is still accounted at page granularity.
    #[default]
    Memory,
    /// Pages in a flat file under the given directory (`index.pages`).
    Disk(PathBuf),
}

/// Builder for [`TopKIndex`].
#[derive(Debug)]
#[must_use = "an index builder does nothing until `build` is called"]
pub struct IndexBuilder {
    backend: StorageBackend,
    pool_capacity: usize,
    io_config: IoConfig,
}

impl Default for IndexBuilder {
    fn default() -> Self {
        IndexBuilder {
            backend: StorageBackend::Memory,
            pool_capacity: DEFAULT_POOL_CAPACITY,
            io_config: IoConfig::default(),
        }
    }
}

impl IndexBuilder {
    /// Starts a builder with the default (memory) backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the storage backend.
    pub fn backend(mut self, backend: StorageBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the buffer-pool capacity in pages.
    pub fn pool_capacity(mut self, pages: usize) -> Self {
        self.pool_capacity = pages;
        self
    }

    /// Sets the I/O latency model reported by the index.
    pub fn io_config(mut self, config: IoConfig) -> Self {
        self.io_config = config;
        self
    }

    /// Builds the physical index from an in-memory dataset.
    pub fn build(self, dataset: &Dataset) -> IrResult<TopKIndex> {
        let store: Arc<dyn PageStore> = match &self.backend {
            StorageBackend::Memory => Arc::new(MemPageStore::new()),
            StorageBackend::Disk(dir) => {
                std::fs::create_dir_all(dir)?;
                Arc::new(FilePageStore::create(dir.join("index.pages"))?)
            }
        };
        let pool = Arc::new(BufferPool::with_capacity(store, self.pool_capacity));

        // Collect the per-dimension postings.
        let mut postings: HashMap<DimId, Vec<(TupleId, f64)>> = HashMap::new();
        for (id, tuple) in dataset.iter() {
            for (dim, value) in tuple.iter() {
                postings.entry(dim).or_default().push((id, value));
            }
        }
        // Sort each list by decreasing value, ties by increasing tuple id, and
        // write it out. Dimensions are processed in increasing id order so the
        // physical layout is deterministic.
        let mut dims: Vec<DimId> = postings.keys().copied().collect();
        dims.sort_unstable();
        let mut lists: HashMap<DimId, ListDirectoryEntry> = HashMap::with_capacity(dims.len());
        for dim in dims {
            let mut entries = postings.remove(&dim).expect("dimension present");
            entries.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let directory = write_list(&pool, dim, &entries)?;
            lists.insert(dim, directory);
        }

        let tuple_region: TupleRegion = write_tuples(&pool, dataset)?;

        // Index construction is an offline step: wipe the build-time I/O so
        // query measurements start from a clean slate (and from a cold cache).
        pool.clear_cache();
        pool.reset_io_stats();

        Ok(TopKIndex {
            pool,
            lists,
            tuple_region,
            cardinality: dataset.cardinality(),
            dimensionality: dataset.dimensionality(),
            io_config: self.io_config,
        })
    }

    /// [`IndexBuilder::build`], wrapped in an [`Arc`] so the index can be
    /// shared by owning handles (engines, subscriptions) without lifetimes.
    pub fn build_shared(self, dataset: &Dataset) -> IrResult<Arc<TopKIndex>> {
        self.build(dataset).map(Arc::new)
    }
}

/// The physical top-k index: inverted lists + tuple file + buffer pool.
pub struct TopKIndex {
    pool: Arc<BufferPool>,
    lists: HashMap<DimId, ListDirectoryEntry>,
    tuple_region: TupleRegion,
    cardinality: usize,
    dimensionality: u32,
    io_config: IoConfig,
}

impl TopKIndex {
    /// Builds an index with all defaults (memory backend).
    pub fn build_in_memory(dataset: &Dataset) -> IrResult<Self> {
        IndexBuilder::new().build(dataset)
    }

    /// Number of tuples indexed.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Dataset dimensionality `m`.
    pub fn dimensionality(&self) -> u32 {
        self.dimensionality
    }

    /// The I/O latency model configured for this index.
    pub fn io_config(&self) -> IoConfig {
        self.io_config
    }

    /// The buffer pool (shared with cursors and readers).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Length of dimension `dim`'s inverted list (zero when no tuple has a
    /// non-zero coordinate there).
    pub fn list_len(&self, dim: DimId) -> usize {
        self.lists.get(&dim).map_or(0, |d| d.num_entries as usize)
    }

    /// Directory entry of a dimension's list, if it exists.
    pub fn list_directory(&self, dim: DimId) -> Option<ListDirectoryEntry> {
        self.lists.get(&dim).copied()
    }

    /// Opens a sorted-access cursor at the head of dimension `dim`'s list.
    ///
    /// A dimension with no postings yields an empty cursor (never an error):
    /// a query weight on such a dimension is legal, it simply contributes
    /// nothing to any score.
    pub fn list_cursor(&self, dim: DimId) -> IrResult<InvertedListCursor> {
        if dim.0 >= self.dimensionality {
            return Err(IrError::UnknownDimension {
                dim: dim.0,
                dimensionality: self.dimensionality,
            });
        }
        let directory = self.lists.get(&dim).copied().unwrap_or(ListDirectoryEntry {
            dim,
            first_page: crate::page::PageId(0),
            num_entries: 0,
        });
        Ok(InvertedListCursor::new(Arc::clone(&self.pool), directory))
    }

    /// Fetches the full sparse vector of a tuple (random access).
    pub fn fetch_tuple(&self, id: TupleId) -> IrResult<SparseVector> {
        TupleReader::new(Arc::clone(&self.pool), self.tuple_region.clone()).fetch(id)
    }

    /// Creates a long-lived tuple reader sharing this index's pool.
    pub fn tuple_reader(&self) -> TupleReader {
        TupleReader::new(Arc::clone(&self.pool), self.tuple_region.clone())
    }

    /// Snapshot of the I/O counters accumulated since the last reset.
    pub fn io_snapshot(&self) -> IoStatsSnapshot {
        self.pool.io_snapshot()
    }

    /// Snapshot of the calling thread's own I/O shard (per-worker
    /// attribution; see [`BufferPool::thread_io_snapshot`]).
    pub fn thread_io_snapshot(&self) -> IoStatsSnapshot {
        self.pool.thread_io_snapshot()
    }

    /// Per-worker-shard I/O snapshots; their sum equals
    /// [`TopKIndex::io_snapshot`].
    pub fn worker_io_snapshots(&self) -> Vec<IoStatsSnapshot> {
        self.pool.worker_io_snapshots()
    }

    /// Resets the I/O counters (keeps the cache warm).
    pub fn reset_io_stats(&self) {
        self.pool.reset_io_stats();
    }

    /// Clears the buffer pool cache *and* the counters — a fully cold start.
    pub fn cold_start(&self) {
        self.pool.clear_cache();
        self.pool.reset_io_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_running_example() {
        let dataset = Dataset::running_example();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        assert_eq!(index.cardinality(), 4);
        assert_eq!(index.dimensionality(), 2);
        assert_eq!(index.list_len(DimId(0)), 4);
        assert_eq!(index.list_len(DimId(1)), 4);

        // L1 must be ordered d1, d2, d3, d4 (by decreasing first coordinate,
        // ties by id) exactly as in Figure 1.
        let mut cursor = index.list_cursor(DimId(0)).unwrap();
        let order: Vec<u32> = std::iter::from_fn(|| cursor.next_entry().unwrap())
            .map(|(id, _)| id.0)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);

        // L2 must be ordered d3, d4, d2, d1.
        let mut cursor = index.list_cursor(DimId(1)).unwrap();
        let order: Vec<u32> = std::iter::from_fn(|| cursor.next_entry().unwrap())
            .map(|(id, _)| id.0)
            .collect();
        assert_eq!(order, vec![2, 3, 1, 0]);

        // Random access returns the full tuples.
        for (id, tuple) in dataset.iter() {
            assert_eq!(&index.fetch_tuple(id).unwrap(), tuple);
        }
    }

    #[test]
    fn unknown_dimension_is_rejected_but_empty_dimension_is_not() {
        let dataset = Dataset::running_example();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        assert!(index.list_cursor(DimId(5)).is_err());

        // A dataset with an unpopulated dimension yields an empty cursor.
        let mut builder = ir_types::DatasetBuilder::new(3);
        builder.push_pairs([(0, 0.5)]).unwrap();
        let ds = builder.build();
        let idx = TopKIndex::build_in_memory(&ds).unwrap();
        assert_eq!(idx.list_len(DimId(2)), 0);
        let mut cursor = idx.list_cursor(DimId(2)).unwrap();
        assert!(cursor.next_entry().unwrap().is_none());
    }

    #[test]
    fn io_counters_start_clean_after_build() {
        let dataset = Dataset::running_example();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        assert_eq!(index.io_snapshot(), IoStatsSnapshot::default());
        index.fetch_tuple(TupleId(0)).unwrap();
        assert!(index.io_snapshot().logical_reads > 0);
        index.cold_start();
        assert_eq!(index.io_snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn disk_backend_round_trips() {
        let dir = tempfile::tempdir().unwrap();
        let dataset = Dataset::running_example();
        let index = IndexBuilder::new()
            .backend(StorageBackend::Disk(dir.path().to_path_buf()))
            .pool_capacity(2)
            .build(&dataset)
            .unwrap();
        for (id, tuple) in dataset.iter() {
            assert_eq!(&index.fetch_tuple(id).unwrap(), tuple);
        }
        assert!(dir.path().join("index.pages").exists());
    }
}
