//! In-place index maintenance: applying [`TupleUpdate`]s to a live
//! [`crate::TopKIndex`] without a rebuild.
//!
//! The paper's system model builds the physical design once, offline. The
//! dynamic layer keeps it live under churn by touching only what an update
//! can affect:
//!
//! * **Tuple store** — deletes tombstone the directory entry (`nnz = 0`;
//!   the bytes become garbage, never read again). Same-length coordinate
//!   rewrites go in place. Growing records and inserts append at the
//!   region's byte tail, inside a capacity run that doubles geometrically:
//!   when the tail outgrows the run, the used pages are copied once into a
//!   fresh contiguous run twice the size (a *relocation*, counted in
//!   [`MaintenanceStatsSnapshot::tuple_relocations`]). The region therefore
//!   stays a single contiguous page run — the invariant the snapshot
//!   superheader records and validates.
//! * **Inverted lists** — each dimension whose postings change is rewritten
//!   wholesale from its current pages: read, patch, re-sort with the exact
//!   build-time comparator (decreasing value, ties by increasing tuple id),
//!   write back. A list that still fits rewrites into its own run; one that
//!   outgrew it moves to the best-fit recycled run (or fresh pages) and its
//!   old run joins the free list. Rewriting the full list keeps the stored
//!   order bit-compatible with a fresh build of the mutated dataset, which
//!   is what makes the incremental-≡-recompute oracle hold with *equality*
//!   rather than approximation.
//! * **Free runs** — page runs vacated by moved lists or relocated tuple
//!   regions are recycled best-fit (smallest adequate run, ties to the
//!   lowest page id, remainder split back). Allocation order is a function
//!   of the update sequence alone, so the physical layout after any update
//!   sequence is deterministic across backends and worker counts.
//!
//! Batches are pre-validated in full against the dataset shape before any
//! page is touched, so a malformed update rejects the whole batch instead
//! of applying a prefix. I/O failures mid-batch can still leave a partially
//! applied batch behind (the error is surfaced; the index remains
//! internally consistent up to the last completed update).

use crate::buffer::BufferPool;
use crate::inverted::{read_list, write_list_at, ListDirectoryEntry, ENTRIES_PER_PAGE};
use crate::page::{PageId, PAGE_SIZE};
use crate::tuplestore::{
    encode_record, read_tuple, write_region_bytes, TupleDirectoryEntry, TupleRegion,
};
use ir_types::update::TupleUpdate;
use ir_types::{DimId, IrResult, SparseVector, TupleId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// What one applied update changed, as the layers above need to see it: the
/// touched tuple plus its vector before and after. The region-invalidation
/// layer decides from exactly this pair whether a subscription's immutable
/// region was punctured.
#[derive(Clone, Debug, PartialEq)]
pub struct AppliedUpdate {
    /// The tuple the update touched (for an insert, the freshly assigned
    /// dense id).
    pub tuple: TupleId,
    /// The tuple's vector before the update (empty for an insert).
    pub old_vector: SparseVector,
    /// The tuple's vector after the update (empty for a delete).
    pub new_vector: SparseVector,
}

/// Monotonic maintenance counters owned by a [`crate::TopKIndex`] — the
/// "maintenance I/O accounted separately" half of the update model. Updated
/// once per batch from a thread-local I/O diff, so concurrent queries on
/// other threads never pollute the attribution.
#[derive(Debug, Default)]
pub struct MaintenanceStats {
    updates_applied: AtomicU64,
    batches: AtomicU64,
    lists_rewritten: AtomicU64,
    tuple_relocations: AtomicU64,
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    pages_written: AtomicU64,
}

/// Snapshot of [`MaintenanceStats`], suitable for diffing and emission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenanceStatsSnapshot {
    /// Individual updates applied (a batch of `n` counts `n`).
    pub updates_applied: u64,
    /// Batches applied (a single-update call counts one).
    pub batches: u64,
    /// Inverted-list rewrites performed (one per affected dimension per
    /// batch).
    pub lists_rewritten: u64,
    /// Times the tuple region outgrew its capacity run and was copied into
    /// a doubled one.
    pub tuple_relocations: u64,
    /// Logical page reads attributed to maintenance.
    pub logical_reads: u64,
    /// Physical page reads attributed to maintenance.
    pub physical_reads: u64,
    /// Pages written by maintenance.
    pub pages_written: u64,
}

impl MaintenanceStats {
    /// Folds one applied batch into the counters.
    pub(crate) fn record_batch(
        &self,
        updates: u64,
        outcome: &BatchOutcome,
        io: &crate::stats::IoStatsSnapshot,
    ) {
        self.updates_applied.fetch_add(updates, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.lists_rewritten
            .fetch_add(outcome.lists_rewritten, Ordering::Relaxed);
        self.tuple_relocations
            .fetch_add(outcome.tuple_relocations, Ordering::Relaxed);
        self.logical_reads
            .fetch_add(io.logical_reads, Ordering::Relaxed);
        self.physical_reads
            .fetch_add(io.physical_reads, Ordering::Relaxed);
        self.pages_written
            .fetch_add(io.pages_written, Ordering::Relaxed);
    }

    /// Takes a snapshot of the current counters.
    pub fn snapshot(&self) -> MaintenanceStatsSnapshot {
        MaintenanceStatsSnapshot {
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            lists_rewritten: self.lists_rewritten.load(Ordering::Relaxed),
            tuple_relocations: self.tuple_relocations.load(Ordering::Relaxed),
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
        }
    }
}

/// Per-batch tallies the caller folds into [`MaintenanceStats`].
#[derive(Debug, Default)]
pub(crate) struct BatchOutcome {
    pub(crate) lists_rewritten: u64,
    pub(crate) tuple_relocations: u64,
}

/// The mutable half of a [`crate::TopKIndex`]: directories plus the
/// allocation bookkeeping maintenance needs. Lives behind the index's
/// `RwLock`; queries clone directory state out under a read lock,
/// maintenance holds the write lock for a whole batch.
pub(crate) struct Mutable {
    /// Per-dimension inverted-list directory.
    pub(crate) lists: HashMap<DimId, ListDirectoryEntry>,
    /// The tuple region (single contiguous page run + per-tuple directory).
    pub(crate) tuple_region: TupleRegion,
    /// Number of addressable tuple ids (tombstones included).
    pub(crate) cardinality: usize,
    /// Pages actually allocated to each list's run (≥ its
    /// [`ListDirectoryEntry::num_pages`]; the slack absorbs shrinkage).
    list_caps: HashMap<DimId, u32>,
    /// Pages allocated to the tuple region's run (≥ `tuple_region.num_pages`).
    tuple_capacity_pages: u32,
    /// Next free byte offset inside the tuple region (append cursor).
    tuple_tail_bytes: u64,
    /// Recyclable page runs `(first, len)`, sorted by first page and
    /// coalesced.
    free_runs: Vec<(PageId, u32)>,
}

impl Mutable {
    /// Derives the bookkeeping from freshly built or reopened directories:
    /// no slack, no free runs — maintenance grows them as needed.
    pub(crate) fn derive(
        lists: HashMap<DimId, ListDirectoryEntry>,
        tuple_region: TupleRegion,
        cardinality: usize,
    ) -> Self {
        let list_caps = lists
            .iter()
            .map(|(dim, entry)| (*dim, entry.num_pages().max(1)))
            .collect();
        let tuple_tail_bytes = tuple_region
            .directory
            .iter()
            .map(|e| e.offset + e.byte_len() as u64)
            .max()
            .unwrap_or(0);
        Mutable {
            list_caps,
            tuple_capacity_pages: tuple_region.num_pages,
            tuple_tail_bytes,
            free_runs: Vec::new(),
            lists,
            tuple_region,
            cardinality,
        }
    }
}

/// Applies a batch of updates to the physical index. Returns one
/// [`AppliedUpdate`] per input update, in order, plus the batch tallies.
///
/// The batch is validated in full first (against the shape the dataset will
/// have at each update's turn, so a batch may mutate a tuple it inserted
/// earlier); only then are pages touched.
pub(crate) fn apply_batch(
    pool: &BufferPool,
    dimensionality: u32,
    m: &mut Mutable,
    updates: &[TupleUpdate],
) -> IrResult<(Vec<AppliedUpdate>, BatchOutcome)> {
    let mut simulated_cardinality = m.cardinality;
    for update in updates {
        update.validate(simulated_cardinality, dimensionality)?;
        if matches!(update, TupleUpdate::Insert { .. }) {
            simulated_cardinality += 1;
        }
    }

    let mut outcome = BatchOutcome::default();
    let mut applied = Vec::with_capacity(updates.len());
    // Net posting change per dimension: tuple → Some(new value) | None
    // (gone). Later writes to the same (dim, tuple) overwrite earlier ones,
    // so each affected list is rewritten exactly once per batch.
    let mut deltas: BTreeMap<DimId, BTreeMap<TupleId, Option<f64>>> = BTreeMap::new();

    for update in updates {
        let (tuple, old_vector, new_vector) = apply_tuple_change(pool, m, update, &mut outcome)?;
        merge_posting_deltas(&mut deltas, tuple, &old_vector, &new_vector);
        applied.push(AppliedUpdate {
            tuple,
            old_vector,
            new_vector,
        });
    }

    // Rewrite each affected list once, dimensions ascending so the page
    // allocation order (and thus the physical layout) is deterministic.
    for (dim, changes) in deltas {
        if changes.is_empty() {
            continue;
        }
        let mut entries = match m.lists.get(&dim) {
            Some(entry) => read_list(pool, entry)?,
            None => Vec::new(),
        };
        entries.retain(|(tuple, _)| !changes.contains_key(tuple));
        for (tuple, value) in changes {
            if let Some(value) = value {
                entries.push((tuple, value));
            }
        }
        // The exact build-time order: decreasing value, ties by id.
        entries.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rewrite_list(pool, m, dim, &entries)?;
        outcome.lists_rewritten += 1;
    }

    Ok((applied, outcome))
}

/// Applies one update to the tuple store and returns `(tuple, old, new)`.
fn apply_tuple_change(
    pool: &BufferPool,
    m: &mut Mutable,
    update: &TupleUpdate,
    outcome: &mut BatchOutcome,
) -> IrResult<(TupleId, SparseVector, SparseVector)> {
    match update {
        TupleUpdate::Insert { vector } => {
            let id = TupleId::from(m.cardinality);
            let offset = append_record(pool, m, vector, outcome)?;
            m.tuple_region.directory.push(TupleDirectoryEntry {
                offset,
                nnz: vector.nnz() as u32,
            });
            m.cardinality += 1;
            Ok((id, SparseVector::new(), vector.clone()))
        }
        TupleUpdate::Delete { tuple } => {
            let old = read_tuple(pool, &m.tuple_region, *tuple)?;
            m.tuple_region.directory[tuple.index()].nnz = 0;
            Ok((*tuple, old, SparseVector::new()))
        }
        TupleUpdate::UpdateScore { tuple, dim, value } => {
            let old = read_tuple(pool, &m.tuple_region, *tuple)?;
            let new = old.with_coordinate(*dim, *value)?;
            let entry = &mut m.tuple_region.directory[tuple.index()];
            if new.nnz() == 0 {
                entry.nnz = 0;
            } else if new.nnz() == old.nnz() {
                // Same record length: overwrite in place.
                let offset = entry.offset;
                write_region_bytes(pool, &m.tuple_region, offset, &encode_record(&new))?;
            } else {
                let offset = append_record(pool, m, &new, outcome)?;
                let entry = &mut m.tuple_region.directory[tuple.index()];
                entry.offset = offset;
                entry.nnz = new.nnz() as u32;
            }
            Ok((*tuple, old, new))
        }
    }
}

/// Records, per dimension where old and new disagree, the tuple's new
/// posting value (`None` when the coordinate vanished).
fn merge_posting_deltas(
    deltas: &mut BTreeMap<DimId, BTreeMap<TupleId, Option<f64>>>,
    tuple: TupleId,
    old: &SparseVector,
    new: &SparseVector,
) {
    for (dim, old_value) in old.iter() {
        let new_value = new.get(dim);
        if new_value != old_value {
            deltas
                .entry(dim)
                .or_default()
                .insert(tuple, (new_value != 0.0).then_some(new_value));
        }
    }
    for (dim, new_value) in new.iter() {
        if old.get(dim) == 0.0 {
            deltas
                .entry(dim)
                .or_default()
                .insert(tuple, Some(new_value));
        }
    }
}

/// Appends one record at the region's byte tail, relocating the region into
/// a doubled capacity run first when the tail would outgrow it. Returns the
/// record's region-relative byte offset.
fn append_record(
    pool: &BufferPool,
    m: &mut Mutable,
    vector: &SparseVector,
    outcome: &mut BatchOutcome,
) -> IrResult<u64> {
    let bytes = encode_record(vector);
    let start = m.tuple_tail_bytes;
    let end = start + bytes.len() as u64;
    let needed_pages = (end.div_ceil(PAGE_SIZE as u64) as u32).max(1);
    if needed_pages > m.tuple_capacity_pages {
        relocate_tuple_region(pool, m, needed_pages)?;
        outcome.tuple_relocations += 1;
    }
    if !bytes.is_empty() {
        write_region_bytes(pool, &m.tuple_region, start, &bytes)?;
    }
    m.tuple_tail_bytes = end;
    m.tuple_region.num_pages = m.tuple_region.num_pages.max(needed_pages);
    Ok(start)
}

/// Copies the region's used pages into a fresh contiguous run of at least
/// `needed_pages` (geometric doubling), freeing the old run.
fn relocate_tuple_region(pool: &BufferPool, m: &mut Mutable, needed_pages: u32) -> IrResult<()> {
    let new_capacity = needed_pages
        .max(m.tuple_capacity_pages.saturating_mul(2))
        .max(1);
    let new_first = acquire_run(pool, &mut m.free_runs, new_capacity)?;
    for page_idx in 0..m.tuple_region.num_pages {
        let buf = pool.read(PageId(m.tuple_region.first_page.0 + page_idx))?;
        pool.write(PageId(new_first.0 + page_idx), &buf)?;
    }
    release_run(
        &mut m.free_runs,
        m.tuple_region.first_page,
        m.tuple_capacity_pages,
    );
    m.tuple_region.first_page = new_first;
    m.tuple_capacity_pages = new_capacity;
    Ok(())
}

/// Writes `entries` (already in final order) as dimension `dim`'s list:
/// into its own run when it still fits, else into a recycled or fresh run.
/// An emptied list is dropped from the directory — exactly what a fresh
/// build of the mutated dataset would produce.
fn rewrite_list(
    pool: &BufferPool,
    m: &mut Mutable,
    dim: DimId,
    entries: &[(TupleId, f64)],
) -> IrResult<()> {
    if entries.is_empty() {
        if let Some(old) = m.lists.remove(&dim) {
            let cap = m.list_caps.remove(&dim).unwrap_or(old.num_pages().max(1));
            release_run(&mut m.free_runs, old.first_page, cap);
        }
        return Ok(());
    }
    let needed = entries.len().div_ceil(ENTRIES_PER_PAGE).max(1) as u32;
    let (first_page, cap) = match m.lists.get(&dim) {
        Some(old) => {
            let cap = m
                .list_caps
                .get(&dim)
                .copied()
                .unwrap_or(old.num_pages().max(1));
            if cap >= needed {
                (old.first_page, cap)
            } else {
                release_run(&mut m.free_runs, old.first_page, cap);
                (acquire_run(pool, &mut m.free_runs, needed)?, needed)
            }
        }
        None => (acquire_run(pool, &mut m.free_runs, needed)?, needed),
    };
    let directory = write_list_at(pool, dim, entries, first_page)?;
    m.lists.insert(dim, directory);
    m.list_caps.insert(dim, cap);
    Ok(())
}

/// Takes exactly `needed` contiguous pages: best-fit from the free list
/// (smallest adequate run, ties to the lowest page id, remainder split
/// back), falling back to a fresh pool allocation.
fn acquire_run(
    pool: &BufferPool,
    free_runs: &mut Vec<(PageId, u32)>,
    needed: u32,
) -> IrResult<PageId> {
    let best = free_runs
        .iter()
        .enumerate()
        .filter(|(_, (_, len))| *len >= needed)
        .min_by_key(|(_, (first, len))| (*len, first.0))
        .map(|(idx, _)| idx);
    match best {
        Some(idx) => {
            let (first, len) = free_runs.remove(idx);
            if len > needed {
                release_run(free_runs, PageId(first.0 + needed), len - needed);
            }
            Ok(first)
        }
        None => pool.allocate(needed),
    }
}

/// Returns a run to the free list, keeping it sorted by first page and
/// coalescing with adjacent runs.
fn release_run(free_runs: &mut Vec<(PageId, u32)>, first: PageId, len: u32) {
    if len == 0 {
        return;
    }
    let pos = free_runs.partition_point(|(f, _)| f.0 < first.0);
    free_runs.insert(pos, (first, len));
    // Coalesce with the successor, then the predecessor.
    if pos + 1 < free_runs.len()
        && free_runs[pos].0 .0 + free_runs[pos].1 == free_runs[pos + 1].0 .0
    {
        free_runs[pos].1 += free_runs[pos + 1].1;
        free_runs.remove(pos + 1);
    }
    if pos > 0 && free_runs[pos - 1].0 .0 + free_runs[pos - 1].1 == free_runs[pos].0 .0 {
        free_runs[pos - 1].1 += free_runs[pos].1;
        free_runs.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::MemPageStore;
    use std::sync::Arc;

    fn make_pool() -> BufferPool {
        BufferPool::new(Arc::new(MemPageStore::new()))
    }

    #[test]
    fn acquire_prefers_best_fit_and_splits_the_remainder() {
        let pool = make_pool();
        let mut runs = vec![(PageId(10), 5), (PageId(30), 3), (PageId(50), 3)];
        // Best fit for 2 is the 3-page run at the lowest page id (30).
        let got = acquire_run(&pool, &mut runs, 2).unwrap();
        assert_eq!(got, PageId(30));
        assert_eq!(
            runs,
            vec![(PageId(10), 5), (PageId(32), 1), (PageId(50), 3)]
        );
        // Nothing fits 9 → a fresh allocation from the (empty) pool.
        let fresh = acquire_run(&pool, &mut runs, 9).unwrap();
        assert_eq!(fresh, PageId(0));
        assert_eq!(runs.len(), 3, "free list untouched by a fresh allocation");
    }

    #[test]
    fn release_coalesces_adjacent_runs() {
        let mut runs = vec![(PageId(0), 2), (PageId(5), 2)];
        release_run(&mut runs, PageId(2), 3);
        assert_eq!(runs, vec![(PageId(0), 7)]);
        release_run(&mut runs, PageId(10), 1);
        release_run(&mut runs, PageId(8), 1);
        assert_eq!(runs, vec![(PageId(0), 7), (PageId(8), 1), (PageId(10), 1)]);
        release_run(&mut runs, PageId(9), 1);
        assert_eq!(runs, vec![(PageId(0), 7), (PageId(8), 3)]);
        release_run(&mut runs, PageId(100), 0);
        assert_eq!(runs.len(), 2, "zero-length releases are ignored");
    }

    #[test]
    fn posting_deltas_capture_the_symmetric_difference() {
        let old = SparseVector::from_pairs([(0, 0.5), (1, 0.25)]).unwrap();
        let new = SparseVector::from_pairs([(1, 0.75), (2, 0.1)]).unwrap();
        let mut deltas = BTreeMap::new();
        merge_posting_deltas(&mut deltas, TupleId(7), &old, &new);
        assert_eq!(deltas[&DimId(0)][&TupleId(7)], None);
        assert_eq!(deltas[&DimId(1)][&TupleId(7)], Some(0.75));
        assert_eq!(deltas[&DimId(2)][&TupleId(7)], Some(0.1));
        // A later change to the same tuple overwrites the earlier record.
        merge_posting_deltas(&mut deltas, TupleId(7), &new, &old);
        assert_eq!(deltas[&DimId(0)][&TupleId(7)], Some(0.5));
        assert_eq!(deltas[&DimId(1)][&TupleId(7)], Some(0.25));
        assert_eq!(deltas[&DimId(2)][&TupleId(7)], None);
    }
}
