//! I/O accounting and the latency model used to report I/O cost.
//!
//! The paper's primary cost metrics (Section 7.1) are the number of evaluated
//! candidates, the I/O time and the CPU time. We account I/O at page
//! granularity in the buffer pool and convert *physical* page reads into a
//! simulated I/O time with a configurable per-page latency, defaulting to a
//! 2012-era magnetic-disk random read. Logical reads (buffer hits) are also
//! reported because they are the machine-independent part of the metric.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Mutable, thread-safe I/O counters owned by a [`crate::BufferPool`].
#[derive(Debug, Default)]
pub struct IoStats {
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    pages_written: AtomicU64,
}

/// An immutable snapshot of the counters, suitable for diffing before/after a
/// measured operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStatsSnapshot {
    /// Page requests served (hits + misses).
    pub logical_reads: u64,
    /// Page requests that had to go to the page store.
    pub physical_reads: u64,
    /// Pages written back to the page store.
    pub pages_written: u64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a logical page read (buffer hit or miss).
    #[inline]
    pub fn record_logical_read(&self) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a physical page read (buffer miss).
    #[inline]
    pub fn record_physical_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page write.
    #[inline]
    pub fn record_write(&self) {
        self.pages_written.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot of the current counter values.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.pages_written.store(0, Ordering::Relaxed);
    }
}

impl IoStatsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            logical_reads: self.logical_reads.saturating_sub(earlier.logical_reads),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            pages_written: self.pages_written.saturating_sub(earlier.pages_written),
        }
    }

    /// Counter-wise sum.
    pub fn plus(&self, other: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            logical_reads: self.logical_reads + other.logical_reads,
            physical_reads: self.physical_reads + other.physical_reads,
            pages_written: self.pages_written + other.pages_written,
        }
    }
}

/// Configuration of the I/O latency model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IoConfig {
    /// Latency charged per *physical* page read.
    pub page_read_latency: Duration,
    /// Latency charged per page write.
    pub page_write_latency: Duration,
}

impl Default for IoConfig {
    fn default() -> Self {
        // ~5 ms per random page read approximates the magnetic disks of the
        // paper's 2012 testbed; writes only occur at index-build time and are
        // not part of any reported query metric.
        IoConfig {
            page_read_latency: Duration::from_micros(5_000),
            page_write_latency: Duration::from_micros(5_000),
        }
    }
}

impl IoConfig {
    /// An I/O model for a memory-resident deployment: zero latency, so the
    /// reported cost is CPU-only (the paper's Section 7.5, conclusion 4).
    pub fn memory_resident() -> Self {
        IoConfig {
            page_read_latency: Duration::ZERO,
            page_write_latency: Duration::ZERO,
        }
    }

    /// Simulated time to serve the physical I/O of a snapshot.
    pub fn simulated_io_time(&self, snap: &IoStatsSnapshot) -> Duration {
        self.page_read_latency * snap.physical_reads as u32
            + self.page_write_latency * snap.pages_written as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let stats = IoStats::new();
        stats.record_logical_read();
        stats.record_logical_read();
        stats.record_physical_read();
        stats.record_write();
        let snap = stats.snapshot();
        assert_eq!(snap.logical_reads, 2);
        assert_eq!(snap.physical_reads, 1);
        assert_eq!(snap.pages_written, 1);
        stats.reset();
        assert_eq!(stats.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn snapshot_diff_and_sum() {
        let a = IoStatsSnapshot {
            logical_reads: 10,
            physical_reads: 4,
            pages_written: 1,
        };
        let b = IoStatsSnapshot {
            logical_reads: 25,
            physical_reads: 9,
            pages_written: 1,
        };
        let d = b.since(&a);
        assert_eq!(d.logical_reads, 15);
        assert_eq!(d.physical_reads, 5);
        assert_eq!(d.pages_written, 0);
        let s = a.plus(&d);
        assert_eq!(s, b);
        // `since` saturates rather than underflowing.
        assert_eq!(a.since(&b).logical_reads, 0);
    }

    #[test]
    fn latency_model_scales_with_physical_reads() {
        let cfg = IoConfig::default();
        let snap = IoStatsSnapshot {
            logical_reads: 100,
            physical_reads: 10,
            pages_written: 0,
        };
        assert_eq!(cfg.simulated_io_time(&snap), Duration::from_millis(50));
        assert_eq!(
            IoConfig::memory_resident().simulated_io_time(&snap),
            Duration::ZERO
        );
    }
}
