//! I/O accounting and the latency model used to report I/O cost.
//!
//! The paper's primary cost metrics (Section 7.1) are the number of evaluated
//! candidates, the I/O time and the CPU time. We account I/O at page
//! granularity in the buffer pool and convert *physical* page reads into a
//! simulated I/O time with a configurable per-page latency, defaulting to a
//! 2012-era magnetic-disk random read. Logical reads (buffer hits) are also
//! reported because they are the machine-independent part of the metric.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of per-worker statistic shards kept by a [`ShardedIoStats`]
/// (a power of two, so consecutive shard hints never collide for up to
/// `IO_STATS_SHARDS` concurrent workers).
pub const IO_STATS_SHARDS: usize = 64;

thread_local! {
    /// Shard chosen for the calling thread: an explicit hint set by a
    /// parallel driver, or lazily derived from the thread id.
    static SHARD_HINT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Pins the calling thread's I/O accounting to shard
/// `hint % IO_STATS_SHARDS` of every [`ShardedIoStats`] it touches.
///
/// Parallel drivers call this once per worker thread with a fresh hint so
/// each worker owns a private shard and its per-worker counters can be
/// read back with [`ShardedIoStats::thread_snapshot`]. Threads that never
/// call it fall back to a shard derived from their thread id.
pub fn set_thread_stats_shard(hint: usize) {
    SHARD_HINT.with(|h| h.set(Some(hint % IO_STATS_SHARDS)));
}

/// The shard index the calling thread records into.
pub fn thread_stats_shard() -> usize {
    SHARD_HINT.with(|h| match h.get() {
        Some(shard) => shard,
        None => {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut hasher);
            let shard = (hasher.finish() as usize) % IO_STATS_SHARDS;
            h.set(Some(shard));
            shard
        }
    })
}

/// Mutable, thread-safe I/O counters owned by a [`crate::BufferPool`] (and,
/// since the backend matrix landed, by every
/// [`PageStore`](crate::pagestore::PageStore) for device-level accounting).
#[derive(Debug, Default)]
pub struct IoStats {
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    pages_written: AtomicU64,
    read_syscalls: AtomicU64,
    read_retries: AtomicU64,
    write_retries: AtomicU64,
}

/// An immutable snapshot of the counters, suitable for diffing before/after a
/// measured operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStatsSnapshot {
    /// Page requests served (hits + misses).
    pub logical_reads: u64,
    /// Page requests that had to go to the page store.
    pub physical_reads: u64,
    /// Pages written back to the page store.
    pub pages_written: u64,
    /// Read system calls actually issued to the OS. Always zero at
    /// buffer-pool level (the pool never talks to the OS itself); at page-
    /// store level it is one positioned read per page for the file store
    /// (previously two — seek then read — before the `read_at` switch, which
    /// this counter makes visible), one `mmap(2)` (re)establishment per
    /// mapping for the mmap store, and zero for the memory store.
    pub read_syscalls: u64,
    /// Page reads that had to be re-issued after a transient storage fault
    /// (see `RetryPolicy` on the buffer pool). Zero on a healthy device.
    pub read_retries: u64,
    /// Page writes re-issued after a transient storage fault.
    pub write_retries: u64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a logical page read (buffer hit or miss).
    #[inline]
    pub fn record_logical_read(&self) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a physical page read (buffer miss).
    #[inline]
    pub fn record_physical_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page write.
    #[inline]
    pub fn record_write(&self) {
        self.pages_written.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a read system call issued to the OS.
    #[inline]
    pub fn record_read_syscall(&self) {
        self.read_syscalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page read re-issued after a transient fault.
    #[inline]
    pub fn record_read_retry(&self) {
        self.read_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page write re-issued after a transient fault.
    #[inline]
    pub fn record_write_retry(&self) {
        self.write_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot of the current counter values.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            read_syscalls: self.read_syscalls.load(Ordering::Relaxed),
            read_retries: self.read_retries.load(Ordering::Relaxed),
            write_retries: self.write_retries.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.pages_written.store(0, Ordering::Relaxed);
        self.read_syscalls.store(0, Ordering::Relaxed);
        self.read_retries.store(0, Ordering::Relaxed);
        self.write_retries.store(0, Ordering::Relaxed);
    }
}

/// One shard padded out to its own cache line, so concurrent workers
/// recording into adjacent shards do not false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedIoStats(IoStats);

/// Per-worker I/O counters: one [`IoStats`] shard per worker slot.
///
/// Every record lands in exactly one shard (the calling thread's, see
/// [`thread_stats_shard`]), so the merge of the per-worker snapshots is
/// *lossless*: [`ShardedIoStats::snapshot`] — the counter-wise sum over all
/// shards — accounts for every recorded access. A worker that *owns* its
/// shard (at most [`IO_STATS_SHARDS`] concurrent pinned workers, no
/// colliding hash-derived shards from other threads on the same pool) can
/// additionally diff [`ShardedIoStats::thread_snapshot`] around a unit of
/// work to attribute I/O to itself without hot-path coordination; when
/// shards are shared, the per-worker attribution blurs but the totals stay
/// exact.
#[derive(Debug)]
pub struct ShardedIoStats {
    shards: Box<[PaddedIoStats]>,
}

impl Default for ShardedIoStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedIoStats {
    /// Creates zeroed counters with [`IO_STATS_SHARDS`] shards.
    pub fn new() -> Self {
        ShardedIoStats {
            shards: (0..IO_STATS_SHARDS)
                .map(|_| PaddedIoStats::default())
                .collect(),
        }
    }

    #[inline]
    fn shard(&self) -> &IoStats {
        &self.shards[thread_stats_shard() % self.shards.len()].0
    }

    /// Records a logical page read in the calling thread's shard.
    #[inline]
    pub fn record_logical_read(&self) {
        self.shard().record_logical_read();
    }

    /// Records a physical page read in the calling thread's shard.
    #[inline]
    pub fn record_physical_read(&self) {
        self.shard().record_physical_read();
    }

    /// Records a page write in the calling thread's shard.
    #[inline]
    pub fn record_write(&self) {
        self.shard().record_write();
    }

    /// Records a read system call in the calling thread's shard.
    #[inline]
    pub fn record_read_syscall(&self) {
        self.shard().record_read_syscall();
    }

    /// Records a retried page read in the calling thread's shard.
    #[inline]
    pub fn record_read_retry(&self) {
        self.shard().record_read_retry();
    }

    /// Records a retried page write in the calling thread's shard.
    #[inline]
    pub fn record_write_retry(&self) {
        self.shard().record_write_retry();
    }

    /// The merged snapshot: counter-wise sum over every shard.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        self.shards
            .iter()
            .fold(IoStatsSnapshot::default(), |acc, s| {
                acc.plus(&s.0.snapshot())
            })
    }

    /// Snapshot of the calling thread's own shard.
    pub fn thread_snapshot(&self) -> IoStatsSnapshot {
        self.shard().snapshot()
    }

    /// Per-shard snapshots (one per worker slot; unused slots are zero).
    pub fn worker_snapshots(&self) -> Vec<IoStatsSnapshot> {
        self.shards.iter().map(|s| s.0.snapshot()).collect()
    }

    /// Resets every shard to zero.
    pub fn reset(&self) {
        for shard in self.shards.iter() {
            shard.0.reset();
        }
    }
}

impl IoStatsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            logical_reads: self.logical_reads.saturating_sub(earlier.logical_reads),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            pages_written: self.pages_written.saturating_sub(earlier.pages_written),
            read_syscalls: self.read_syscalls.saturating_sub(earlier.read_syscalls),
            read_retries: self.read_retries.saturating_sub(earlier.read_retries),
            write_retries: self.write_retries.saturating_sub(earlier.write_retries),
        }
    }

    /// Counter-wise sum.
    pub fn plus(&self, other: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            logical_reads: self.logical_reads + other.logical_reads,
            physical_reads: self.physical_reads + other.physical_reads,
            pages_written: self.pages_written + other.pages_written,
            read_syscalls: self.read_syscalls + other.read_syscalls,
            read_retries: self.read_retries + other.read_retries,
            write_retries: self.write_retries + other.write_retries,
        }
    }
}

/// Configuration of the I/O latency model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IoConfig {
    /// Latency charged per *physical* page read.
    pub page_read_latency: Duration,
    /// Latency charged per page write.
    pub page_write_latency: Duration,
}

impl Default for IoConfig {
    fn default() -> Self {
        // ~5 ms per random page read approximates the magnetic disks of the
        // paper's 2012 testbed; writes only occur at index-build time and are
        // not part of any reported query metric.
        IoConfig {
            page_read_latency: Duration::from_micros(5_000),
            page_write_latency: Duration::from_micros(5_000),
        }
    }
}

impl IoConfig {
    /// An I/O model for a memory-resident deployment: zero latency, so the
    /// reported cost is CPU-only (the paper's Section 7.5, conclusion 4).
    pub fn memory_resident() -> Self {
        IoConfig {
            page_read_latency: Duration::ZERO,
            page_write_latency: Duration::ZERO,
        }
    }

    /// Simulated time to serve the physical I/O of a snapshot.
    pub fn simulated_io_time(&self, snap: &IoStatsSnapshot) -> Duration {
        self.page_read_latency * snap.physical_reads as u32
            + self.page_write_latency * snap.pages_written as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let stats = IoStats::new();
        stats.record_logical_read();
        stats.record_logical_read();
        stats.record_physical_read();
        stats.record_write();
        stats.record_read_syscall();
        stats.record_read_retry();
        stats.record_write_retry();
        let snap = stats.snapshot();
        assert_eq!(snap.logical_reads, 2);
        assert_eq!(snap.physical_reads, 1);
        assert_eq!(snap.pages_written, 1);
        assert_eq!(snap.read_syscalls, 1);
        assert_eq!(snap.read_retries, 1);
        assert_eq!(snap.write_retries, 1);
        stats.reset();
        assert_eq!(stats.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn snapshot_diff_and_sum() {
        let a = IoStatsSnapshot {
            logical_reads: 10,
            physical_reads: 4,
            pages_written: 1,
            read_syscalls: 4,
            read_retries: 1,
            write_retries: 0,
        };
        let b = IoStatsSnapshot {
            logical_reads: 25,
            physical_reads: 9,
            pages_written: 1,
            read_syscalls: 9,
            read_retries: 3,
            write_retries: 1,
        };
        let d = b.since(&a);
        assert_eq!(d.logical_reads, 15);
        assert_eq!(d.physical_reads, 5);
        assert_eq!(d.pages_written, 0);
        assert_eq!(d.read_syscalls, 5);
        assert_eq!(d.read_retries, 2);
        assert_eq!(d.write_retries, 1);
        let s = a.plus(&d);
        assert_eq!(s, b);
        // `since` saturates rather than underflowing.
        assert_eq!(a.since(&b).logical_reads, 0);
    }

    #[test]
    fn sharded_stats_merge_losslessly_across_threads() {
        let stats = std::sync::Arc::new(ShardedIoStats::new());
        let mut handles = Vec::new();
        for worker in 0..4usize {
            let stats = std::sync::Arc::clone(&stats);
            handles.push(std::thread::spawn(move || {
                super::set_thread_stats_shard(worker);
                let before = stats.thread_snapshot();
                for _ in 0..250 {
                    stats.record_logical_read();
                }
                stats.record_physical_read();
                stats.thread_snapshot().since(&before)
            }));
        }
        let mut merged = IoStatsSnapshot::default();
        for handle in handles {
            merged = merged.plus(&handle.join().unwrap());
        }
        // Every access a worker self-reported is in the global snapshot and
        // vice versa: the merge loses nothing.
        assert_eq!(merged, stats.snapshot());
        assert_eq!(merged.logical_reads, 4 * 250);
        assert_eq!(merged.physical_reads, 4);
        stats.reset();
        assert_eq!(stats.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn thread_shard_is_stable_and_respects_hints() {
        std::thread::spawn(|| {
            assert_eq!(super::thread_stats_shard(), super::thread_stats_shard());
            super::set_thread_stats_shard(7);
            assert_eq!(super::thread_stats_shard(), 7);
            super::set_thread_stats_shard(7 + IO_STATS_SHARDS);
            assert_eq!(super::thread_stats_shard(), 7, "hints wrap modulo shards");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn latency_model_scales_with_physical_reads() {
        let cfg = IoConfig::default();
        let snap = IoStatsSnapshot {
            logical_reads: 100,
            physical_reads: 10,
            pages_written: 0,
            read_syscalls: 10,
            read_retries: 0,
            write_retries: 0,
        };
        assert_eq!(cfg.simulated_io_time(&snap), Duration::from_millis(50));
        assert_eq!(
            IoConfig::memory_resident().simulated_io_time(&snap),
            Duration::ZERO
        );
    }
}
