//! LRU buffer pool with I/O accounting.
//!
//! Every page access performed by the inverted-list cursors and the tuple
//! store goes through a [`BufferPool`]. The pool keeps the most recently
//! used pages in memory (classic LRU) and counts logical reads (requests),
//! physical reads (misses that hit the page store) and writes. These counters
//! are the raw material for the I/O metrics of the experiment harness.

use crate::page::{PageBuf, PageId, PAGE_SIZE};
use crate::pagestore::PageStore;
use crate::stats::{IoStatsSnapshot, ShardedIoStats};
use ir_types::{IrError, IrResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Default number of pages the pool keeps cached (4 MiB with 4 KiB pages).
pub const DEFAULT_POOL_CAPACITY: usize = 1024;

struct Frame {
    data: Arc<PageBuf>,
    last_used: u64,
}

struct PoolInner {
    frames: HashMap<PageId, Frame>,
    tick: u64,
    capacity: usize,
}

/// An LRU page cache in front of a [`PageStore`].
pub struct BufferPool {
    store: Arc<dyn PageStore>,
    inner: Mutex<PoolInner>,
    /// Per-worker (sharded) counters: each thread records into its own
    /// shard, so parallel drivers can attribute I/O per worker (exact while
    /// each worker owns its shard; see `ShardedIoStats`) and the shard
    /// snapshots always merge losslessly into the pool total.
    stats: ShardedIoStats,
}

impl BufferPool {
    /// Creates a pool with the default capacity.
    pub fn new(store: Arc<dyn PageStore>) -> Self {
        Self::with_capacity(store, DEFAULT_POOL_CAPACITY)
    }

    /// Creates a pool that caches at most `capacity` pages (minimum 1).
    pub fn with_capacity(store: Arc<dyn PageStore>, capacity: usize) -> Self {
        BufferPool {
            store,
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                tick: 0,
                capacity: capacity.max(1),
            }),
            stats: ShardedIoStats::new(),
        }
    }

    /// The underlying page store.
    pub fn store(&self) -> &Arc<dyn PageStore> {
        &self.store
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Reads a page through the cache. Records one logical read, plus one
    /// physical read if the page was not cached.
    pub fn read(&self, page: PageId) -> IrResult<Arc<PageBuf>> {
        self.stats.record_logical_read();
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(frame) = inner.frames.get_mut(&page) {
                frame.last_used = tick;
                return Ok(Arc::clone(&frame.data));
            }
        }
        // Miss: fetch outside the lock, then insert.
        self.stats.record_physical_read();
        let data = Arc::new(self.store.read_page(page)?);
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.frames.len() >= inner.capacity {
            Self::evict_lru(&mut inner);
        }
        inner.frames.insert(
            page,
            Frame {
                data: Arc::clone(&data),
                last_used: tick,
            },
        );
        Ok(data)
    }

    /// Writes a page through the cache (write-through: the store is updated
    /// immediately and the cached copy, if any, is refreshed).
    pub fn write(&self, page: PageId, data: &[u8]) -> IrResult<()> {
        if data.len() != PAGE_SIZE {
            return Err(IrError::Storage(format!(
                "buffer pool write expects {PAGE_SIZE} bytes, got {}",
                data.len()
            )));
        }
        self.store.write_page(page, data)?;
        self.stats.record_write();
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(frame) = inner.frames.get_mut(&page) {
            frame.data = Arc::new(data.to_vec().into_boxed_slice());
            frame.last_used = tick;
        }
        Ok(())
    }

    /// Allocates fresh pages in the underlying store.
    pub fn allocate(&self, count: u32) -> IrResult<PageId> {
        self.store.allocate(count)
    }

    /// Drops every cached page (the counters are preserved).
    pub fn clear_cache(&self) {
        self.inner.lock().frames.clear();
    }

    /// Snapshot of the I/O counters (merged over every worker shard).
    pub fn io_snapshot(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// Snapshot of the calling thread's own I/O shard. Diffing this around
    /// a unit of work attributes its I/O to the current worker even while
    /// other workers hammer the same pool (see
    /// [`crate::stats::set_thread_stats_shard`]).
    pub fn thread_io_snapshot(&self) -> IoStatsSnapshot {
        self.stats.thread_snapshot()
    }

    /// Per-worker-shard snapshots; their counter-wise sum always equals
    /// [`BufferPool::io_snapshot`] (the merge is lossless).
    pub fn worker_io_snapshots(&self) -> Vec<IoStatsSnapshot> {
        self.stats.worker_snapshots()
    }

    /// Snapshot of the underlying page store's device-level counters
    /// (syscalls issued, page-fault-equivalent reads; see
    /// [`PageStore::io_snapshot`]). The store sees exactly this pool's miss
    /// sequence, so its `logical_reads` always equals the pool's
    /// `physical_reads` regardless of the backend.
    pub fn store_io_snapshot(&self) -> IoStatsSnapshot {
        self.store.io_snapshot()
    }

    /// Resets the I/O counters — the pool's and the underlying store's
    /// device-level ones (the cache content is preserved).
    pub fn reset_io_stats(&self) {
        self.stats.reset();
        self.store.reset_io_stats();
    }

    fn evict_lru(inner: &mut PoolInner) {
        if let Some((&victim, _)) = inner.frames.iter().min_by_key(|(_, frame)| frame.last_used) {
            inner.frames.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::MemPageStore;

    fn pool_with_pages(capacity: usize, pages: u32) -> BufferPool {
        let store = Arc::new(MemPageStore::new());
        store.allocate(pages).unwrap();
        BufferPool::with_capacity(store, capacity)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let pool = pool_with_pages(4, 2);
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(1)).unwrap();
        let snap = pool.io_snapshot();
        assert_eq!(snap.logical_reads, 3);
        assert_eq!(snap.physical_reads, 2, "second read of page 0 is a hit");
    }

    #[test]
    fn lru_eviction_prefers_least_recently_used() {
        let pool = pool_with_pages(2, 3);
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(1)).unwrap();
        // Touch page 0 so page 1 becomes the LRU victim.
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(2)).unwrap(); // evicts page 1
        assert_eq!(pool.cached_pages(), 2);
        let before = pool.io_snapshot().physical_reads;
        pool.read(PageId(0)).unwrap(); // still cached
        assert_eq!(pool.io_snapshot().physical_reads, before);
        pool.read(PageId(1)).unwrap(); // was evicted -> physical read
        assert_eq!(pool.io_snapshot().physical_reads, before + 1);
    }

    #[test]
    fn write_through_updates_cache_and_store() {
        let pool = pool_with_pages(2, 1);
        pool.read(PageId(0)).unwrap();
        let mut page = vec![0u8; PAGE_SIZE];
        page[5] = 77;
        pool.write(PageId(0), &page).unwrap();
        let cached = pool.read(PageId(0)).unwrap();
        assert_eq!(cached[5], 77);
        // Store sees it too.
        assert_eq!(pool.store().read_page(PageId(0)).unwrap()[5], 77);
        assert_eq!(pool.io_snapshot().pages_written, 1);
    }

    #[test]
    fn clear_cache_forces_physical_rereads() {
        let pool = pool_with_pages(4, 1);
        pool.read(PageId(0)).unwrap();
        pool.clear_cache();
        pool.read(PageId(0)).unwrap();
        assert_eq!(pool.io_snapshot().physical_reads, 2);
    }

    #[test]
    fn store_counters_mirror_pool_misses_and_reset_together() {
        let pool = pool_with_pages(2, 3);
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(0)).unwrap(); // hit: never reaches the store
        pool.read(PageId(1)).unwrap();
        assert_eq!(
            pool.store_io_snapshot().logical_reads,
            pool.io_snapshot().physical_reads,
            "the store sees exactly the pool's misses"
        );
        pool.reset_io_stats();
        assert_eq!(pool.store_io_snapshot(), IoStatsSnapshot::default());
        assert_eq!(pool.io_snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn invalid_write_size_is_rejected() {
        let pool = pool_with_pages(1, 1);
        assert!(pool.write(PageId(0), &[0u8; 10]).is_err());
    }

    #[test]
    fn out_of_bounds_read_propagates_error() {
        let pool = pool_with_pages(1, 1);
        assert!(pool.read(PageId(99)).is_err());
    }
}
