//! LRU buffer pool with I/O accounting and transient-fault retries.
//!
//! Every page access performed by the inverted-list cursors and the tuple
//! store goes through a [`BufferPool`]. The pool keeps the most recently
//! used pages in memory (classic LRU) and counts logical reads (requests),
//! physical reads (misses that hit the page store) and writes. These counters
//! are the raw material for the I/O metrics of the experiment harness.
//!
//! The pool is also the retry boundary of the stack: a [`RetryPolicy`]
//! re-issues store reads and writes that fail with a *transient* error
//! ([`IrError::is_transient`] — interrupted syscalls, timeouts), with a
//! bounded attempt count and a deterministic exponential backoff. A fault
//! that heals within the budget is invisible to every layer above except
//! the `read_retries`/`write_retries` counters; one that persists surfaces
//! as a typed [`IrError::RetryExhausted`]. Non-transient errors (corruption,
//! out-of-bounds, permanent device failure) are never retried.

use crate::page::{PageBuf, PageId, PAGE_SIZE};
use crate::pagestore::PageStore;
use crate::stats::{IoStatsSnapshot, ShardedIoStats};
use ir_types::{IrError, IrResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Default number of pages the pool keeps cached (4 MiB with 4 KiB pages).
pub const DEFAULT_POOL_CAPACITY: usize = 1024;

/// Bounded-retry policy for transient storage faults.
///
/// Attempt `i` (zero-based, after the first failure) sleeps
/// `backoff_base * 2^i` before re-issuing the operation, so the schedule is
/// deterministic: with the defaults (3 attempts, 100 µs base) a page read
/// is tried at t=0, t=100 µs and t=300 µs, then gives up with
/// [`IrError::RetryExhausted`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first re-attempt; doubles on each further one.
    pub backoff_base: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_micros(100),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every transient fault surfaces
    /// immediately (as itself, not as `RetryExhausted`).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: Duration::ZERO,
        }
    }

    /// Backoff before re-attempt number `retry` (zero-based).
    fn backoff(&self, retry: u32) -> Duration {
        self.backoff_base * 2u32.saturating_pow(retry).min(1 << 16)
    }
}

struct Frame {
    data: Arc<PageBuf>,
    last_used: u64,
}

struct PoolInner {
    frames: HashMap<PageId, Frame>,
    tick: u64,
    capacity: usize,
}

/// An LRU page cache in front of a [`PageStore`].
pub struct BufferPool {
    store: Arc<dyn PageStore>,
    inner: Mutex<PoolInner>,
    /// Per-worker (sharded) counters: each thread records into its own
    /// shard, so parallel drivers can attribute I/O per worker (exact while
    /// each worker owns its shard; see `ShardedIoStats`) and the shard
    /// snapshots always merge losslessly into the pool total.
    stats: ShardedIoStats,
    retry: RetryPolicy,
}

impl BufferPool {
    /// Creates a pool with the default capacity.
    pub fn new(store: Arc<dyn PageStore>) -> Self {
        Self::with_capacity(store, DEFAULT_POOL_CAPACITY)
    }

    /// Creates a pool that caches at most `capacity` pages (minimum 1),
    /// with the default [`RetryPolicy`].
    pub fn with_capacity(store: Arc<dyn PageStore>, capacity: usize) -> Self {
        Self::with_capacity_and_policy(store, capacity, RetryPolicy::default())
    }

    /// Creates a pool with an explicit transient-fault [`RetryPolicy`].
    pub fn with_capacity_and_policy(
        store: Arc<dyn PageStore>,
        capacity: usize,
        retry: RetryPolicy,
    ) -> Self {
        BufferPool {
            store,
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                tick: 0,
                capacity: capacity.max(1),
            }),
            stats: ShardedIoStats::new(),
            retry,
        }
    }

    /// The underlying page store.
    pub fn store(&self) -> &Arc<dyn PageStore> {
        &self.store
    }

    /// The pool's transient-fault retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Runs `op` under the retry policy: transient failures are re-issued
    /// (recording one retry counter tick via `on_retry` per re-attempt)
    /// until they heal or the attempt budget is spent.
    fn with_retries<T>(
        &self,
        op: impl Fn() -> IrResult<T>,
        on_retry: impl Fn(&ShardedIoStats),
    ) -> IrResult<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(err) if err.is_transient() => {
                    attempt += 1;
                    if attempt >= self.retry.max_attempts.max(1) {
                        return if self.retry.max_attempts <= 1 {
                            // A no-retry policy surfaces the fault as-is.
                            Err(err)
                        } else {
                            Err(IrError::RetryExhausted {
                                attempts: attempt,
                                source: Box::new(err),
                            })
                        };
                    }
                    let backoff = self.retry.backoff(attempt - 1);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    on_retry(&self.stats);
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Reads a page through the cache. Records one logical read, plus one
    /// physical read if the page was not cached.
    pub fn read(&self, page: PageId) -> IrResult<Arc<PageBuf>> {
        self.stats.record_logical_read();
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(frame) = inner.frames.get_mut(&page) {
                frame.last_used = tick;
                return Ok(Arc::clone(&frame.data));
            }
        }
        // Miss: fetch outside the lock (retrying transient faults), then
        // insert.
        self.stats.record_physical_read();
        let data = Arc::new(self.with_retries(
            || self.store.read_page(page),
            |stats| stats.record_read_retry(),
        )?);
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.frames.len() >= inner.capacity {
            Self::evict_lru(&mut inner);
        }
        inner.frames.insert(
            page,
            Frame {
                data: Arc::clone(&data),
                last_used: tick,
            },
        );
        Ok(data)
    }

    /// Writes a page through the cache (write-through: the store is updated
    /// immediately and the cached copy, if any, is refreshed).
    pub fn write(&self, page: PageId, data: &[u8]) -> IrResult<()> {
        if data.len() != PAGE_SIZE {
            return Err(IrError::Storage(format!(
                "buffer pool write expects {PAGE_SIZE} bytes, got {}",
                data.len()
            )));
        }
        self.with_retries(
            || self.store.write_page(page, data),
            |stats| stats.record_write_retry(),
        )?;
        self.stats.record_write();
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(frame) = inner.frames.get_mut(&page) {
            frame.data = Arc::new(data.to_vec().into_boxed_slice());
            frame.last_used = tick;
        }
        Ok(())
    }

    /// Allocates fresh pages in the underlying store.
    pub fn allocate(&self, count: u32) -> IrResult<PageId> {
        self.store.allocate(count)
    }

    /// Drops every cached page (the counters are preserved).
    pub fn clear_cache(&self) {
        self.inner.lock().frames.clear();
    }

    /// Snapshot of the I/O counters (merged over every worker shard).
    pub fn io_snapshot(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// Snapshot of the calling thread's own I/O shard. Diffing this around
    /// a unit of work attributes its I/O to the current worker even while
    /// other workers hammer the same pool (see
    /// [`crate::stats::set_thread_stats_shard`]).
    pub fn thread_io_snapshot(&self) -> IoStatsSnapshot {
        self.stats.thread_snapshot()
    }

    /// Per-worker-shard snapshots; their counter-wise sum always equals
    /// [`BufferPool::io_snapshot`] (the merge is lossless).
    pub fn worker_io_snapshots(&self) -> Vec<IoStatsSnapshot> {
        self.stats.worker_snapshots()
    }

    /// Snapshot of the underlying page store's device-level counters
    /// (syscalls issued, page-fault-equivalent reads; see
    /// [`PageStore::io_snapshot`]). The store sees exactly this pool's miss
    /// sequence, so its `logical_reads` always equals the pool's
    /// `physical_reads` regardless of the backend.
    pub fn store_io_snapshot(&self) -> IoStatsSnapshot {
        self.store.io_snapshot()
    }

    /// Resets the I/O counters — the pool's and the underlying store's
    /// device-level ones (the cache content is preserved).
    pub fn reset_io_stats(&self) {
        self.stats.reset();
        self.store.reset_io_stats();
    }

    fn evict_lru(inner: &mut PoolInner) {
        if let Some((&victim, _)) = inner.frames.iter().min_by_key(|(_, frame)| frame.last_used) {
            inner.frames.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultInjectingPageStore, FaultPlan};
    use crate::pagestore::MemPageStore;

    fn pool_with_pages(capacity: usize, pages: u32) -> BufferPool {
        let store = Arc::new(MemPageStore::new());
        store.allocate(pages).unwrap();
        BufferPool::with_capacity(store, capacity)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let pool = pool_with_pages(4, 2);
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(1)).unwrap();
        let snap = pool.io_snapshot();
        assert_eq!(snap.logical_reads, 3);
        assert_eq!(snap.physical_reads, 2, "second read of page 0 is a hit");
    }

    #[test]
    fn lru_eviction_prefers_least_recently_used() {
        let pool = pool_with_pages(2, 3);
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(1)).unwrap();
        // Touch page 0 so page 1 becomes the LRU victim.
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(2)).unwrap(); // evicts page 1
        assert_eq!(pool.cached_pages(), 2);
        let before = pool.io_snapshot().physical_reads;
        pool.read(PageId(0)).unwrap(); // still cached
        assert_eq!(pool.io_snapshot().physical_reads, before);
        pool.read(PageId(1)).unwrap(); // was evicted -> physical read
        assert_eq!(pool.io_snapshot().physical_reads, before + 1);
    }

    #[test]
    fn write_through_updates_cache_and_store() {
        let pool = pool_with_pages(2, 1);
        pool.read(PageId(0)).unwrap();
        let mut page = vec![0u8; PAGE_SIZE];
        page[5] = 77;
        pool.write(PageId(0), &page).unwrap();
        let cached = pool.read(PageId(0)).unwrap();
        assert_eq!(cached[5], 77);
        // Store sees it too.
        assert_eq!(pool.store().read_page(PageId(0)).unwrap()[5], 77);
        assert_eq!(pool.io_snapshot().pages_written, 1);
    }

    #[test]
    fn clear_cache_forces_physical_rereads() {
        let pool = pool_with_pages(4, 1);
        pool.read(PageId(0)).unwrap();
        pool.clear_cache();
        pool.read(PageId(0)).unwrap();
        assert_eq!(pool.io_snapshot().physical_reads, 2);
    }

    #[test]
    fn store_counters_mirror_pool_misses_and_reset_together() {
        let pool = pool_with_pages(2, 3);
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(0)).unwrap(); // hit: never reaches the store
        pool.read(PageId(1)).unwrap();
        assert_eq!(
            pool.store_io_snapshot().logical_reads,
            pool.io_snapshot().physical_reads,
            "the store sees exactly the pool's misses"
        );
        pool.reset_io_stats();
        assert_eq!(pool.store_io_snapshot(), IoStatsSnapshot::default());
        assert_eq!(pool.io_snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn invalid_write_size_is_rejected() {
        let pool = pool_with_pages(1, 1);
        assert!(pool.write(PageId(0), &[0u8; 10]).is_err());
    }

    #[test]
    fn out_of_bounds_read_propagates_error() {
        let pool = pool_with_pages(1, 1);
        assert!(pool.read(PageId(99)).is_err());
    }

    fn faulty_pool(
        plan: FaultPlan,
        retry: RetryPolicy,
    ) -> (BufferPool, Arc<FaultInjectingPageStore>) {
        let inner = Arc::new(MemPageStore::new());
        inner.allocate(4).unwrap();
        let faulty = FaultInjectingPageStore::new(inner, plan);
        faulty.arm();
        let pool = BufferPool::with_capacity_and_policy(Arc::clone(&faulty) as _, 2, retry);
        (pool, faulty)
    }

    #[test]
    fn transient_read_faults_heal_invisibly() {
        let plan = FaultPlan {
            transient_read_ops: vec![0, 2],
            ..FaultPlan::default()
        };
        let (pool, faulty) = faulty_pool(
            plan,
            RetryPolicy {
                max_attempts: 3,
                backoff_base: Duration::ZERO,
            },
        );
        // Op 0 fails once, op 1 (the retry) succeeds.
        pool.read(PageId(0)).unwrap();
        // Op 2 fails once, op 3 succeeds.
        pool.read(PageId(1)).unwrap();
        let snap = pool.io_snapshot();
        assert_eq!(snap.physical_reads, 2, "retries are not extra misses");
        assert_eq!(snap.read_retries, 2, "each healed fault counted once");
        assert_eq!(faulty.injected_faults().0, 2);
    }

    #[test]
    fn transient_write_faults_heal_invisibly() {
        let plan = FaultPlan {
            transient_write_ops: vec![0],
            ..FaultPlan::default()
        };
        let (pool, _) = faulty_pool(
            plan,
            RetryPolicy {
                max_attempts: 2,
                backoff_base: Duration::ZERO,
            },
        );
        pool.write(PageId(0), &vec![7u8; PAGE_SIZE]).unwrap();
        let snap = pool.io_snapshot();
        assert_eq!(snap.pages_written, 1);
        assert_eq!(snap.write_retries, 1);
        assert_eq!(pool.store().read_page(PageId(0)).unwrap()[0], 7);
    }

    #[test]
    fn consecutive_transient_faults_exhaust_the_budget() {
        // Ops 0, 1 and 2 all fail: a 3-attempt policy sees transient errors
        // on every attempt and gives up with a typed RetryExhausted.
        let plan = FaultPlan {
            transient_read_ops: vec![0, 1, 2],
            ..FaultPlan::default()
        };
        let (pool, _) = faulty_pool(
            plan,
            RetryPolicy {
                max_attempts: 3,
                backoff_base: Duration::ZERO,
            },
        );
        let err = pool.read(PageId(0)).unwrap_err();
        match err {
            IrError::RetryExhausted { attempts, source } => {
                assert_eq!(attempts, 3);
                assert!(source.is_transient());
            }
            other => panic!("expected RetryExhausted, got: {other}"),
        }
        assert_eq!(pool.io_snapshot().read_retries, 2, "two re-attempts made");
        // The fault window has passed: the pool serves the next read fine.
        pool.read(PageId(0)).unwrap();
    }

    #[test]
    fn permanent_faults_are_not_retried() {
        let (pool, faulty) =
            faulty_pool(FaultPlan::device_outage(0, Some(1)), RetryPolicy::default());
        let err = pool.read(PageId(0)).unwrap_err();
        assert!(
            matches!(err, IrError::Storage(_)),
            "permanent fault must surface as-is, got: {err}"
        );
        assert_eq!(pool.io_snapshot().read_retries, 0);
        assert_eq!(faulty.injected_faults().0, 1, "exactly one op was issued");
    }

    #[test]
    fn no_retry_policy_surfaces_transient_faults_directly() {
        let plan = FaultPlan {
            transient_read_ops: vec![0],
            ..FaultPlan::default()
        };
        let (pool, _) = faulty_pool(plan, RetryPolicy::none());
        let err = pool.read(PageId(0)).unwrap_err();
        assert!(err.is_transient(), "no wrapping under RetryPolicy::none()");
        assert_eq!(pool.io_snapshot().read_retries, 0);
    }

    #[test]
    fn default_policy_has_bounded_deterministic_backoff() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.max_attempts, 3);
        assert_eq!(policy.backoff(0), Duration::from_micros(100));
        assert_eq!(policy.backoff(1), Duration::from_micros(200));
        assert_eq!(policy.backoff(2), Duration::from_micros(400));
    }
}
