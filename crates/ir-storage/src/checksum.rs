//! Shared checksum helper for every on-disk artifact of the crate.
//!
//! Both the per-page frame trailer ([`crate::page::frame`]) and the index
//! snapshot superheader ([`crate::snapshot`]) seal their bytes with the same
//! FNV-1a-64 hash, so the single implementation lives here.

/// FNV-1a 64-bit hash — the checksum of every on-disk format in this crate
/// (page-frame trailers and the snapshot superheader).
///
/// Hand-rolled (no external crate is vendored): a simple, fast,
/// well-distributed non-cryptographic hash. It is not meant to resist an
/// adversary, only to catch bit rot, torn writes and driver bugs.
pub fn fnv1a64(data: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &byte in data {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
