//! Inverted lists: the per-dimension sorted lists `L_j`.
//!
//! `L_j` contains one `(tuple id, coordinate)` entry for every tuple with a
//! non-zero coordinate in dimension `j`, sorted by decreasing coordinate
//! (ties broken by increasing tuple id so the order is total and identical
//! across runs). Entries are packed into pages; a sequential
//! [`InvertedListCursor`] provides TA's *sorted access*, fetching pages
//! through the buffer pool so every access is accounted for.

use crate::buffer::BufferPool;
use crate::page::{codec, zeroed_page, PageId, PAGE_SIZE};
use ir_types::{DimId, IrError, IrResult, TupleId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Size in bytes of one serialized list entry (`u32` tuple id + `f64` value).
pub const ENTRY_BYTES: usize = 12;

/// Number of entries that fit in one page.
pub const ENTRIES_PER_PAGE: usize = PAGE_SIZE / ENTRY_BYTES;

/// Directory record describing where a dimension's inverted list lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListDirectoryEntry {
    /// The dimension this list indexes.
    pub dim: DimId,
    /// First page of the list (lists are page-aligned).
    pub first_page: PageId,
    /// Number of entries in the list.
    pub num_entries: u32,
}

impl ListDirectoryEntry {
    /// Number of pages the list occupies.
    pub fn num_pages(&self) -> u32 {
        (self.num_entries as usize).div_ceil(ENTRIES_PER_PAGE) as u32
    }
}

/// Writes an inverted list (already sorted by decreasing value) into freshly
/// allocated pages of the pool. Returns its directory entry.
pub fn write_list(
    pool: &BufferPool,
    dim: DimId,
    entries: &[(TupleId, f64)],
) -> IrResult<ListDirectoryEntry> {
    let num_pages = entries.len().div_ceil(ENTRIES_PER_PAGE).max(1) as u32;
    let first_page = pool.allocate(num_pages)?;
    write_list_at(pool, dim, entries, first_page)
}

/// Writes an inverted list (already sorted by decreasing value) into an
/// existing page run starting at `first_page` — the in-place maintenance
/// twin of [`write_list`], used when a list is rewritten into its own (or a
/// recycled) run instead of freshly allocated pages. The caller guarantees
/// the run is long enough ([`ListDirectoryEntry::num_pages`] of the result).
pub fn write_list_at(
    pool: &BufferPool,
    dim: DimId,
    entries: &[(TupleId, f64)],
    first_page: PageId,
) -> IrResult<ListDirectoryEntry> {
    debug_assert!(
        entries
            .windows(2)
            .all(|w| w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)),
        "inverted list entries must be sorted by decreasing value"
    );
    for (page_idx, chunk) in entries.chunks(ENTRIES_PER_PAGE).enumerate() {
        let mut page = zeroed_page();
        for (slot, (tuple, value)) in chunk.iter().enumerate() {
            let off = slot * ENTRY_BYTES;
            codec::put_u32(&mut page, off, tuple.0);
            codec::put_f64(&mut page, off + 4, *value);
        }
        pool.write(PageId(first_page.0 + page_idx as u32), &page)?;
    }
    Ok(ListDirectoryEntry {
        dim,
        first_page,
        num_entries: entries.len() as u32,
    })
}

/// Reads a whole inverted list back into memory, in stored order — the
/// read-modify step of a maintenance rewrite. Touches each list page once
/// through the pool, so the read is accounted like any other access.
pub fn read_list(
    pool: &BufferPool,
    directory: &ListDirectoryEntry,
) -> IrResult<Vec<(TupleId, f64)>> {
    let mut entries = Vec::with_capacity(directory.num_entries as usize);
    for page_idx in 0..directory.num_pages() {
        let page = pool.read(PageId(directory.first_page.0 + page_idx))?;
        let start = page_idx as usize * ENTRIES_PER_PAGE;
        let in_page = (directory.num_entries as usize - start).min(ENTRIES_PER_PAGE);
        for slot in 0..in_page {
            let off = slot * ENTRY_BYTES;
            entries.push((
                TupleId(codec::get_u32(&page, off)),
                codec::get_f64(&page, off + 4),
            ));
        }
    }
    Ok(entries)
}

/// A resumable sequential cursor over one inverted list.
///
/// The cursor is the physical realisation of TA's sorted access: `peek`
/// exposes the sorting key `t_j` of the next entry (used in the threshold)
/// and `next` consumes it. Reading an entry touches exactly one page via the
/// buffer pool. Cursors are cheap to clone-position: `position`/`seek` allow
/// the resumable TA of Phase 3 to continue exactly where the top-k
/// computation stopped. Cursors are `Clone`: a clone shares the buffer pool
/// but scans independently from the cloned position, which is what lets a
/// resumable TA state be snapshotted per worker thread.
#[derive(Clone)]
pub struct InvertedListCursor {
    pool: Arc<BufferPool>,
    directory: ListDirectoryEntry,
    position: u32,
}

impl InvertedListCursor {
    /// Creates a cursor at the head of the list.
    pub fn new(pool: Arc<BufferPool>, directory: ListDirectoryEntry) -> Self {
        InvertedListCursor {
            pool,
            directory,
            position: 0,
        }
    }

    /// The dimension this cursor iterates.
    pub fn dim(&self) -> DimId {
        self.directory.dim
    }

    /// Total number of entries in the list.
    pub fn len(&self) -> usize {
        self.directory.num_entries as usize
    }

    /// True if the list has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.directory.num_entries == 0
    }

    /// Number of entries already consumed.
    pub fn position(&self) -> u32 {
        self.position
    }

    /// Number of entries still to be consumed.
    pub fn remaining(&self) -> u32 {
        self.directory.num_entries - self.position
    }

    /// True when every entry has been consumed.
    pub fn exhausted(&self) -> bool {
        self.position >= self.directory.num_entries
    }

    /// Moves the cursor to an absolute position (clamped to the list length).
    pub fn seek(&mut self, position: u32) {
        self.position = position.min(self.directory.num_entries);
    }

    fn read_at(&self, index: u32) -> IrResult<(TupleId, f64)> {
        if index >= self.directory.num_entries {
            return Err(IrError::Storage(format!(
                "inverted list read past the end: {} >= {}",
                index, self.directory.num_entries
            )));
        }
        let page_idx = index as usize / ENTRIES_PER_PAGE;
        let slot = index as usize % ENTRIES_PER_PAGE;
        let page = self
            .pool
            .read(PageId(self.directory.first_page.0 + page_idx as u32))?;
        let off = slot * ENTRY_BYTES;
        Ok((
            TupleId(codec::get_u32(&page, off)),
            codec::get_f64(&page, off + 4),
        ))
    }

    /// Returns the next entry without consuming it.
    pub fn peek(&self) -> IrResult<Option<(TupleId, f64)>> {
        if self.exhausted() {
            return Ok(None);
        }
        self.read_at(self.position).map(Some)
    }

    /// The sorting key `t_j` of the next entry; zero once the list is
    /// exhausted (all coordinates are non-negative, so zero is the correct
    /// lower bound for unseen values).
    pub fn threshold_value(&self) -> IrResult<f64> {
        Ok(self.peek()?.map_or(0.0, |(_, v)| v))
    }

    /// Consumes and returns the next entry.
    pub fn next_entry(&mut self) -> IrResult<Option<(TupleId, f64)>> {
        if self.exhausted() {
            return Ok(None);
        }
        let entry = self.read_at(self.position)?;
        self.position += 1;
        Ok(Some(entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::MemPageStore;

    fn make_pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemPageStore::new())))
    }

    fn descending_entries(n: usize) -> Vec<(TupleId, f64)> {
        (0..n)
            .map(|i| (TupleId(i as u32), 1.0 - i as f64 / (n as f64 + 1.0)))
            .collect()
    }

    #[test]
    fn write_then_scan_roundtrips_small_list() {
        let pool = make_pool();
        let entries = vec![
            (TupleId(0), 0.8),
            (TupleId(1), 0.7),
            (TupleId(2), 0.1),
            (TupleId(3), 0.1),
        ];
        let dir = write_list(&pool, DimId(0), &entries).unwrap();
        assert_eq!(dir.num_entries, 4);
        assert_eq!(dir.num_pages(), 1);

        let mut cursor = InvertedListCursor::new(Arc::clone(&pool), dir);
        assert_eq!(cursor.len(), 4);
        let mut seen = Vec::new();
        while let Some(entry) = cursor.next_entry().unwrap() {
            seen.push(entry);
        }
        assert_eq!(seen, entries);
        assert!(cursor.exhausted());
        assert_eq!(cursor.threshold_value().unwrap(), 0.0);
    }

    #[test]
    fn multi_page_list_spans_pages_correctly() {
        let pool = make_pool();
        let entries = descending_entries(ENTRIES_PER_PAGE * 2 + 5);
        let dir = write_list(&pool, DimId(3), &entries).unwrap();
        assert_eq!(dir.num_pages(), 3);
        let mut cursor = InvertedListCursor::new(Arc::clone(&pool), dir);
        let mut count = 0usize;
        let mut last = f64::INFINITY;
        while let Some((_, v)) = cursor.next_entry().unwrap() {
            assert!(v <= last);
            last = v;
            count += 1;
        }
        assert_eq!(count, entries.len());
    }

    #[test]
    fn peek_does_not_consume_and_reports_threshold() {
        let pool = make_pool();
        let entries = vec![(TupleId(5), 0.9), (TupleId(7), 0.4)];
        let dir = write_list(&pool, DimId(1), &entries).unwrap();
        let mut cursor = InvertedListCursor::new(pool, dir);
        assert_eq!(cursor.peek().unwrap(), Some((TupleId(5), 0.9)));
        assert_eq!(cursor.threshold_value().unwrap(), 0.9);
        assert_eq!(cursor.position(), 0);
        cursor.next_entry().unwrap();
        assert_eq!(cursor.threshold_value().unwrap(), 0.4);
        assert_eq!(cursor.remaining(), 1);
    }

    #[test]
    fn seek_supports_resumption() {
        let pool = make_pool();
        let entries = descending_entries(10);
        let dir = write_list(&pool, DimId(2), &entries).unwrap();
        let mut cursor = InvertedListCursor::new(pool, dir);
        cursor.seek(7);
        assert_eq!(cursor.position(), 7);
        assert_eq!(cursor.next_entry().unwrap(), Some(entries[7]));
        cursor.seek(999);
        assert!(cursor.exhausted());
        assert_eq!(cursor.next_entry().unwrap(), None);
    }

    #[test]
    fn empty_list_is_allowed() {
        let pool = make_pool();
        let dir = write_list(&pool, DimId(9), &[]).unwrap();
        assert_eq!(dir.num_entries, 0);
        let mut cursor = InvertedListCursor::new(pool, dir);
        assert!(cursor.is_empty());
        assert_eq!(cursor.next_entry().unwrap(), None);
        assert_eq!(cursor.threshold_value().unwrap(), 0.0);
    }

    #[test]
    fn sequential_scan_costs_one_physical_read_per_page() {
        let pool = make_pool();
        let entries = descending_entries(ENTRIES_PER_PAGE * 3);
        let dir = write_list(&pool, DimId(0), &entries).unwrap();
        pool.clear_cache();
        pool.reset_io_stats();
        let mut cursor = InvertedListCursor::new(Arc::clone(&pool), dir);
        while cursor.next_entry().unwrap().is_some() {}
        let snap = pool.io_snapshot();
        assert_eq!(snap.physical_reads, 3);
        assert_eq!(snap.logical_reads, entries.len() as u64);
    }
}
