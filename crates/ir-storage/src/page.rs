//! Fixed-size pages and page identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of every page in bytes.
///
/// 4 KiB matches the disk/OS page granularity the paper's testbed would have
/// used; inverted-list entries are 12 bytes so roughly 340 entries fit in a
/// page.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page inside a [`crate::pagestore::PageStore`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u32);

impl PageId {
    /// Page id as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The page that follows this one.
    #[inline]
    pub fn next(self) -> PageId {
        PageId(self.0 + 1)
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageId({})", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An owned page buffer.
pub type PageBuf = Box<[u8]>;

/// Allocates a zeroed page buffer.
pub fn zeroed_page() -> PageBuf {
    vec![0u8; PAGE_SIZE].into_boxed_slice()
}

/// Little helpers to read/write fixed-width integers and floats at byte
/// offsets inside a page. All encodings are little-endian.
pub mod codec {
    /// Writes a `u32` at `offset`.
    #[inline]
    pub fn put_u32(buf: &mut [u8], offset: usize, value: u32) {
        buf[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a `u32` at `offset`.
    #[inline]
    pub fn get_u32(buf: &[u8], offset: usize) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&buf[offset..offset + 4]);
        u32::from_le_bytes(b)
    }

    /// Writes an `f64` at `offset`.
    #[inline]
    pub fn put_f64(buf: &mut [u8], offset: usize, value: f64) {
        buf[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads an `f64` at `offset`.
    #[inline]
    pub fn get_f64(buf: &[u8], offset: usize) -> f64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[offset..offset + 8]);
        f64::from_le_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_next_increments() {
        assert_eq!(PageId(3).next(), PageId(4));
        assert_eq!(PageId(0).index(), 0);
        assert_eq!(PageId(7).to_string(), "p7");
    }

    #[test]
    fn zeroed_page_has_page_size() {
        let p = zeroed_page();
        assert_eq!(p.len(), PAGE_SIZE);
        assert!(p.iter().all(|&b| b == 0));
    }

    #[test]
    fn codec_roundtrips_values() {
        let mut buf = zeroed_page();
        codec::put_u32(&mut buf, 10, 0xDEAD_BEEF);
        codec::put_f64(&mut buf, 100, -0.125);
        assert_eq!(codec::get_u32(&buf, 10), 0xDEAD_BEEF);
        assert_eq!(codec::get_f64(&buf, 100), -0.125);
    }

    #[test]
    fn codec_is_little_endian() {
        let mut buf = vec![0u8; 8];
        codec::put_u32(&mut buf, 0, 1);
        assert_eq!(buf[0], 1);
        assert_eq!(buf[1], 0);
    }
}
