//! Fixed-size pages, page identifiers, and the self-validating on-disk
//! frame format shared by the file and mmap stores.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of every page in bytes.
///
/// 4 KiB matches the disk/OS page granularity the paper's testbed would have
/// used; inverted-list entries are 12 bytes so roughly 340 entries fit in a
/// page.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page inside a [`crate::pagestore::PageStore`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u32);

impl PageId {
    /// Page id as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The page that follows this one.
    #[inline]
    pub fn next(self) -> PageId {
        PageId(self.0 + 1)
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageId({})", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An owned page buffer.
pub type PageBuf = Box<[u8]>;

/// Allocates a zeroed page buffer.
pub fn zeroed_page() -> PageBuf {
    vec![0u8; PAGE_SIZE].into_boxed_slice()
}

// Re-exported here because the hash started life as the per-page frame
// checksum; it now lives in the shared [`crate::checksum`] module so the
// snapshot superheader can seal with the same function.
pub use crate::checksum::fnv1a64;

/// The self-validating on-disk layout of the file-backed page stores.
///
/// A page file starts with a fixed-length versioned header, followed by one
/// *frame* per page: the 4 KiB payload plus an 8-byte little-endian
/// [`fnv1a64`] checksum trailer computed over the payload. Both
/// `FilePageStore` and `MmapPageStore` read and write this exact layout, so
/// the two stay byte-interchangeable. Every field is explicitly
/// little-endian; the format is independent of host endianness.
pub mod frame {
    use super::{fnv1a64, PageId, PAGE_SIZE};
    use ir_types::{IrError, IrResult};

    /// Length of the per-frame checksum trailer in bytes.
    pub const CHECKSUM_LEN: usize = 8;

    /// Length of one on-disk frame: payload plus checksum trailer.
    pub const FRAME_LEN: usize = PAGE_SIZE + CHECKSUM_LEN;

    /// Magic bytes opening every page file.
    pub const MAGIC: [u8; 8] = *b"IRPAGES\0";

    /// Version of the frame format (bumped on any layout change).
    pub const FORMAT_VERSION: u32 = 1;

    /// Length of the file header. Fixed so the frame offsets never move;
    /// the bytes past the three fields are zeroed and reserved.
    pub const HEADER_LEN: usize = 64;

    /// The byte offset of a page's frame inside the file.
    #[inline]
    pub fn offset(page: PageId) -> u64 {
        HEADER_LEN as u64 + page.0 as u64 * FRAME_LEN as u64
    }

    /// Encodes the versioned file header: magic, format version (LE),
    /// page size (LE), zero padding.
    pub fn encode_header() -> [u8; HEADER_LEN] {
        let mut header = [0u8; HEADER_LEN];
        header[..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        header
    }

    /// Validates a header read back from disk, returning a typed
    /// [`IrError::Corruption`] naming exactly what failed.
    pub fn validate_header(header: &[u8; HEADER_LEN]) -> IrResult<()> {
        if header[..8] != MAGIC {
            return Err(IrError::Corruption {
                page: None,
                detail: format!(
                    "bad magic {:02x?} (expected {:02x?}); not a page file",
                    &header[..8],
                    MAGIC
                ),
            });
        }
        let version = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if version != FORMAT_VERSION {
            return Err(IrError::Corruption {
                page: None,
                detail: format!("unsupported format version {version} (expected {FORMAT_VERSION})"),
            });
        }
        let page_size = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
        if page_size as usize != PAGE_SIZE {
            return Err(IrError::Corruption {
                page: None,
                detail: format!("page size {page_size} does not match the compiled {PAGE_SIZE}"),
            });
        }
        Ok(())
    }

    /// Validates that the bytes after the header hold a whole number of
    /// frames, returning the page count.
    pub fn page_count(file_len: u64) -> IrResult<u32> {
        let body = file_len
            .checked_sub(HEADER_LEN as u64)
            .ok_or_else(|| IrError::Corruption {
                page: None,
                detail: format!(
                    "file has {file_len} bytes, shorter than the {HEADER_LEN}-byte header"
                ),
            })?;
        if body % FRAME_LEN as u64 != 0 {
            return Err(IrError::Corruption {
                page: None,
                detail: format!(
                    "page area has {body} bytes, not a whole number of {FRAME_LEN}-byte frames \
                     (torn trailing write?)"
                ),
            });
        }
        Ok((body / FRAME_LEN as u64) as u32)
    }

    /// The checksum trailer for a payload, as stored on disk (LE).
    #[inline]
    pub fn seal(payload: &[u8]) -> [u8; CHECKSUM_LEN] {
        fnv1a64(payload).to_le_bytes()
    }

    /// Verifies a frame read back from disk: the trailer must equal the
    /// payload's checksum.
    pub fn verify(page: PageId, payload: &[u8], trailer: &[u8]) -> IrResult<()> {
        let computed = fnv1a64(payload);
        let mut stored = [0u8; CHECKSUM_LEN];
        stored.copy_from_slice(trailer);
        let stored = u64::from_le_bytes(stored);
        if computed != stored {
            return Err(IrError::Corruption {
                page: Some(page.0),
                detail: format!(
                    "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                ),
            });
        }
        Ok(())
    }

    /// The trailer of an all-zero page — what freshly allocated frames
    /// carry (the mmap store zero-fills payloads via `set_len` and then
    /// writes just this trailer per new frame).
    pub fn zero_page_seal() -> [u8; CHECKSUM_LEN] {
        static SEAL: std::sync::OnceLock<[u8; CHECKSUM_LEN]> = std::sync::OnceLock::new();
        *SEAL.get_or_init(|| seal(&[0u8; PAGE_SIZE]))
    }
}

/// Little helpers to read/write fixed-width integers and floats at byte
/// offsets inside a page. All encodings are little-endian.
pub mod codec {
    /// Writes a `u32` at `offset`.
    #[inline]
    pub fn put_u32(buf: &mut [u8], offset: usize, value: u32) {
        buf[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a `u32` at `offset`.
    #[inline]
    pub fn get_u32(buf: &[u8], offset: usize) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&buf[offset..offset + 4]);
        u32::from_le_bytes(b)
    }

    /// Writes a `u64` at `offset`.
    #[inline]
    pub fn put_u64(buf: &mut [u8], offset: usize, value: u64) {
        buf[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a `u64` at `offset`.
    #[inline]
    pub fn get_u64(buf: &[u8], offset: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[offset..offset + 8]);
        u64::from_le_bytes(b)
    }

    /// Writes an `f64` at `offset`.
    #[inline]
    pub fn put_f64(buf: &mut [u8], offset: usize, value: f64) {
        buf[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads an `f64` at `offset`.
    #[inline]
    pub fn get_f64(buf: &[u8], offset: usize) -> f64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[offset..offset + 8]);
        f64::from_le_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_next_increments() {
        assert_eq!(PageId(3).next(), PageId(4));
        assert_eq!(PageId(0).index(), 0);
        assert_eq!(PageId(7).to_string(), "p7");
    }

    #[test]
    fn zeroed_page_has_page_size() {
        let p = zeroed_page();
        assert_eq!(p.len(), PAGE_SIZE);
        assert!(p.iter().all(|&b| b == 0));
    }

    #[test]
    fn codec_roundtrips_values() {
        let mut buf = zeroed_page();
        codec::put_u32(&mut buf, 10, 0xDEAD_BEEF);
        codec::put_u64(&mut buf, 50, 0x0123_4567_89AB_CDEF);
        codec::put_f64(&mut buf, 100, -0.125);
        assert_eq!(codec::get_u32(&buf, 10), 0xDEAD_BEEF);
        assert_eq!(codec::get_u64(&buf, 50), 0x0123_4567_89AB_CDEF);
        assert_eq!(codec::get_f64(&buf, 100), -0.125);
    }

    #[test]
    fn codec_is_little_endian() {
        let mut buf = vec![0u8; 8];
        codec::put_u32(&mut buf, 0, 1);
        assert_eq!(buf[0], 1);
        assert_eq!(buf[1], 0);
    }

    #[test]
    fn frame_seal_and_verify_roundtrip() {
        let mut page = zeroed_page();
        codec::put_u32(&mut page, 0, 42);
        let trailer = frame::seal(&page);
        frame::verify(PageId(5), &page, &trailer).expect("untouched frame verifies");
        // Flip one payload bit: verification must name the page.
        page[100] ^= 0x01;
        let err = frame::verify(PageId(5), &page, &trailer).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("page 5"), "{msg}");
        assert!(msg.contains("checksum mismatch"), "{msg}");
    }

    #[test]
    fn frame_header_roundtrips_and_rejects_damage() {
        let header = frame::encode_header();
        frame::validate_header(&header).expect("fresh header validates");

        let mut bad_magic = header;
        bad_magic[0] = b'X';
        assert!(frame::validate_header(&bad_magic)
            .unwrap_err()
            .to_string()
            .contains("bad magic"));

        let mut bad_version = header;
        bad_version[8] = 99;
        assert!(frame::validate_header(&bad_version)
            .unwrap_err()
            .to_string()
            .contains("version"));

        let mut bad_page_size = header;
        bad_page_size[13] ^= 0xFF; // 4096 = 00 10 00 00 LE; flip the 0x10
        assert!(frame::validate_header(&bad_page_size)
            .unwrap_err()
            .to_string()
            .contains("page size"));
    }

    #[test]
    fn frame_page_count_requires_whole_frames() {
        let header = frame::HEADER_LEN as u64;
        let one_frame = frame::FRAME_LEN as u64;
        assert_eq!(frame::page_count(header).unwrap(), 0);
        assert_eq!(frame::page_count(header + 3 * one_frame).unwrap(), 3);
        assert!(frame::page_count(header - 1).is_err());
        assert!(frame::page_count(header + one_frame - 1).is_err());
    }

    #[test]
    fn frame_offsets_leave_room_for_the_header() {
        assert_eq!(frame::offset(PageId(0)), frame::HEADER_LEN as u64);
        assert_eq!(
            frame::offset(PageId(2)),
            frame::HEADER_LEN as u64 + 2 * frame::FRAME_LEN as u64
        );
    }

    #[test]
    fn zero_page_seal_matches_direct_seal() {
        assert_eq!(frame::zero_page_seal(), frame::seal(&zeroed_page()));
    }
}
