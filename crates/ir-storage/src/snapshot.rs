//! Versioned, fixed-layout on-disk index snapshots: cold start without a
//! deserialize pass.
//!
//! [`crate::index::IndexBuilder::build`] is an O(dataset) parse-sort-write
//! pass. A snapshot persists the *physical* result of that pass so a later
//! process opens the index by validating a 64-byte superheader and serving
//! pages straight through the existing [`crate::pagestore::PageStore`] /
//! [`crate::buffer::BufferPool`] path — no posting or tuple is decoded
//! before the first query touches it.
//!
//! # File layout
//!
//! A snapshot is a single `index.pages` file in the ordinary page-frame
//! format of [`crate::page::frame`] (64-byte file header, then one
//! checksummed 4104-byte frame per page), which is exactly why every
//! backend can serve it unmodified: `FilePageStore`/`MmapPageStore` `open`
//! it in place and [`crate::pagestore::MemPageStore::from_page_file`] loads
//! the frames verbatim. Inside that page space:
//!
//! ```text
//! page 0 .. data_pages        the index pages, bit-for-bit as built:
//!                             inverted-list pages and tuple-store pages at
//!                             their original page ids (page-aligned, so no
//!                             pointer in the directories needs rewriting)
//! list-directory section      one 12-byte record per inverted list
//!                             (dim u32 | first_page u32 | num_entries u32),
//!                             dims ascending, 341 records per page
//! tuple-directory section     one 12-byte record per tuple
//!                             (offset u64 | nnz u32), tuple-id order,
//!                             341 records per page
//! last page                   the 64-byte superheader (rest zero)
//! ```
//!
//! The superheader is the *root* of the snapshot:
//!
//! ```text
//! [ 0.. 8)  magic  "IRSNAP\0\0"
//! [ 8..12)  snapshot format version (LE, bumped on any layout change)
//! [12..16)  page size (LE)
//! [16..20)  data_pages
//! [20..24)  list_count          (number of inverted lists)
//! [24..28)  dimensionality
//! [28..36)  tuple_count (u64)
//! [36..40)  list_dir_first      (first page of the list-directory section)
//! [40..44)  tuple_dir_first     (first page of the tuple-directory section)
//! [44..48)  tuple_region_first  (first page of the tuple store)
//! [48..52)  tuple_region_pages
//! [52..56)  reserved, zero
//! [56..64)  FNV-1a-64 of bytes [0..56) (LE) — the same shared
//!           [`crate::checksum::fnv1a64`] that seals page frames
//! ```
//!
//! Every multi-byte field is explicitly little-endian; the format is
//! independent of host endianness. Any mismatch — foreign magic, bumped
//! version, wrong page size, checksum damage, or a section layout that does
//! not tile the file exactly — is rejected as a typed
//! [`IrError::Corruption`] before a single list or tuple record is decoded.
//!
//! # Versioning policy
//!
//! [`SNAPSHOT_VERSION`] names the trailer layout and the data-page formats
//! it points into. Readers accept exactly their own version: snapshots are
//! cheap to regenerate from the dataset, so there is no cross-version
//! migration path — a version bump is a clean "rebuild and re-save" signal,
//! never a silent reinterpretation of bytes.

use crate::buffer::BufferPool;
use crate::checksum::fnv1a64;
use crate::inverted::ListDirectoryEntry;
use crate::page::{codec, zeroed_page, PageId, PAGE_SIZE};
use crate::pagestore::{FilePageStore, PageStore};
use crate::tuplestore::{TupleDirectoryEntry, TupleRegion};
use ir_types::{DimId, IrError, IrResult};
use std::collections::HashMap;
use std::path::Path;

/// File name of the snapshot inside its directory. Deliberately the same
/// name the disk/mmap backends use for a live store, because a snapshot
/// *is* a valid page file those backends open in place.
pub const SNAPSHOT_FILE: &str = "index.pages";

/// Magic bytes opening the snapshot superheader.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"IRSNAP\0\0";

/// Version of the snapshot layout (bumped on any change; readers accept
/// exactly their own version — see the module docs for the policy).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Length in bytes of the encoded superheader at the start of the last page.
pub const SUPERHEADER_LEN: usize = 64;

/// Size in bytes of one directory record in either section (list records:
/// `dim u32 | first_page u32 | num_entries u32`; tuple records:
/// `offset u64 | nnz u32`).
pub const RECORD_BYTES: usize = 12;

/// Number of directory records per section page.
pub const RECORDS_PER_PAGE: usize = PAGE_SIZE / RECORD_BYTES;

/// What [`crate::index::TopKIndex::save_snapshot`] reports about the file
/// it wrote.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// Index pages copied verbatim (inverted lists + tuple store).
    pub data_pages: u32,
    /// Trailer pages appended (directory sections + superheader page).
    pub trailer_pages: u32,
    /// Total pages in the snapshot file.
    pub total_pages: u32,
    /// Size of the snapshot file in bytes (header + framed pages).
    pub file_bytes: u64,
}

/// Layout facts of a snapshot file, decoded from its superheader alone —
/// what [`peek`] reads without building an index or a buffer pool.
///
/// The cluster layer runs this preflight once per staged snapshot before
/// fanning out N shard bring-ups: a corrupt or truncated file fails here,
/// with one typed error, instead of N times inside node construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotPeek {
    /// Total pages in the snapshot file (data + trailer).
    pub total_pages: u32,
    /// Index pages (inverted lists + tuple store).
    pub data_pages: u32,
    /// Dimensionality of the snapshotted index.
    pub dimensionality: u32,
    /// Number of tuples in the snapshotted index.
    pub tuple_count: u64,
    /// Size of the snapshot file in bytes (header + framed pages).
    pub file_bytes: u64,
}

/// Validates `dir/index.pages` as a snapshot and returns its layout facts,
/// reading only the superheader page.
///
/// Every check [`crate::index::IndexBuilder::open_snapshot`] would fail on
/// — foreign magic, bumped version, checksum damage, sections that do not
/// tile the file — fails here first, as the same typed
/// [`IrError::Corruption`].
pub fn peek(dir: impl AsRef<Path>) -> IrResult<SnapshotPeek> {
    let store = FilePageStore::open(dir.as_ref().join(SNAPSHOT_FILE))?;
    let num_pages = store.num_pages();
    if num_pages == 0 {
        return Err(IrError::Corruption {
            page: None,
            detail: "snapshot file holds no pages at all (no superheader to read)".to_string(),
        });
    }
    let last = store.read_page(PageId(num_pages - 1))?;
    let header = SuperHeader::decode(&last)?;
    header.validate_layout(num_pages)?;
    Ok(SnapshotPeek {
        total_pages: num_pages,
        data_pages: header.data_pages,
        dimensionality: header.dimensionality,
        tuple_count: header.tuple_count,
        file_bytes: crate::page::frame::offset(PageId(num_pages)),
    })
}

/// The decoded superheader fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SuperHeader {
    data_pages: u32,
    list_count: u32,
    dimensionality: u32,
    tuple_count: u64,
    list_dir_first: u32,
    tuple_dir_first: u32,
    tuple_region_first: u32,
    tuple_region_pages: u32,
}

impl SuperHeader {
    fn encode(&self) -> [u8; SUPERHEADER_LEN] {
        let mut bytes = [0u8; SUPERHEADER_LEN];
        bytes[..8].copy_from_slice(&SNAPSHOT_MAGIC);
        codec::put_u32(&mut bytes, 8, SNAPSHOT_VERSION);
        codec::put_u32(&mut bytes, 12, PAGE_SIZE as u32);
        codec::put_u32(&mut bytes, 16, self.data_pages);
        codec::put_u32(&mut bytes, 20, self.list_count);
        codec::put_u32(&mut bytes, 24, self.dimensionality);
        codec::put_u64(&mut bytes, 28, self.tuple_count);
        codec::put_u32(&mut bytes, 36, self.list_dir_first);
        codec::put_u32(&mut bytes, 40, self.tuple_dir_first);
        codec::put_u32(&mut bytes, 44, self.tuple_region_first);
        codec::put_u32(&mut bytes, 48, self.tuple_region_pages);
        let checksum = fnv1a64(&bytes[..56]);
        bytes[56..64].copy_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Decodes and validates the superheader from the last page's payload:
    /// magic, version, page size and the sealed checksum. Layout
    /// consistency against the actual file size is a separate step
    /// ([`SuperHeader::validate_layout`]).
    fn decode(payload: &[u8]) -> IrResult<Self> {
        let corrupt = |detail: String| IrError::Corruption { page: None, detail };
        if payload[..8] != SNAPSHOT_MAGIC {
            return Err(corrupt(format!(
                "bad snapshot magic {:02x?} (expected {:02x?}); not an index snapshot",
                &payload[..8],
                SNAPSHOT_MAGIC
            )));
        }
        let version = codec::get_u32(payload, 8);
        if version != SNAPSHOT_VERSION {
            return Err(corrupt(format!(
                "unsupported snapshot version {version} (this build reads \
                 {SNAPSHOT_VERSION}); rebuild the index and save a fresh snapshot"
            )));
        }
        let page_size = codec::get_u32(payload, 12);
        if page_size as usize != PAGE_SIZE {
            return Err(corrupt(format!(
                "snapshot page size {page_size} does not match the compiled {PAGE_SIZE}"
            )));
        }
        let stored = codec::get_u64(payload, 56);
        let computed = fnv1a64(&payload[..56]);
        if stored != computed {
            return Err(corrupt(format!(
                "snapshot superheader checksum mismatch: stored {stored:#018x}, \
                 computed {computed:#018x}"
            )));
        }
        Ok(SuperHeader {
            data_pages: codec::get_u32(payload, 16),
            list_count: codec::get_u32(payload, 20),
            dimensionality: codec::get_u32(payload, 24),
            tuple_count: codec::get_u64(payload, 28),
            list_dir_first: codec::get_u32(payload, 36),
            tuple_dir_first: codec::get_u32(payload, 40),
            tuple_region_first: codec::get_u32(payload, 44),
            tuple_region_pages: codec::get_u32(payload, 48),
        })
    }

    fn list_dir_pages(&self) -> u64 {
        (self.list_count as u64).div_ceil(RECORDS_PER_PAGE as u64)
    }

    fn tuple_dir_pages(&self) -> u64 {
        self.tuple_count.div_ceil(RECORDS_PER_PAGE as u64)
    }

    /// Checks that the sections tile the `num_pages`-page file exactly:
    /// data pages, then the two directory sections, then the one
    /// superheader page, with nothing missing and nothing left over.
    fn validate_layout(&self, num_pages: u32) -> IrResult<()> {
        let corrupt = |detail: String| IrError::Corruption { page: None, detail };
        let expected = self.data_pages as u64 + self.list_dir_pages() + self.tuple_dir_pages() + 1;
        if expected != num_pages as u64 {
            return Err(corrupt(format!(
                "snapshot sections describe {expected} pages but the file holds {num_pages} \
                 (truncated or foreign trailer?)"
            )));
        }
        if self.list_dir_first as u64 != self.data_pages as u64 {
            return Err(corrupt(format!(
                "list directory starts at page {} but the data section ends at {}",
                self.list_dir_first, self.data_pages
            )));
        }
        if self.tuple_dir_first as u64 != self.list_dir_first as u64 + self.list_dir_pages() {
            return Err(corrupt(format!(
                "tuple directory starts at page {} but the list directory ends at {}",
                self.tuple_dir_first,
                self.list_dir_first as u64 + self.list_dir_pages()
            )));
        }
        if self.tuple_region_pages == 0
            || self.tuple_region_first as u64 + self.tuple_region_pages as u64
                > self.data_pages as u64
        {
            return Err(corrupt(format!(
                "tuple region (pages {}..{}) does not fit in the {}-page data section",
                self.tuple_region_first,
                self.tuple_region_first as u64 + self.tuple_region_pages as u64,
                self.data_pages
            )));
        }
        Ok(())
    }
}

/// Everything [`crate::index::IndexBuilder::open_snapshot`] reconstructs by
/// reading only the trailer: the in-memory directories plus the data-page
/// extent. No posting or tuple bytes are touched.
pub(crate) struct SnapshotContents {
    pub(crate) lists: HashMap<DimId, ListDirectoryEntry>,
    pub(crate) tuple_region: TupleRegion,
    pub(crate) dimensionality: u32,
}

/// Number of data pages a built index occupies: one past the last page any
/// directory references. An index opened *from* a snapshot re-saves
/// correctly because the old trailer pages sit past every reference.
pub(crate) fn data_page_extent(
    lists: &HashMap<DimId, ListDirectoryEntry>,
    tuple_region: &TupleRegion,
) -> u32 {
    let mut extent = tuple_region.first_page.0 + tuple_region.num_pages;
    for entry in lists.values() {
        extent = extent.max(entry.first_page.0 + entry.num_pages());
    }
    extent
}

/// Writes a snapshot of the index into `dir/index.pages` (created or
/// truncated), reading every data page through the live `pool` — so the
/// copy is checksum-verified, counted, retried and fault-visible like any
/// other access.
pub(crate) fn write_snapshot(
    pool: &BufferPool,
    lists: &HashMap<DimId, ListDirectoryEntry>,
    tuple_region: &TupleRegion,
    dimensionality: u32,
    dir: &Path,
) -> IrResult<SnapshotSummary> {
    std::fs::create_dir_all(dir)?;
    let dest = FilePageStore::create(dir.join(SNAPSHOT_FILE))?;

    let data_pages = data_page_extent(lists, tuple_region);
    let header = SuperHeader {
        data_pages,
        list_count: lists.len() as u32,
        dimensionality,
        tuple_count: tuple_region.directory.len() as u64,
        list_dir_first: data_pages,
        tuple_dir_first: (data_pages as u64
            + (lists.len() as u64).div_ceil(RECORDS_PER_PAGE as u64))
            as u32,
        tuple_region_first: tuple_region.first_page.0,
        tuple_region_pages: tuple_region.num_pages,
    };
    let total_pages =
        (header.data_pages as u64 + header.list_dir_pages() + header.tuple_dir_pages() + 1) as u32;
    dest.allocate(total_pages)?;

    // Data pages, bit for bit. Reading through the pool keeps the copy on
    // the accounted (and fault-injectable) path.
    for page in 0..data_pages {
        let buf = pool.read(PageId(page))?;
        dest.write_page(PageId(page), &buf)?;
    }

    // List-directory section, dims ascending so the layout is deterministic.
    let mut dims: Vec<DimId> = lists.keys().copied().collect();
    dims.sort_unstable();
    write_section(&dest, header.list_dir_first, &dims, |bytes, off, dim| {
        let entry = &lists[dim];
        codec::put_u32(bytes, off, entry.dim.0);
        codec::put_u32(bytes, off + 4, entry.first_page.0);
        codec::put_u32(bytes, off + 8, entry.num_entries);
    })?;

    // Tuple-directory section, tuple-id order.
    write_section(
        &dest,
        header.tuple_dir_first,
        &tuple_region.directory,
        |bytes, off, entry| {
            codec::put_u64(bytes, off, entry.offset);
            codec::put_u32(bytes, off + 8, entry.nnz);
        },
    )?;

    // The superheader page goes last: a torn write anywhere above leaves a
    // file whose trailer fails validation instead of a plausible snapshot.
    let mut last = zeroed_page();
    last[..SUPERHEADER_LEN].copy_from_slice(&header.encode());
    dest.write_page(PageId(total_pages - 1), &last)?;

    let trailer_pages = total_pages - data_pages;
    Ok(SnapshotSummary {
        data_pages,
        trailer_pages,
        total_pages,
        file_bytes: crate::page::frame::offset(PageId(total_pages)),
    })
}

/// Packs `items` into 12-byte records, [`RECORDS_PER_PAGE`] per page,
/// starting at `first_page` of `dest`.
fn write_section<T>(
    dest: &FilePageStore,
    first_page: u32,
    items: &[T],
    put: impl Fn(&mut [u8], usize, &T),
) -> IrResult<()> {
    for (page_idx, chunk) in items.chunks(RECORDS_PER_PAGE).enumerate() {
        let mut bytes = zeroed_page();
        for (slot, item) in chunk.iter().enumerate() {
            put(&mut bytes, slot * RECORD_BYTES, item);
        }
        dest.write_page(PageId(first_page + page_idx as u32), &bytes)?;
    }
    Ok(())
}

/// Reads the snapshot trailer through `pool` (whose store must already be
/// open on the snapshot file) and reconstructs the index directories.
///
/// This is the *entire* cold-start read path: the superheader page, the
/// directory-section pages, and nothing else — data pages stay untouched
/// until the first query asks for them. Every validation failure is a
/// typed [`IrError::Corruption`].
pub(crate) fn read_contents(pool: &BufferPool) -> IrResult<SnapshotContents> {
    let corrupt = |detail: String| IrError::Corruption { page: None, detail };
    let num_pages = pool.store().num_pages();
    if num_pages == 0 {
        return Err(corrupt(
            "snapshot file holds no pages at all (no superheader to read)".to_string(),
        ));
    }
    let last = pool.read(PageId(num_pages - 1))?;
    let header = SuperHeader::decode(&last)?;
    header.validate_layout(num_pages)?;

    // List-directory section → the per-dimension map. Dims must ascend
    // strictly: that both guarantees uniqueness and pins the layout the
    // writer produces.
    let mut lists: HashMap<DimId, ListDirectoryEntry> =
        HashMap::with_capacity(header.list_count as usize);
    let mut previous_dim: Option<u32> = None;
    read_section(
        pool,
        header.list_dir_first,
        header.list_count as u64,
        |bytes, off, idx| {
            let dim = codec::get_u32(bytes, off);
            let first_page = codec::get_u32(bytes, off + 4);
            let num_entries = codec::get_u32(bytes, off + 8);
            if dim >= header.dimensionality {
                return Err(corrupt(format!(
                    "list record {idx} indexes dimension {dim}, past the dimensionality {}",
                    header.dimensionality
                )));
            }
            if previous_dim.is_some_and(|prev| dim <= prev) {
                return Err(corrupt(format!(
                    "list record {idx} (dimension {dim}) is out of order — dims must ascend"
                )));
            }
            previous_dim = Some(dim);
            let entry = ListDirectoryEntry {
                dim: DimId(dim),
                first_page: PageId(first_page),
                num_entries,
            };
            if first_page as u64 + entry.num_pages() as u64 > header.data_pages as u64 {
                return Err(corrupt(format!(
                    "list for dimension {dim} (pages {first_page}..+{}) extends past the \
                     {}-page data section",
                    entry.num_pages(),
                    header.data_pages
                )));
            }
            lists.insert(DimId(dim), entry);
            Ok(())
        },
    )?;

    // Tuple-directory section → the per-tuple directory.
    let region_bytes = header.tuple_region_pages as u64 * PAGE_SIZE as u64;
    let mut directory: Vec<TupleDirectoryEntry> = Vec::with_capacity(header.tuple_count as usize);
    read_section(
        pool,
        header.tuple_dir_first,
        header.tuple_count,
        |bytes, off, idx| {
            let entry = TupleDirectoryEntry {
                offset: codec::get_u64(bytes, off),
                nnz: codec::get_u32(bytes, off + 8),
            };
            if entry.offset + entry.byte_len() as u64 > region_bytes {
                return Err(corrupt(format!(
                    "tuple record {idx} (offset {}, {} bytes) extends past the {}-byte \
                     tuple region",
                    entry.offset,
                    entry.byte_len(),
                    region_bytes
                )));
            }
            directory.push(entry);
            Ok(())
        },
    )?;

    Ok(SnapshotContents {
        lists,
        tuple_region: TupleRegion {
            first_page: PageId(header.tuple_region_first),
            num_pages: header.tuple_region_pages,
            directory,
        },
        dimensionality: header.dimensionality,
    })
}

/// Walks `count` 12-byte records packed from `first_page`, handing each to
/// `visit` with its byte offset and record index.
fn read_section(
    pool: &BufferPool,
    first_page: u32,
    count: u64,
    mut visit: impl FnMut(&[u8], usize, u64) -> IrResult<()>,
) -> IrResult<()> {
    let mut page_buf = None;
    for idx in 0..count {
        let page_idx = (idx / RECORDS_PER_PAGE as u64) as u32;
        let slot = (idx % RECORDS_PER_PAGE as u64) as usize;
        if slot == 0 {
            page_buf = Some(pool.read(PageId(first_page + page_idx))?);
        }
        let Some(bytes) = page_buf.as_deref() else {
            // Unreachable: slot 0 always (re)fills the buffer first.
            return Err(IrError::Storage(
                "section reader lost its page buffer".to_string(),
            ));
        };
        visit(bytes, slot * RECORD_BYTES, idx)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> SuperHeader {
        SuperHeader {
            data_pages: 7,
            list_count: 3,
            dimensionality: 5,
            tuple_count: 11,
            list_dir_first: 7,
            tuple_dir_first: 8,
            tuple_region_first: 4,
            tuple_region_pages: 3,
        }
    }

    #[test]
    fn superheader_roundtrips() {
        let header = sample_header();
        let mut payload = zeroed_page();
        payload[..SUPERHEADER_LEN].copy_from_slice(&header.encode());
        assert_eq!(SuperHeader::decode(&payload).unwrap(), header);
    }

    #[test]
    fn superheader_rejects_damage() {
        let encoded = sample_header().encode();
        let mut payload = zeroed_page();
        payload[..SUPERHEADER_LEN].copy_from_slice(&encoded);

        let mut foreign = payload.clone();
        foreign[0] = b'X';
        let err = SuperHeader::decode(&foreign).unwrap_err();
        assert!(err.to_string().contains("bad snapshot magic"), "{err}");

        // A version bump must be named *as* a version problem, so the
        // checksum is recomputed to keep the seal valid.
        let mut bumped = payload.clone();
        codec::put_u32(&mut bumped, 8, SNAPSHOT_VERSION + 1);
        let reseal = fnv1a64(&bumped[..56]);
        bumped[56..64].copy_from_slice(&reseal.to_le_bytes());
        let err = SuperHeader::decode(&bumped).unwrap_err();
        assert!(err.to_string().contains("snapshot version"), "{err}");

        let mut flipped = payload.clone();
        flipped[20] ^= 0x01; // list_count field: breaks the seal
        let err = SuperHeader::decode(&flipped).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn layout_validation_requires_exact_tiling() {
        let header = sample_header();
        // 7 data + 1 list-dir + 1 tuple-dir + 1 superheader = 10 pages.
        header.validate_layout(10).unwrap();
        assert!(header.validate_layout(9).is_err());
        assert!(header.validate_layout(11).is_err());

        let mut shifted = header;
        shifted.list_dir_first = 6;
        assert!(shifted.validate_layout(10).is_err());

        let mut overhang = header;
        overhang.tuple_region_pages = 99;
        assert!(overhang.validate_layout(10).is_err());
    }
}
