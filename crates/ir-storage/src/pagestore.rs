//! Page stores: the "disk" abstraction underneath the buffer pool.
//!
//! Three implementations are provided:
//!
//! * [`MemPageStore`] — pages live in memory. This is the default backend for
//!   experiments; physical reads are still counted by the buffer pool, so the
//!   simulated I/O cost model of Section 7 applies unchanged, while the
//!   actual runtime reflects the *"alternative setting where the dataset and
//!   inverted lists are cached in main memory"* that the paper mentions in
//!   its CPU discussion.
//! * [`FilePageStore`] — pages live in a real file accessed with positioned
//!   reads (`pread`-style, one syscall per page instead of the former
//!   seek-then-read pair); used by the disk-resident configuration and by
//!   the storage round-trip tests.
//! * `MmapPageStore` (in the `mmap` module, behind the `mmap` cargo
//!   feature) — the file is memory-mapped read-only, so a page miss costs a
//!   memory copy (plus, at worst, a soft page fault serviced by the OS)
//!   instead of a read syscall.
//!
//! All stores are *self-validating*: each stored page carries an FNV-1a-64
//! checksum (see [`crate::page::frame`]) that is verified on every read, and
//! the file-backed stores open with a versioned header check. Damage
//! surfaces as a typed [`IrError::Corruption`] naming the page, never as
//! silently wrong bytes. Out-of-range accesses likewise return the same
//! typed [`IrError::PageOutOfBounds`] from every backend.
//!
//! Every store keeps its own device-level [`ShardedIoStats`]: `logical_reads`
//! counts page reads served by the store (for the mmap store these are the
//! *page-fault-equivalent* reads — no syscall happens, but a page's worth of
//! data crossed from the mapping), `read_syscalls` counts actual read system
//! calls issued, and `pages_written` counts page writes. The buffer pool's
//! own counters — the ones the experiment harness reports — are *backend
//! independent*: every store sees exactly the pool's miss sequence, so
//! `store.io_snapshot().logical_reads` always equals the pool's
//! `physical_reads` no matter which backend is plugged in.

use crate::page::{frame, zeroed_page, PageBuf, PageId, PAGE_SIZE};
use crate::stats::{IoStatsSnapshot, ShardedIoStats};
use ir_types::{IrError, IrResult};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::path::Path;

/// Abstraction over a flat, page-addressed storage device.
///
/// Concurrency contract: concurrent `read_page` calls are always safe and
/// return consistent pages. A `write_page` racing a `read_page` of the
/// *same page* is not serialized by the file and mmap stores (their read
/// paths are deliberately lock-free positioned reads / mapped copies), so
/// the reader may observe a torn page; the workspace only writes pages
/// during single-threaded index construction, and the shared conformance
/// suite pins the read-only concurrent behaviour every backend must honour.
pub trait PageStore: Send + Sync {
    /// Number of allocated pages.
    fn num_pages(&self) -> u32;

    /// Allocates `count` fresh zeroed pages and returns the id of the first.
    fn allocate(&self, count: u32) -> IrResult<PageId>;

    /// Reads a full page into a new buffer, verifying its checksum.
    fn read_page(&self, page: PageId) -> IrResult<PageBuf>;

    /// Overwrites a full page (and reseals its checksum).
    fn write_page(&self, page: PageId, data: &[u8]) -> IrResult<()>;

    /// Snapshot of the store's device-level counters (see the module docs
    /// for what each backend records).
    fn io_snapshot(&self) -> IoStatsSnapshot;

    /// Resets the store's device-level counters to zero.
    fn reset_io_stats(&self);

    /// XORs `mask` into the *stored* byte at `offset` inside `page` without
    /// resealing the checksum — simulating bit rot underneath the store.
    ///
    /// The next `read_page` of that page fails with
    /// [`IrError::Corruption`]; applying the same mask again restores the
    /// original byte. This is a fault-injection hook for the chaos suite,
    /// not part of normal operation, so the default implementation refuses.
    fn corrupt_stored_byte(&self, page: PageId, offset: usize, mask: u8) -> IrResult<()> {
        let _ = (page, offset, mask);
        Err(IrError::Storage(
            "corruption injection is not supported by this page store".to_string(),
        ))
    }
}

/// The typed error every backend returns for an out-of-range page access.
pub(crate) fn out_of_bounds(page: PageId, num_pages: u32) -> IrError {
    IrError::PageOutOfBounds {
        page: page.0,
        num_pages,
    }
}

/// The typed error every backend returns for a wrong-sized `write_page`.
pub(crate) fn check_write_len(data: &[u8]) -> IrResult<()> {
    if data.len() != PAGE_SIZE {
        return Err(IrError::Storage(format!(
            "write_page expects {PAGE_SIZE} bytes, got {}",
            data.len()
        )));
    }
    Ok(())
}

/// Bounds-check for the corruption-injection hook: the offset must land in
/// the page payload.
pub(crate) fn check_corrupt_offset(offset: usize) -> IrResult<()> {
    if offset >= PAGE_SIZE {
        return Err(IrError::Storage(format!(
            "corrupt_stored_byte offset {offset} is past the {PAGE_SIZE}-byte payload"
        )));
    }
    Ok(())
}

/// Reads `buf.len()` bytes at `offset` without moving any file cursor (one
/// positioned-read syscall; the file store's whole read path).
pub(crate) fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
    }
    #[cfg(windows)]
    {
        let mut done = 0usize;
        while done < buf.len() {
            let n = std::os::windows::fs::FileExt::seek_read(
                file,
                &mut buf[done..],
                offset + done as u64,
            )?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "failed to fill whole buffer",
                ));
            }
            done += n;
        }
        Ok(())
    }
}

/// Writes all of `data` at `offset` without moving any file cursor.
pub(crate) fn write_all_at(file: &File, data: &[u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::os::unix::fs::FileExt::write_all_at(file, data, offset)
    }
    #[cfg(windows)]
    {
        let mut done = 0usize;
        while done < data.len() {
            let n = std::os::windows::fs::FileExt::seek_write(
                file,
                &data[done..],
                offset + done as u64,
            )?;
            done += n;
        }
        Ok(())
    }
}

/// One in-memory frame: payload plus the checksum trailer it was sealed
/// with. The trailer is stored (not recomputed on read) so injected
/// corruption is detectable exactly as it would be on disk.
struct MemFrame {
    payload: PageBuf,
    seal: [u8; frame::CHECKSUM_LEN],
}

impl MemFrame {
    fn zeroed() -> Self {
        MemFrame {
            payload: zeroed_page(),
            seal: frame::zero_page_seal(),
        }
    }
}

/// In-memory page store.
#[derive(Default)]
pub struct MemPageStore {
    pages: Mutex<Vec<MemFrame>>,
    stats: ShardedIoStats,
}

impl MemPageStore {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads an existing page file (the [`crate::page::frame`] format both
    /// file-backed stores write) into memory, preserving every frame's
    /// stored seal verbatim.
    ///
    /// Only the file header and overall frame shape are validated up front —
    /// exactly what [`FilePageStore::open`] checks. Per-page checksums are
    /// *not* recomputed here: a damaged frame is carried into memory as-is
    /// and surfaces as a typed [`IrError::Corruption`] on its first read,
    /// the same lazy semantics the file and mmap stores have. This is how
    /// the mem backend serves a saved index snapshot.
    pub fn from_page_file<P: AsRef<Path>>(path: P) -> IrResult<Self> {
        let bytes = std::fs::read(path)?;
        let num_pages = frame::page_count(bytes.len() as u64)?;
        let mut header = [0u8; frame::HEADER_LEN];
        header.copy_from_slice(&bytes[..frame::HEADER_LEN]);
        frame::validate_header(&header)?;
        let mut pages = Vec::with_capacity(num_pages as usize);
        for i in 0..num_pages as usize {
            let start = frame::HEADER_LEN + i * frame::FRAME_LEN;
            let mut payload = zeroed_page();
            payload.copy_from_slice(&bytes[start..start + PAGE_SIZE]);
            let mut seal = [0u8; frame::CHECKSUM_LEN];
            seal.copy_from_slice(&bytes[start + PAGE_SIZE..start + frame::FRAME_LEN]);
            pages.push(MemFrame { payload, seal });
        }
        Ok(MemPageStore {
            pages: Mutex::new(pages),
            stats: ShardedIoStats::new(),
        })
    }
}

impl PageStore for MemPageStore {
    fn num_pages(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    fn allocate(&self, count: u32) -> IrResult<PageId> {
        let mut pages = self.pages.lock();
        let first = pages.len() as u32;
        for _ in 0..count {
            pages.push(MemFrame::zeroed());
        }
        Ok(PageId(first))
    }

    fn read_page(&self, page: PageId) -> IrResult<PageBuf> {
        let pages = self.pages.lock();
        let stored = pages
            .get(page.index())
            .ok_or_else(|| out_of_bounds(page, pages.len() as u32))?;
        frame::verify(page, &stored.payload, &stored.seal)?;
        let buf = stored.payload.clone();
        self.stats.record_logical_read();
        Ok(buf)
    }

    fn write_page(&self, page: PageId, data: &[u8]) -> IrResult<()> {
        check_write_len(data)?;
        let mut pages = self.pages.lock();
        let num_pages = pages.len() as u32;
        let slot = pages
            .get_mut(page.index())
            .ok_or_else(|| out_of_bounds(page, num_pages))?;
        slot.payload.copy_from_slice(data);
        slot.seal = frame::seal(data);
        self.stats.record_write();
        Ok(())
    }

    fn io_snapshot(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_io_stats(&self) {
        self.stats.reset();
    }

    fn corrupt_stored_byte(&self, page: PageId, offset: usize, mask: u8) -> IrResult<()> {
        check_corrupt_offset(offset)?;
        let mut pages = self.pages.lock();
        let num_pages = pages.len() as u32;
        let slot = pages
            .get_mut(page.index())
            .ok_or_else(|| out_of_bounds(page, num_pages))?;
        slot.payload[offset] ^= mask;
        Ok(())
    }
}

/// File-backed page store over the [`crate::page::frame`] format: a 64-byte
/// versioned header, then page `i`'s frame (payload + checksum trailer) at
/// `frame::offset(i)`.
///
/// Reads and writes are *positioned* (`read_at`/`write_at`): no shared file
/// cursor exists, so concurrent readers never serialize on a lock and every
/// page miss costs exactly one read syscall — frames are contiguous, so the
/// payload and its trailer arrive in a single `pread`. The saving shows up
/// in the store's [`IoStatsSnapshot::read_syscalls`], which stays equal to
/// its `logical_reads` instead of double.
pub struct FilePageStore {
    file: File,
    num_pages: Mutex<u32>,
    stats: ShardedIoStats,
}

impl FilePageStore {
    /// Creates (or truncates) a page file at `path`, writing the versioned
    /// header.
    pub fn create<P: AsRef<Path>>(path: P) -> IrResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        write_all_at(&file, &frame::encode_header(), 0)?;
        Ok(FilePageStore {
            file,
            num_pages: Mutex::new(0),
            stats: ShardedIoStats::new(),
        })
    }

    /// Opens an existing page file, validating its header and overall shape
    /// before serving a single page. A file that is not a page file (or was
    /// torn mid-write) is reported as a typed [`IrError::Corruption`], not
    /// a bare `UnexpectedEof` on some later read.
    pub fn open<P: AsRef<Path>>(path: P) -> IrResult<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let num_pages = frame::page_count(len)?;
        let mut header = [0u8; frame::HEADER_LEN];
        read_exact_at(&file, &mut header, 0)?;
        frame::validate_header(&header)?;
        Ok(FilePageStore {
            file,
            num_pages: Mutex::new(num_pages),
            stats: ShardedIoStats::new(),
        })
    }
}

impl PageStore for FilePageStore {
    fn num_pages(&self) -> u32 {
        *self.num_pages.lock()
    }

    fn allocate(&self, count: u32) -> IrResult<PageId> {
        let mut num = self.num_pages.lock();
        let first = *num;
        let mut zero_frame = vec![0u8; frame::FRAME_LEN];
        zero_frame[PAGE_SIZE..].copy_from_slice(&frame::zero_page_seal());
        for i in 0..count {
            write_all_at(&self.file, &zero_frame, frame::offset(PageId(first + i)))?;
        }
        *num += count;
        Ok(PageId(first))
    }

    fn read_page(&self, page: PageId) -> IrResult<PageBuf> {
        let num_pages = self.num_pages();
        if page.0 >= num_pages {
            return Err(out_of_bounds(page, num_pages));
        }
        let mut buf = vec![0u8; frame::FRAME_LEN];
        read_exact_at(&self.file, &mut buf, frame::offset(page))?;
        frame::verify(page, &buf[..PAGE_SIZE], &buf[PAGE_SIZE..])?;
        buf.truncate(PAGE_SIZE);
        self.stats.record_logical_read();
        self.stats.record_read_syscall();
        Ok(buf.into_boxed_slice())
    }

    fn write_page(&self, page: PageId, data: &[u8]) -> IrResult<()> {
        check_write_len(data)?;
        let num_pages = self.num_pages();
        if page.0 >= num_pages {
            return Err(out_of_bounds(page, num_pages));
        }
        let mut framed = vec![0u8; frame::FRAME_LEN];
        framed[..PAGE_SIZE].copy_from_slice(data);
        framed[PAGE_SIZE..].copy_from_slice(&frame::seal(data));
        write_all_at(&self.file, &framed, frame::offset(page))?;
        self.stats.record_write();
        Ok(())
    }

    fn io_snapshot(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_io_stats(&self) {
        self.stats.reset();
    }

    fn corrupt_stored_byte(&self, page: PageId, offset: usize, mask: u8) -> IrResult<()> {
        check_corrupt_offset(offset)?;
        let num_pages = self.num_pages();
        if page.0 >= num_pages {
            return Err(out_of_bounds(page, num_pages));
        }
        let pos = frame::offset(page) + offset as u64;
        let mut byte = [0u8; 1];
        read_exact_at(&self.file, &mut byte, pos)?;
        byte[0] ^= mask;
        write_all_at(&self.file, &byte, pos)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_store(store: &dyn PageStore) {
        assert_eq!(store.num_pages(), 0);
        let first = store.allocate(3).unwrap();
        assert_eq!(first, PageId(0));
        assert_eq!(store.num_pages(), 3);

        let mut page = zeroed_page();
        page[0] = 42;
        page[PAGE_SIZE - 1] = 7;
        store.write_page(PageId(1), &page).unwrap();

        let read = store.read_page(PageId(1)).unwrap();
        assert_eq!(read[0], 42);
        assert_eq!(read[PAGE_SIZE - 1], 7);

        let untouched = store.read_page(PageId(2)).unwrap();
        assert!(untouched.iter().all(|&b| b == 0));

        assert!(matches!(
            store.read_page(PageId(9)),
            Err(IrError::PageOutOfBounds {
                page: 9,
                num_pages: 3
            })
        ));
        assert!(matches!(
            store.write_page(PageId(9), &page),
            Err(IrError::PageOutOfBounds {
                page: 9,
                num_pages: 3
            })
        ));
        assert!(store.write_page(PageId(0), &[1, 2, 3]).is_err());

        let next = store.allocate(1).unwrap();
        assert_eq!(next, PageId(3));
    }

    fn exercise_corruption(store: &dyn PageStore) {
        store.allocate(2).unwrap();
        let mut page = zeroed_page();
        page[17] = 0xAB;
        store.write_page(PageId(1), &page).unwrap();

        store.corrupt_stored_byte(PageId(1), 17, 0xFF).unwrap();
        let err = store.read_page(PageId(1)).unwrap_err();
        assert!(
            matches!(err, IrError::Corruption { page: Some(1), .. }),
            "expected a corruption error naming page 1, got: {err}"
        );
        // The untouched page is unaffected.
        store.read_page(PageId(0)).unwrap();
        // XOR is self-inverse: re-applying the mask restores the page.
        store.corrupt_stored_byte(PageId(1), 17, 0xFF).unwrap();
        assert_eq!(store.read_page(PageId(1)).unwrap()[17], 0xAB);
        // Out-of-range injection targets are rejected, not silently applied.
        assert!(store.corrupt_stored_byte(PageId(9), 0, 0xFF).is_err());
        assert!(store
            .corrupt_stored_byte(PageId(0), PAGE_SIZE, 0xFF)
            .is_err());
    }

    #[test]
    fn mem_store_roundtrip() {
        exercise_store(&MemPageStore::new());
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("pages.bin");
        exercise_store(&FilePageStore::create(&path).unwrap());
    }

    #[test]
    fn mem_store_detects_injected_corruption() {
        exercise_corruption(&MemPageStore::new());
    }

    #[test]
    fn file_store_detects_injected_corruption() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("pages.bin");
        exercise_corruption(&FilePageStore::create(&path).unwrap());
    }

    #[test]
    fn file_store_reopen_preserves_pages() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("pages.bin");
        {
            let store = FilePageStore::create(&path).unwrap();
            store.allocate(2).unwrap();
            let mut page = zeroed_page();
            page[10] = 99;
            store.write_page(PageId(1), &page).unwrap();
        }
        let reopened = FilePageStore::open(&path).unwrap();
        assert_eq!(reopened.num_pages(), 2);
        assert_eq!(reopened.read_page(PageId(1)).unwrap()[10], 99);
    }

    #[test]
    fn create_writes_the_versioned_header() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("pages.bin");
        FilePageStore::create(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), frame::HEADER_LEN);
        assert_eq!(&bytes[..8], &frame::MAGIC);
    }

    #[test]
    fn open_rejects_truncated_file() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("broken.bin");
        std::fs::write(&path, [0u8; 100]).unwrap();
        let err = FilePageStore::open(&path).map(|_| ()).unwrap_err();
        assert!(
            matches!(err, IrError::Corruption { page: None, .. }),
            "expected file-level corruption, got: {err}"
        );
    }

    #[test]
    fn open_rejects_a_foreign_file() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("not_pages.bin");
        // Right shape (header + one frame), wrong magic.
        std::fs::write(&path, vec![0xEEu8; frame::HEADER_LEN + frame::FRAME_LEN]).unwrap();
        let err = FilePageStore::open(&path).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn file_store_reads_cost_one_syscall_each() {
        let dir = tempfile::tempdir().unwrap();
        let store = FilePageStore::create(dir.path().join("pages.bin")).unwrap();
        store.allocate(4).unwrap();
        for i in 0..4 {
            store.read_page(PageId(i)).unwrap();
        }
        let snap = store.io_snapshot();
        assert_eq!(snap.logical_reads, 4);
        assert_eq!(
            snap.read_syscalls, 4,
            "positioned frame reads: exactly one syscall per page, checksum included"
        );
        store.reset_io_stats();
        assert_eq!(store.io_snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn mem_store_reads_cost_no_syscalls() {
        let store = MemPageStore::new();
        store.allocate(2).unwrap();
        store.read_page(PageId(0)).unwrap();
        store.read_page(PageId(1)).unwrap();
        let snap = store.io_snapshot();
        assert_eq!(snap.logical_reads, 2);
        assert_eq!(snap.read_syscalls, 0);
    }

    #[test]
    fn failed_reads_are_not_counted() {
        let store = MemPageStore::new();
        assert!(store.read_page(PageId(5)).is_err());
        assert_eq!(store.io_snapshot().logical_reads, 0);
    }
}
