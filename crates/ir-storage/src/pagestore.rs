//! Page stores: the "disk" abstraction underneath the buffer pool.
//!
//! Three implementations are provided:
//!
//! * [`MemPageStore`] — pages live in memory. This is the default backend for
//!   experiments; physical reads are still counted by the buffer pool, so the
//!   simulated I/O cost model of Section 7 applies unchanged, while the
//!   actual runtime reflects the *"alternative setting where the dataset and
//!   inverted lists are cached in main memory"* that the paper mentions in
//!   its CPU discussion.
//! * [`FilePageStore`] — pages live in a real file accessed with positioned
//!   reads (`pread`-style, one syscall per page instead of the former
//!   seek-then-read pair); used by the disk-resident configuration and by
//!   the storage round-trip tests.
//! * `MmapPageStore` (in the `mmap` module, behind the `mmap` cargo
//!   feature) — the file is memory-mapped read-only, so a page miss costs a
//!   memory copy (plus, at worst, a soft page fault serviced by the OS)
//!   instead of a read syscall.
//!
//! Every store keeps its own device-level [`ShardedIoStats`]: `logical_reads`
//! counts page reads served by the store (for the mmap store these are the
//! *page-fault-equivalent* reads — no syscall happens, but a page's worth of
//! data crossed from the mapping), `read_syscalls` counts actual read system
//! calls issued, and `pages_written` counts page writes. The buffer pool's
//! own counters — the ones the experiment harness reports — are *backend
//! independent*: every store sees exactly the pool's miss sequence, so
//! `store.io_snapshot().logical_reads` always equals the pool's
//! `physical_reads` no matter which backend is plugged in.

use crate::page::{zeroed_page, PageBuf, PageId, PAGE_SIZE};
use crate::stats::{IoStatsSnapshot, ShardedIoStats};
use ir_types::{IrError, IrResult};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::path::Path;

/// Abstraction over a flat, page-addressed storage device.
///
/// Concurrency contract: concurrent `read_page` calls are always safe and
/// return consistent pages. A `write_page` racing a `read_page` of the
/// *same page* is not serialized by the file and mmap stores (their read
/// paths are deliberately lock-free positioned reads / mapped copies), so
/// the reader may observe a torn page; the workspace only writes pages
/// during single-threaded index construction, and the shared conformance
/// suite pins the read-only concurrent behaviour every backend must honour.
pub trait PageStore: Send + Sync {
    /// Number of allocated pages.
    fn num_pages(&self) -> u32;

    /// Allocates `count` fresh zeroed pages and returns the id of the first.
    fn allocate(&self, count: u32) -> IrResult<PageId>;

    /// Reads a full page into a new buffer.
    fn read_page(&self, page: PageId) -> IrResult<PageBuf>;

    /// Overwrites a full page.
    fn write_page(&self, page: PageId, data: &[u8]) -> IrResult<()>;

    /// Snapshot of the store's device-level counters (see the module docs
    /// for what each backend records).
    fn io_snapshot(&self) -> IoStatsSnapshot;

    /// Resets the store's device-level counters to zero.
    fn reset_io_stats(&self);
}

/// Reads `buf.len()` bytes at `offset` without moving any file cursor (one
/// positioned-read syscall; the file store's whole read path).
pub(crate) fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
    }
    #[cfg(windows)]
    {
        let mut done = 0usize;
        while done < buf.len() {
            let n = std::os::windows::fs::FileExt::seek_read(
                file,
                &mut buf[done..],
                offset + done as u64,
            )?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "failed to fill whole buffer",
                ));
            }
            done += n;
        }
        Ok(())
    }
}

/// Writes all of `data` at `offset` without moving any file cursor.
pub(crate) fn write_all_at(file: &File, data: &[u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::os::unix::fs::FileExt::write_all_at(file, data, offset)
    }
    #[cfg(windows)]
    {
        let mut done = 0usize;
        while done < data.len() {
            let n = std::os::windows::fs::FileExt::seek_write(
                file,
                &data[done..],
                offset + done as u64,
            )?;
            done += n;
        }
        Ok(())
    }
}

/// In-memory page store.
#[derive(Default)]
pub struct MemPageStore {
    pages: Mutex<Vec<PageBuf>>,
    stats: ShardedIoStats,
}

impl MemPageStore {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemPageStore {
    fn num_pages(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    fn allocate(&self, count: u32) -> IrResult<PageId> {
        let mut pages = self.pages.lock();
        let first = pages.len() as u32;
        for _ in 0..count {
            pages.push(zeroed_page());
        }
        Ok(PageId(first))
    }

    fn read_page(&self, page: PageId) -> IrResult<PageBuf> {
        let pages = self.pages.lock();
        let buf = pages
            .get(page.index())
            .cloned()
            .ok_or_else(|| IrError::Storage(format!("page {page} out of bounds")))?;
        self.stats.record_logical_read();
        Ok(buf)
    }

    fn write_page(&self, page: PageId, data: &[u8]) -> IrResult<()> {
        if data.len() != PAGE_SIZE {
            return Err(IrError::Storage(format!(
                "write_page expects {PAGE_SIZE} bytes, got {}",
                data.len()
            )));
        }
        let mut pages = self.pages.lock();
        let slot = pages
            .get_mut(page.index())
            .ok_or_else(|| IrError::Storage(format!("page {page} out of bounds")))?;
        slot.copy_from_slice(data);
        self.stats.record_write();
        Ok(())
    }

    fn io_snapshot(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_io_stats(&self) {
        self.stats.reset();
    }
}

/// File-backed page store: one flat file, page `i` at byte offset
/// `i * PAGE_SIZE`.
///
/// Reads and writes are *positioned* (`read_at`/`write_at`): no shared file
/// cursor exists, so concurrent readers never serialize on a lock and every
/// page miss costs exactly one read syscall — down from the two (seek, then
/// read) the original cursor-based path paid. The saving shows up in the
/// store's [`IoStatsSnapshot::read_syscalls`], which stays equal to its
/// `logical_reads` instead of double.
pub struct FilePageStore {
    file: File,
    num_pages: Mutex<u32>,
    stats: ShardedIoStats,
}

impl FilePageStore {
    /// Creates (or truncates) a page file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> IrResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FilePageStore {
            file,
            num_pages: Mutex::new(0),
            stats: ShardedIoStats::new(),
        })
    }

    /// Opens an existing page file.
    pub fn open<P: AsRef<Path>>(path: P) -> IrResult<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(IrError::Storage(format!(
                "page file has length {len}, not a multiple of the page size"
            )));
        }
        Ok(FilePageStore {
            file,
            num_pages: Mutex::new((len / PAGE_SIZE as u64) as u32),
            stats: ShardedIoStats::new(),
        })
    }
}

impl PageStore for FilePageStore {
    fn num_pages(&self) -> u32 {
        *self.num_pages.lock()
    }

    fn allocate(&self, count: u32) -> IrResult<PageId> {
        let mut num = self.num_pages.lock();
        let first = *num;
        let zeros = zeroed_page();
        for i in 0..count {
            write_all_at(&self.file, &zeros, (first + i) as u64 * PAGE_SIZE as u64)?;
        }
        *num += count;
        Ok(PageId(first))
    }

    fn read_page(&self, page: PageId) -> IrResult<PageBuf> {
        if page.0 >= self.num_pages() {
            return Err(IrError::Storage(format!("page {page} out of bounds")));
        }
        let mut buf = zeroed_page();
        read_exact_at(&self.file, &mut buf, page.0 as u64 * PAGE_SIZE as u64)?;
        self.stats.record_logical_read();
        self.stats.record_read_syscall();
        Ok(buf)
    }

    fn write_page(&self, page: PageId, data: &[u8]) -> IrResult<()> {
        if data.len() != PAGE_SIZE {
            return Err(IrError::Storage(format!(
                "write_page expects {PAGE_SIZE} bytes, got {}",
                data.len()
            )));
        }
        if page.0 >= self.num_pages() {
            return Err(IrError::Storage(format!("page {page} out of bounds")));
        }
        write_all_at(&self.file, data, page.0 as u64 * PAGE_SIZE as u64)?;
        self.stats.record_write();
        Ok(())
    }

    fn io_snapshot(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_io_stats(&self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_store(store: &dyn PageStore) {
        assert_eq!(store.num_pages(), 0);
        let first = store.allocate(3).unwrap();
        assert_eq!(first, PageId(0));
        assert_eq!(store.num_pages(), 3);

        let mut page = zeroed_page();
        page[0] = 42;
        page[PAGE_SIZE - 1] = 7;
        store.write_page(PageId(1), &page).unwrap();

        let read = store.read_page(PageId(1)).unwrap();
        assert_eq!(read[0], 42);
        assert_eq!(read[PAGE_SIZE - 1], 7);

        let untouched = store.read_page(PageId(2)).unwrap();
        assert!(untouched.iter().all(|&b| b == 0));

        assert!(store.read_page(PageId(9)).is_err());
        assert!(store.write_page(PageId(9), &page).is_err());
        assert!(store.write_page(PageId(0), &[1, 2, 3]).is_err());

        let next = store.allocate(1).unwrap();
        assert_eq!(next, PageId(3));
    }

    #[test]
    fn mem_store_roundtrip() {
        exercise_store(&MemPageStore::new());
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("pages.bin");
        exercise_store(&FilePageStore::create(&path).unwrap());
    }

    #[test]
    fn file_store_reopen_preserves_pages() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("pages.bin");
        {
            let store = FilePageStore::create(&path).unwrap();
            store.allocate(2).unwrap();
            let mut page = zeroed_page();
            page[10] = 99;
            store.write_page(PageId(1), &page).unwrap();
        }
        let reopened = FilePageStore::open(&path).unwrap();
        assert_eq!(reopened.num_pages(), 2);
        assert_eq!(reopened.read_page(PageId(1)).unwrap()[10], 99);
    }

    #[test]
    fn open_rejects_truncated_file() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("broken.bin");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(FilePageStore::open(&path).is_err());
    }

    #[test]
    fn file_store_reads_cost_one_syscall_each() {
        let dir = tempfile::tempdir().unwrap();
        let store = FilePageStore::create(dir.path().join("pages.bin")).unwrap();
        store.allocate(4).unwrap();
        for i in 0..4 {
            store.read_page(PageId(i)).unwrap();
        }
        let snap = store.io_snapshot();
        assert_eq!(snap.logical_reads, 4);
        assert_eq!(
            snap.read_syscalls, 4,
            "positioned reads: exactly one syscall per page, not a seek+read pair"
        );
        store.reset_io_stats();
        assert_eq!(store.io_snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn mem_store_reads_cost_no_syscalls() {
        let store = MemPageStore::new();
        store.allocate(2).unwrap();
        store.read_page(PageId(0)).unwrap();
        store.read_page(PageId(1)).unwrap();
        let snap = store.io_snapshot();
        assert_eq!(snap.logical_reads, 2);
        assert_eq!(snap.read_syscalls, 0);
    }

    #[test]
    fn failed_reads_are_not_counted() {
        let store = MemPageStore::new();
        assert!(store.read_page(PageId(5)).is_err());
        assert_eq!(store.io_snapshot().logical_reads, 0);
    }
}
