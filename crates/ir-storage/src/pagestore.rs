//! Page stores: the "disk" abstraction underneath the buffer pool.
//!
//! Two implementations are provided:
//!
//! * [`MemPageStore`] — pages live in memory. This is the default backend for
//!   experiments; physical reads are still counted by the buffer pool, so the
//!   simulated I/O cost model of Section 7 applies unchanged, while the
//!   actual runtime reflects the *"alternative setting where the dataset and
//!   inverted lists are cached in main memory"* that the paper mentions in
//!   its CPU discussion.
//! * [`FilePageStore`] — pages live in a real file accessed with seeks; used
//!   by the disk-resident configuration and by the storage round-trip tests.

use crate::page::{zeroed_page, PageBuf, PageId, PAGE_SIZE};
use ir_types::{IrError, IrResult};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Abstraction over a flat, page-addressed storage device.
pub trait PageStore: Send + Sync {
    /// Number of allocated pages.
    fn num_pages(&self) -> u32;

    /// Allocates `count` fresh zeroed pages and returns the id of the first.
    fn allocate(&self, count: u32) -> IrResult<PageId>;

    /// Reads a full page into a new buffer.
    fn read_page(&self, page: PageId) -> IrResult<PageBuf>;

    /// Overwrites a full page.
    fn write_page(&self, page: PageId, data: &[u8]) -> IrResult<()>;
}

/// In-memory page store.
#[derive(Default)]
pub struct MemPageStore {
    pages: Mutex<Vec<PageBuf>>,
}

impl MemPageStore {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemPageStore {
    fn num_pages(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    fn allocate(&self, count: u32) -> IrResult<PageId> {
        let mut pages = self.pages.lock();
        let first = pages.len() as u32;
        for _ in 0..count {
            pages.push(zeroed_page());
        }
        Ok(PageId(first))
    }

    fn read_page(&self, page: PageId) -> IrResult<PageBuf> {
        let pages = self.pages.lock();
        pages
            .get(page.index())
            .cloned()
            .ok_or_else(|| IrError::Storage(format!("page {page} out of bounds")))
    }

    fn write_page(&self, page: PageId, data: &[u8]) -> IrResult<()> {
        if data.len() != PAGE_SIZE {
            return Err(IrError::Storage(format!(
                "write_page expects {PAGE_SIZE} bytes, got {}",
                data.len()
            )));
        }
        let mut pages = self.pages.lock();
        let slot = pages
            .get_mut(page.index())
            .ok_or_else(|| IrError::Storage(format!("page {page} out of bounds")))?;
        slot.copy_from_slice(data);
        Ok(())
    }
}

/// File-backed page store: one flat file, page `i` at byte offset
/// `i * PAGE_SIZE`.
pub struct FilePageStore {
    file: Mutex<File>,
    num_pages: Mutex<u32>,
}

impl FilePageStore {
    /// Creates (or truncates) a page file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> IrResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FilePageStore {
            file: Mutex::new(file),
            num_pages: Mutex::new(0),
        })
    }

    /// Opens an existing page file.
    pub fn open<P: AsRef<Path>>(path: P) -> IrResult<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(IrError::Storage(format!(
                "page file has length {len}, not a multiple of the page size"
            )));
        }
        Ok(FilePageStore {
            file: Mutex::new(file),
            num_pages: Mutex::new((len / PAGE_SIZE as u64) as u32),
        })
    }
}

impl PageStore for FilePageStore {
    fn num_pages(&self) -> u32 {
        *self.num_pages.lock()
    }

    fn allocate(&self, count: u32) -> IrResult<PageId> {
        let mut num = self.num_pages.lock();
        let first = *num;
        let mut file = self.file.lock();
        let zeros = zeroed_page();
        file.seek(SeekFrom::Start(first as u64 * PAGE_SIZE as u64))?;
        for _ in 0..count {
            file.write_all(&zeros)?;
        }
        *num += count;
        Ok(PageId(first))
    }

    fn read_page(&self, page: PageId) -> IrResult<PageBuf> {
        if page.0 >= self.num_pages() {
            return Err(IrError::Storage(format!("page {page} out of bounds")));
        }
        let mut buf = zeroed_page();
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(page.0 as u64 * PAGE_SIZE as u64))?;
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn write_page(&self, page: PageId, data: &[u8]) -> IrResult<()> {
        if data.len() != PAGE_SIZE {
            return Err(IrError::Storage(format!(
                "write_page expects {PAGE_SIZE} bytes, got {}",
                data.len()
            )));
        }
        if page.0 >= self.num_pages() {
            return Err(IrError::Storage(format!("page {page} out of bounds")));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(page.0 as u64 * PAGE_SIZE as u64))?;
        file.write_all(data)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_store(store: &dyn PageStore) {
        assert_eq!(store.num_pages(), 0);
        let first = store.allocate(3).unwrap();
        assert_eq!(first, PageId(0));
        assert_eq!(store.num_pages(), 3);

        let mut page = zeroed_page();
        page[0] = 42;
        page[PAGE_SIZE - 1] = 7;
        store.write_page(PageId(1), &page).unwrap();

        let read = store.read_page(PageId(1)).unwrap();
        assert_eq!(read[0], 42);
        assert_eq!(read[PAGE_SIZE - 1], 7);

        let untouched = store.read_page(PageId(2)).unwrap();
        assert!(untouched.iter().all(|&b| b == 0));

        assert!(store.read_page(PageId(9)).is_err());
        assert!(store.write_page(PageId(9), &page).is_err());
        assert!(store.write_page(PageId(0), &[1, 2, 3]).is_err());

        let next = store.allocate(1).unwrap();
        assert_eq!(next, PageId(3));
    }

    #[test]
    fn mem_store_roundtrip() {
        exercise_store(&MemPageStore::new());
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("pages.bin");
        exercise_store(&FilePageStore::create(&path).unwrap());
    }

    #[test]
    fn file_store_reopen_preserves_pages() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("pages.bin");
        {
            let store = FilePageStore::create(&path).unwrap();
            store.allocate(2).unwrap();
            let mut page = zeroed_page();
            page[10] = 99;
            store.write_page(PageId(1), &page).unwrap();
        }
        let reopened = FilePageStore::open(&path).unwrap();
        assert_eq!(reopened.num_pages(), 2);
        assert_eq!(reopened.read_page(PageId(1)).unwrap()[10], 99);
    }

    #[test]
    fn open_rejects_truncated_file() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("broken.bin");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(FilePageStore::open(&path).is_err());
    }
}
