//! Deterministic fault injection: [`FaultInjectingPageStore`] wraps any
//! [`PageStore`] and misbehaves exactly where a [`FaultPlan`] says to.
//!
//! The plan is *seeded and serializable*: a chaos run is reproducible from
//! its JSON plan alone (the ir-bench runners accept one via `--fault-plan`),
//! and every fault fires at a deterministic operation index rather than at a
//! random wall-clock moment. Faults are injected *underneath* the buffer
//! pool, so the layers above see exactly what a flaky disk would produce:
//!
//! * **Transient faults** — scheduled read/write ops fail once with a
//!   retryable `io::ErrorKind::Interrupted`; the pool's `RetryPolicy`
//!   re-issues the op (bumping the retry counters) and the computation's
//!   output is byte-identical to a fault-free run.
//! * **Device outage** — every read in `[fail_reads_from_op,
//!   fail_reads_until_op)` fails with a *permanent* storage error the
//!   retry policy refuses to retry; an open-ended window (`until = None`)
//!   models a dead device.
//! * **Corruption** — at a scheduled op the stored bytes are XOR-damaged
//!   *before* the read and restored after it (one-shot bit rot): the
//!   checksum layer turns the read into [`ir_types::IrError::Corruption`]
//!   and the very next access sees healthy bytes again.
//! * **Worker panic** — a scheduled read panics mid-job, exercising the
//!   driver's `catch_unwind` containment.
//! * **Latency** — a fixed per-read delay for timing-robustness tests.
//!
//! The wrapper starts *disarmed* (fully transparent) so an index can be
//! built on it fault-free; [`FaultInjectingPageStore::arm`] zeroes the op
//! counters and starts the schedule at query time.

use crate::page::{PageBuf, PageId};
use crate::pagestore::PageStore;
use crate::stats::IoStatsSnapshot;
use ir_types::rng::SeededLcg;
use ir_types::{IrError, IrResult};
use serde::{Deserialize, Serialize};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One scheduled bit-rot event: at read op `op`, XOR `xor_mask` into the
/// stored byte at `byte_offset` of whatever page that op targets, then
/// restore it after the read (XOR is self-inverse).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorruptionSpec {
    /// The read-op index at which the corruption strikes.
    pub op: u64,
    /// Byte offset inside the page payload to damage.
    pub byte_offset: u32,
    /// The mask XORed into the stored byte (must be non-zero to have any
    /// effect).
    pub xor_mask: u8,
}

/// A serializable schedule of storage faults, all keyed by *operation
/// index* (reads and writes counted separately, starting at 0 when the
/// wrapper is armed).
///
/// The default plan is empty: a `FaultInjectingPageStore` driven by it is
/// fully transparent.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed recorded with the plan. Stamped into emitted fault plans and
    /// used by the schedule-generating constructors; replaying a serialized
    /// plan never re-derives anything from it.
    pub seed: u64,
    /// Read ops that fail once with a retryable `Interrupted` error.
    pub transient_read_ops: Vec<u64>,
    /// Write ops that fail once with a retryable `Interrupted` error.
    pub transient_write_ops: Vec<u64>,
    /// First read op of a permanent outage window (`None`: no outage).
    pub fail_reads_from_op: Option<u64>,
    /// First read op *after* the outage window (`None` with a `from` set:
    /// the device never comes back).
    pub fail_reads_until_op: Option<u64>,
    /// One-shot bit-rot events, keyed by read op.
    pub corruptions: Vec<CorruptionSpec>,
    /// Read ops that panic instead of returning, simulating a worker bug.
    pub panic_read_ops: Vec<u64>,
    /// Fixed delay added to every read, in microseconds.
    pub read_latency_micros: u64,
}

impl FaultPlan {
    /// A plan that fails `count` reads transiently at pseudo-random ops in
    /// `[0, max_op)`, derived deterministically from `seed`.
    pub fn transient_reads(seed: u64, count: usize, max_op: u64) -> FaultPlan {
        let mut ops = Vec::with_capacity(count);
        // The shared workspace LCG, in its raw-state scatter convention —
        // the draw sequence is part of the serialized-plan contract.
        let mut lcg = SeededLcg::scatter(seed);
        while ops.len() < count && max_op > 0 {
            let op = lcg.next_state() % max_op;
            if !ops.contains(&op) {
                ops.push(op);
            }
        }
        ops.sort_unstable();
        FaultPlan {
            seed,
            transient_read_ops: ops,
            ..FaultPlan::default()
        }
    }

    /// A plan with a permanent read outage over `[from, until)` ops
    /// (`until = None` for a device that never recovers).
    pub fn device_outage(from: u64, until: Option<u64>) -> FaultPlan {
        FaultPlan {
            fail_reads_from_op: Some(from),
            fail_reads_until_op: until,
            ..FaultPlan::default()
        }
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.transient_read_ops.is_empty()
            && self.transient_write_ops.is_empty()
            && self.fail_reads_from_op.is_none()
            && self.corruptions.is_empty()
            && self.panic_read_ops.is_empty()
            && self.read_latency_micros == 0
    }
}

/// A [`PageStore`] wrapper that executes a [`FaultPlan`] — see the module
/// docs for the fault taxonomy.
///
/// All counters are atomics: concurrent readers draw distinct op indices,
/// so a plan fires each fault exactly once regardless of thread
/// interleaving (which op a given *thread* draws is scheduling-dependent,
/// but the multiset of injected faults is not).
pub struct FaultInjectingPageStore {
    inner: Arc<dyn PageStore>,
    plan: FaultPlan,
    armed: AtomicBool,
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    injected_read_faults: AtomicU64,
    injected_write_faults: AtomicU64,
}

impl FaultInjectingPageStore {
    /// Wraps `inner`, initially *disarmed*: every operation passes through
    /// untouched until [`Self::arm`] starts the schedule.
    pub fn new(inner: Arc<dyn PageStore>, plan: FaultPlan) -> Arc<FaultInjectingPageStore> {
        Arc::new(FaultInjectingPageStore {
            inner,
            plan,
            armed: AtomicBool::new(false),
            read_ops: AtomicU64::new(0),
            write_ops: AtomicU64::new(0),
            injected_read_faults: AtomicU64::new(0),
            injected_write_faults: AtomicU64::new(0),
        })
    }

    /// Zeroes the op counters and starts executing the plan.
    pub fn arm(&self) {
        self.read_ops.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
        self.armed.store(true, Ordering::Release);
    }

    /// Stops injecting (op counters keep their values).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
    }

    /// Whether the plan is currently being executed.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// The plan this wrapper executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far: `(reads, writes)`.
    pub fn injected_faults(&self) -> (u64, u64) {
        (
            self.injected_read_faults.load(Ordering::Relaxed),
            self.injected_write_faults.load(Ordering::Relaxed),
        )
    }

    fn in_outage(&self, op: u64) -> bool {
        match (self.plan.fail_reads_from_op, self.plan.fail_reads_until_op) {
            (Some(from), Some(until)) => op >= from && op < until,
            (Some(from), None) => op >= from,
            (None, _) => false,
        }
    }
}

impl PageStore for FaultInjectingPageStore {
    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn allocate(&self, count: u32) -> IrResult<PageId> {
        self.inner.allocate(count)
    }

    fn read_page(&self, page: PageId) -> IrResult<PageBuf> {
        if !self.is_armed() {
            return self.inner.read_page(page);
        }
        let op = self.read_ops.fetch_add(1, Ordering::Relaxed);
        if self.plan.read_latency_micros > 0 {
            std::thread::sleep(Duration::from_micros(self.plan.read_latency_micros));
        }
        if self.plan.panic_read_ops.contains(&op) {
            panic!("injected fault: worker panic at read op {op}");
        }
        if self.in_outage(op) {
            self.injected_read_faults.fetch_add(1, Ordering::Relaxed);
            return Err(IrError::Storage(format!(
                "injected device failure: read op {op} is inside the outage window"
            )));
        }
        if self.plan.transient_read_ops.contains(&op) {
            self.injected_read_faults.fetch_add(1, Ordering::Relaxed);
            return Err(IrError::Io(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient read fault at op {op}"),
            )));
        }
        if let Some(spec) = self.plan.corruptions.iter().find(|c| c.op == op) {
            self.injected_read_faults.fetch_add(1, Ordering::Relaxed);
            // One-shot bit rot: damage the stored byte, let the read trip
            // over the checksum, then heal the byte so the next access
            // succeeds (XOR is self-inverse).
            self.inner
                .corrupt_stored_byte(page, spec.byte_offset as usize, spec.xor_mask)?;
            let result = self.inner.read_page(page);
            self.inner
                .corrupt_stored_byte(page, spec.byte_offset as usize, spec.xor_mask)?;
            return result;
        }
        self.inner.read_page(page)
    }

    fn write_page(&self, page: PageId, data: &[u8]) -> IrResult<()> {
        if !self.is_armed() {
            return self.inner.write_page(page, data);
        }
        let op = self.write_ops.fetch_add(1, Ordering::Relaxed);
        if self.plan.transient_write_ops.contains(&op) {
            self.injected_write_faults.fetch_add(1, Ordering::Relaxed);
            return Err(IrError::Io(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient write fault at op {op}"),
            )));
        }
        self.inner.write_page(page, data)
    }

    fn io_snapshot(&self) -> IoStatsSnapshot {
        self.inner.io_snapshot()
    }

    fn reset_io_stats(&self) {
        self.inner.reset_io_stats();
    }

    fn corrupt_stored_byte(&self, page: PageId, offset: usize, mask: u8) -> IrResult<()> {
        self.inner.corrupt_stored_byte(page, offset, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{zeroed_page, PAGE_SIZE};
    use crate::pagestore::MemPageStore;

    fn store_with_pages(plan: FaultPlan) -> Arc<FaultInjectingPageStore> {
        let inner = Arc::new(MemPageStore::new());
        inner.allocate(4).unwrap();
        let mut page = zeroed_page();
        page[0] = 9;
        inner.write_page(PageId(2), &page).unwrap();
        FaultInjectingPageStore::new(inner, plan)
    }

    #[test]
    fn disarmed_wrapper_is_transparent() {
        let store = store_with_pages(FaultPlan::transient_reads(7, 100, 100));
        for _ in 0..50 {
            assert_eq!(store.read_page(PageId(2)).unwrap()[0], 9);
        }
        assert_eq!(store.injected_faults(), (0, 0));
    }

    #[test]
    fn transient_read_ops_fail_exactly_on_schedule() {
        let plan = FaultPlan {
            transient_read_ops: vec![1, 3],
            ..FaultPlan::default()
        };
        let store = store_with_pages(plan);
        store.arm();
        assert!(store.read_page(PageId(0)).is_ok()); // op 0
        let err = store.read_page(PageId(0)).unwrap_err(); // op 1
        assert!(
            err.is_transient(),
            "injected fault must be retryable: {err}"
        );
        assert!(err.to_string().contains("op 1"), "{err}");
        assert!(store.read_page(PageId(0)).is_ok()); // op 2
        assert!(store.read_page(PageId(0)).is_err()); // op 3
        assert!(store.read_page(PageId(0)).is_ok()); // op 4
        assert_eq!(store.injected_faults(), (2, 0));
    }

    #[test]
    fn outage_window_is_permanent_and_bounded() {
        let store = store_with_pages(FaultPlan::device_outage(1, Some(3)));
        store.arm();
        assert!(store.read_page(PageId(0)).is_ok()); // op 0
        for op in 1..3 {
            let err = store.read_page(PageId(0)).unwrap_err();
            assert!(!err.is_transient(), "outage op {op} must not be retryable");
            assert!(err.to_string().contains("injected device failure"));
        }
        assert!(store.read_page(PageId(0)).is_ok()); // op 3: recovered
                                                     // An open-ended outage never recovers.
        let dead = store_with_pages(FaultPlan::device_outage(0, None));
        dead.arm();
        for _ in 0..10 {
            assert!(dead.read_page(PageId(0)).is_err());
        }
    }

    #[test]
    fn corruption_is_one_shot() {
        let plan = FaultPlan {
            corruptions: vec![CorruptionSpec {
                op: 0,
                byte_offset: 0,
                xor_mask: 0x55,
            }],
            ..FaultPlan::default()
        };
        let store = store_with_pages(plan);
        store.arm();
        let err = store.read_page(PageId(2)).unwrap_err(); // op 0
        assert!(
            matches!(err, IrError::Corruption { page: Some(2), .. }),
            "expected checksum failure, got: {err}"
        );
        // The rot healed: the very next read returns the original bytes.
        assert_eq!(store.read_page(PageId(2)).unwrap()[0], 9);
    }

    #[test]
    fn panic_ops_panic_with_a_recognizable_payload() {
        let plan = FaultPlan {
            panic_read_ops: vec![0],
            ..FaultPlan::default()
        };
        let store = store_with_pages(plan);
        store.arm();
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.read_page(PageId(0))))
                .unwrap_err();
        let message = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("injected fault"), "{message}");
        // The wrapper itself stays usable after the unwind.
        assert!(store.read_page(PageId(0)).is_ok());
    }

    #[test]
    fn arm_resets_op_counters() {
        let plan = FaultPlan {
            transient_read_ops: vec![0],
            ..FaultPlan::default()
        };
        let store = store_with_pages(plan);
        store.arm();
        assert!(store.read_page(PageId(0)).is_err()); // op 0 fires
        assert!(store.read_page(PageId(0)).is_ok());
        store.arm(); // restart the schedule
        assert!(store.read_page(PageId(0)).is_err(), "op 0 fires again");
    }

    #[test]
    fn seeded_constructor_is_deterministic_and_in_range() {
        let a = FaultPlan::transient_reads(42, 10, 1000);
        let b = FaultPlan::transient_reads(42, 10, 1000);
        assert_eq!(a, b);
        assert_eq!(a.transient_read_ops.len(), 10);
        assert!(a.transient_read_ops.iter().all(|&op| op < 1000));
        let c = FaultPlan::transient_reads(43, 10, 1000);
        assert_ne!(a, c, "different seeds give different schedules");
        assert!(!a.is_empty());
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn fault_plan_roundtrips_through_json() {
        let plan = FaultPlan {
            seed: 7,
            transient_read_ops: vec![3, 9],
            transient_write_ops: vec![1],
            fail_reads_from_op: Some(50),
            fail_reads_until_op: None,
            corruptions: vec![CorruptionSpec {
                op: 4,
                byte_offset: 123,
                xor_mask: 0xFF,
            }],
            panic_read_ops: vec![],
            read_latency_micros: 250,
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn corrupt_offset_bounds_are_enforced_through_the_wrapper() {
        let store = store_with_pages(FaultPlan::default());
        assert!(store.corrupt_stored_byte(PageId(0), PAGE_SIZE, 1).is_err());
        assert!(store.corrupt_stored_byte(PageId(0), 0, 1).is_ok());
        assert!(store.corrupt_stored_byte(PageId(0), 0, 1).is_ok());
        assert!(store.read_page(PageId(0)).is_ok(), "double XOR healed it");
    }
}
