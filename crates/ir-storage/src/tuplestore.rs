//! The external tuple file: random access to full tuple vectors.
//!
//! TA's *random access* fetches the complete vector of a tuple first seen in
//! one inverted list, in order to compute its full score. The paper stores
//! the vectors in "an external file that contains the entire `d_α` tuple";
//! this module serialises each sparse tuple into a byte-addressed region of
//! pages and reads it back through the buffer pool.

use crate::buffer::BufferPool;
use crate::page::{codec, zeroed_page, PageId, PAGE_SIZE};
use ir_types::{Dataset, IrError, IrResult, SparseVector, TupleId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Bytes used per non-zero coordinate (`u32` dim + `f64` value).
pub const COORD_BYTES: usize = 12;

/// Directory record locating one tuple inside the tuple region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TupleDirectoryEntry {
    /// Byte offset of the record from the start of the tuple region.
    pub offset: u64,
    /// Number of non-zero coordinates in the record.
    pub nnz: u32,
}

impl TupleDirectoryEntry {
    /// Length of the serialized record in bytes.
    pub fn byte_len(&self) -> usize {
        self.nnz as usize * COORD_BYTES
    }
}

/// The serialized tuple region: contiguous pages plus an in-memory directory.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TupleRegion {
    /// First page of the region.
    pub first_page: PageId,
    /// Number of pages in the region.
    pub num_pages: u32,
    /// Per-tuple directory, indexed by tuple id.
    pub directory: Vec<TupleDirectoryEntry>,
}

/// Serialises every tuple of the dataset into freshly allocated pages.
pub fn write_tuples(pool: &BufferPool, dataset: &Dataset) -> IrResult<TupleRegion> {
    let mut directory = Vec::with_capacity(dataset.cardinality());
    let mut offset = 0u64;
    for (_, tuple) in dataset.iter() {
        directory.push(TupleDirectoryEntry {
            offset,
            nnz: tuple.nnz() as u32,
        });
        offset += (tuple.nnz() * COORD_BYTES) as u64;
    }
    let total_bytes = offset as usize;
    let num_pages = total_bytes.div_ceil(PAGE_SIZE).max(1) as u32;
    let first_page = pool.allocate(num_pages)?;

    // Serialise every record into one contiguous byte stream, then cut the
    // stream into pages. Records may therefore span page boundaries, exactly
    // like a heap file would lay them out.
    let mut bytes = Vec::with_capacity(total_bytes);
    let mut coord_buf = [0u8; COORD_BYTES];
    for (_, tuple) in dataset.iter() {
        for (dim, value) in tuple.iter() {
            codec::put_u32(&mut coord_buf, 0, dim.0);
            codec::put_f64(&mut coord_buf, 4, value);
            bytes.extend_from_slice(&coord_buf);
        }
    }
    debug_assert_eq!(bytes.len(), total_bytes);

    for page_idx in 0..num_pages {
        let start = page_idx as usize * PAGE_SIZE;
        let end = (start + PAGE_SIZE).min(bytes.len());
        let mut page = zeroed_page();
        if start < bytes.len() {
            page[..end - start].copy_from_slice(&bytes[start..end]);
        }
        pool.write(PageId(first_page.0 + page_idx), &page)?;
    }

    Ok(TupleRegion {
        first_page,
        num_pages,
        directory,
    })
}

/// Serialises one tuple into its on-disk record bytes (`u32` dim + `f64`
/// value per non-zero coordinate, dimension-ascending) — the exact layout
/// [`write_tuples`] produces, shared with the maintenance append path.
pub(crate) fn encode_record(tuple: &SparseVector) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(tuple.nnz() * COORD_BYTES);
    let mut coord_buf = [0u8; COORD_BYTES];
    for (dim, value) in tuple.iter() {
        codec::put_u32(&mut coord_buf, 0, dim.0);
        codec::put_f64(&mut coord_buf, 4, value);
        bytes.extend_from_slice(&coord_buf);
    }
    bytes
}

/// Fetches one tuple out of `region` without materialising a reader — the
/// borrow-friendly twin of [`TupleReader::fetch`] used by the maintenance
/// path, whose region mutates between fetches.
pub(crate) fn read_tuple(
    pool: &BufferPool,
    region: &TupleRegion,
    id: TupleId,
) -> IrResult<SparseVector> {
    let entry = region
        .directory
        .get(id.index())
        .ok_or(IrError::UnknownTuple { tuple: id.0 })?;
    let bytes = read_region_bytes(pool, region, entry.offset, entry.byte_len())?;
    let mut pairs = Vec::with_capacity(entry.nnz as usize);
    for i in 0..entry.nnz as usize {
        let off = i * COORD_BYTES;
        pairs.push((codec::get_u32(&bytes, off), codec::get_f64(&bytes, off + 4)));
    }
    SparseVector::from_pairs(pairs)
}

/// Reads `len` bytes starting at region-relative byte `offset`, possibly
/// spanning multiple pages.
fn read_region_bytes(
    pool: &BufferPool,
    region: &TupleRegion,
    offset: u64,
    len: usize,
) -> IrResult<Vec<u8>> {
    let mut out = Vec::with_capacity(len);
    let mut remaining = len;
    let mut pos = offset as usize;
    while remaining > 0 {
        let page_idx = pos / PAGE_SIZE;
        let in_page = pos % PAGE_SIZE;
        if page_idx as u32 >= region.num_pages {
            return Err(IrError::Storage(
                "tuple record extends past the tuple region".to_string(),
            ));
        }
        let page = pool.read(PageId(region.first_page.0 + page_idx as u32))?;
        let take = (PAGE_SIZE - in_page).min(remaining);
        out.extend_from_slice(&page[in_page..in_page + take]);
        pos += take;
        remaining -= take;
    }
    Ok(out)
}

/// Writes `bytes` at region-relative byte `offset` with read-modify-write
/// at page granularity — the maintenance path's in-place overwrite and
/// append primitive. The caller guarantees the touched pages are already
/// allocated (the region's capacity run covers them); `region.num_pages`
/// is *not* consulted, because an append legitimately writes past the
/// current end of the region into its capacity slack.
pub(crate) fn write_region_bytes(
    pool: &BufferPool,
    region: &TupleRegion,
    offset: u64,
    bytes: &[u8],
) -> IrResult<()> {
    let mut written = 0usize;
    let mut pos = offset as usize;
    while written < bytes.len() {
        let page_idx = pos / PAGE_SIZE;
        let in_page = pos % PAGE_SIZE;
        let take = (PAGE_SIZE - in_page).min(bytes.len() - written);
        let page_id = PageId(region.first_page.0 + page_idx as u32);
        let mut page = pool.read(page_id)?.as_ref().clone();
        page[in_page..in_page + take].copy_from_slice(&bytes[written..written + take]);
        pool.write(page_id, &page)?;
        pos += take;
        written += take;
    }
    Ok(())
}

/// Random-access reader over a [`TupleRegion`].
pub struct TupleReader {
    pool: Arc<BufferPool>,
    region: TupleRegion,
}

impl TupleReader {
    /// Creates a reader.
    pub fn new(pool: Arc<BufferPool>, region: TupleRegion) -> Self {
        TupleReader { pool, region }
    }

    /// Number of tuples stored.
    pub fn cardinality(&self) -> usize {
        self.region.directory.len()
    }

    /// The region metadata.
    pub fn region(&self) -> &TupleRegion {
        &self.region
    }

    /// Fetches the full sparse vector of a tuple (TA's random access).
    pub fn fetch(&self, id: TupleId) -> IrResult<SparseVector> {
        read_tuple(&self.pool, &self.region, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagestore::MemPageStore;
    use ir_types::DatasetBuilder;

    fn make_pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemPageStore::new())))
    }

    #[test]
    fn roundtrip_running_example() {
        let pool = make_pool();
        let dataset = Dataset::running_example();
        let region = write_tuples(&pool, &dataset).unwrap();
        let reader = TupleReader::new(Arc::clone(&pool), region);
        assert_eq!(reader.cardinality(), 4);
        for (id, tuple) in dataset.iter() {
            assert_eq!(&reader.fetch(id).unwrap(), tuple);
        }
        assert!(reader.fetch(TupleId(10)).is_err());
    }

    #[test]
    fn records_spanning_pages_are_reassembled() {
        // Build tuples whose records are larger than a page (nnz > 341).
        let dims = 2048u32;
        let mut builder = DatasetBuilder::new(dims);
        for t in 0..3u32 {
            let pairs: Vec<(u32, f64)> = (0..600)
                .map(|d| (d, ((t + d) % 97 + 1) as f64 / 100.0))
                .collect();
            builder.push_pairs(pairs).unwrap();
        }
        let dataset = builder.build();
        let pool = make_pool();
        let region = write_tuples(&pool, &dataset).unwrap();
        assert!(region.num_pages >= 2);
        let reader = TupleReader::new(Arc::clone(&pool), region);
        for (id, tuple) in dataset.iter() {
            assert_eq!(&reader.fetch(id).unwrap(), tuple);
        }
    }

    #[test]
    fn empty_tuples_are_supported() {
        let mut builder = DatasetBuilder::new(4);
        builder.push_pairs([] as [(u32, f64); 0]).unwrap();
        builder.push_pairs([(1, 0.5)]).unwrap();
        let dataset = builder.build();
        let pool = make_pool();
        let region = write_tuples(&pool, &dataset).unwrap();
        let reader = TupleReader::new(pool, region);
        assert_eq!(reader.fetch(TupleId(0)).unwrap().nnz(), 0);
        assert_eq!(reader.fetch(TupleId(1)).unwrap().nnz(), 1);
    }

    #[test]
    fn random_access_is_counted_as_io() {
        let pool = make_pool();
        let dataset = Dataset::running_example();
        let region = write_tuples(&pool, &dataset).unwrap();
        let reader = TupleReader::new(Arc::clone(&pool), region);
        pool.clear_cache();
        pool.reset_io_stats();
        reader.fetch(TupleId(2)).unwrap();
        let snap = pool.io_snapshot();
        assert!(snap.logical_reads >= 1);
        assert!(snap.physical_reads >= 1);
    }
}
