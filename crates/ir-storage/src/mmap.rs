//! [`MmapPageStore`]: a memory-mapped, read-mostly page store (the `mmap`
//! cargo feature).
//!
//! The file is mapped `PROT_READ`/`MAP_SHARED`, so a page miss in the buffer
//! pool costs a memory copy out of the mapping — at worst a soft page fault
//! serviced by the OS page cache — instead of a read syscall. That removes
//! the per-miss syscall the [`FilePageStore`](crate::pagestore::FilePageStore)
//! pays, which the PR-3 parallel driver made the dominant cost of the
//! disk-resident read path. Writes go through positioned `write` syscalls on
//! the same descriptor; on every OS with a unified page cache (Linux, the
//! BSDs, macOS) `MAP_SHARED` mappings are coherent with file writes, so a
//! written page is immediately visible to subsequent mapped reads.
//!
//! # Unsafe policy
//!
//! This module is the **only** place in the workspace where `unsafe` exists,
//! and only when the `mmap` feature is enabled: the default build keeps
//! `#![forbid(unsafe_code)]` in force (asserted by the CI feature matrix).
//! All raw-pointer handling is confined to the private `sys` submodule —
//! the rest of the module (and everything above it) deals only in safe
//! bounds-checked copies. The build environment vendors no `libc`/`memmap2`
//! crate, so the two required syscalls are declared directly.
//!
//! # Accounting
//!
//! The store keeps a [`ShardedIoStats`]: every `read_page` records one
//! *page-fault-equivalent* logical read (the mmap analogue of a device
//! read — deterministic, so backend runs stay comparable in `bench_diff`),
//! and each `mmap(2)` (re)establishment records one read syscall. The
//! buffer-pool counters above the store are untouched by the backend choice.

// 64-bit only: the hand-declared `mmap` prototype below passes `offset` as
// i64, which matches the C ABI only where off_t is 64-bit; on 32-bit
// targets the argument registers would be misread at runtime.
#[cfg(not(all(unix, target_pointer_width = "64")))]
compile_error!("the `mmap` cargo feature requires a 64-bit Unix target");

use crate::page::{frame, PageBuf, PageId, PAGE_SIZE};
use crate::pagestore::{
    check_corrupt_offset, check_write_len, out_of_bounds, read_exact_at, write_all_at, PageStore,
};
use crate::stats::{IoStatsSnapshot, ShardedIoStats};
use ir_types::{IrError, IrResult};
use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::path::Path;

/// The raw mapping: every `unsafe` block of the workspace lives in this
/// submodule, behind a bounds-checked safe API.
#[allow(unsafe_code)]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 0x1;
    const MAP_SHARED: i32 = 0x01;

    // No `libc` crate is vendored, so the two syscall wrappers are declared
    // directly against the platform C library.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> i32;
    }

    /// A read-only `MAP_SHARED` mapping of the first `len` bytes of a file.
    pub(super) struct Mapping {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is read-only from this process's point of view and
    // the pointer is valid for `len` bytes until `drop`; concurrent readers
    // only ever copy out of it.
    unsafe impl Send for Mapping {}
    // SAFETY: as above — shared `&Mapping` access only performs reads.
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps the first `len` bytes of `file` read-only. `len` must be
        /// non-zero and no larger than the file.
        pub(super) fn new(file: &File, len: usize) -> io::Result<Mapping> {
            assert!(len > 0, "cannot map an empty file");
            // SAFETY: a NULL-addr PROT_READ/MAP_SHARED request over an open
            // descriptor has no preconditions; the kernel either returns a
            // fresh valid mapping of `len` bytes or MAP_FAILED.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping {
                ptr: ptr as *const u8,
                len,
            })
        }

        /// Number of mapped bytes.
        pub(super) fn len(&self) -> usize {
            self.len
        }

        /// Copies `dst.len()` bytes at `offset` out of the mapping.
        ///
        /// A raw copy (not a `&[u8]` reborrow) on purpose: the file behind a
        /// `MAP_SHARED` mapping may be concurrently written through the
        /// store's write path, and Rust references must never alias memory
        /// that changes underneath them.
        pub(super) fn read_into(&self, offset: usize, dst: &mut [u8]) {
            assert!(
                offset
                    .checked_add(dst.len())
                    .is_some_and(|end| end <= self.len),
                "mapped read out of bounds"
            );
            // SAFETY: the range [offset, offset + dst.len()) is inside the
            // mapping (asserted above) and `dst` is a distinct, writable
            // buffer of exactly that many bytes.
            unsafe {
                std::ptr::copy_nonoverlapping(self.ptr.add(offset), dst.as_mut_ptr(), dst.len());
            }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` are exactly what `mmap` returned; the
            // mapping is unmapped once, here.
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }
}

struct MapState {
    /// Current mapping, established lazily on the first read and replaced
    /// (remapped) whenever a read needs a page beyond its length.
    mapping: Option<sys::Mapping>,
    num_pages: u32,
}

/// Memory-mapped page store over the same [`crate::page::frame`] format as
/// [`crate::pagestore::FilePageStore`]: a versioned header, then page `i`'s
/// checksummed frame at `frame::offset(i)`, reads served from a shared
/// read-only mapping (and verified against the trailer on every read).
///
/// Read-mostly by design: reads take the state lock shared and copy out of
/// the mapping concurrently; only growth (allocation past the mapped length)
/// takes it exclusively to remap.
pub struct MmapPageStore {
    file: File,
    state: RwLock<MapState>,
    stats: ShardedIoStats,
}

impl MmapPageStore {
    /// Creates (or truncates) a page file at `path`, writing the versioned
    /// header.
    pub fn create<P: AsRef<Path>>(path: P) -> IrResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        write_all_at(&file, &frame::encode_header(), 0)?;
        Ok(MmapPageStore {
            file,
            state: RwLock::new(MapState {
                mapping: None,
                num_pages: 0,
            }),
            stats: ShardedIoStats::new(),
        })
    }

    /// Opens an existing page file, validating its header and overall shape
    /// exactly like `FilePageStore::open` — the two share one on-disk
    /// format.
    pub fn open<P: AsRef<Path>>(path: P) -> IrResult<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let num_pages = frame::page_count(len)?;
        let mut header = [0u8; frame::HEADER_LEN];
        read_exact_at(&file, &mut header, 0)?;
        frame::validate_header(&header)?;
        Ok(MmapPageStore {
            file,
            state: RwLock::new(MapState {
                mapping: None,
                num_pages,
            }),
            stats: ShardedIoStats::new(),
        })
    }
}

impl PageStore for MmapPageStore {
    fn num_pages(&self) -> u32 {
        self.state.read().num_pages
    }

    fn allocate(&self, count: u32) -> IrResult<PageId> {
        let mut state = self.state.write();
        let first = state.num_pages;
        let new_pages = first
            .checked_add(count)
            .ok_or_else(|| IrError::Storage("page id space exhausted".to_string()))?;
        // Extending the file length zero-fills the new frames' payloads; the
        // checksum trailers are then written explicitly (an all-zero trailer
        // is *not* the checksum of an all-zero page). The existing mapping
        // (if any) keeps serving the old range and a later read past it
        // triggers a remap.
        self.file.set_len(frame::offset(PageId(new_pages)))?;
        let zero_seal = frame::zero_page_seal();
        for i in first..new_pages {
            write_all_at(
                &self.file,
                &zero_seal,
                frame::offset(PageId(i)) + PAGE_SIZE as u64,
            )?;
        }
        state.num_pages = new_pages;
        Ok(PageId(first))
    }

    fn read_page(&self, page: PageId) -> IrResult<PageBuf> {
        let offset = frame::offset(page) as usize;
        let mut framed = vec![0u8; frame::FRAME_LEN];
        let copied = {
            // Fast path: the current mapping covers the frame.
            let state = self.state.read();
            if page.0 >= state.num_pages {
                return Err(out_of_bounds(page, state.num_pages));
            }
            match state
                .mapping
                .as_ref()
                .filter(|m| offset + frame::FRAME_LEN <= m.len())
            {
                Some(mapping) => {
                    mapping.read_into(offset, &mut framed);
                    true
                }
                None => false,
            }
        };
        if !copied {
            // Slow path: (re)establish the mapping over the current length.
            let mut state = self.state.write();
            if page.0 >= state.num_pages {
                return Err(out_of_bounds(page, state.num_pages));
            }
            // Another thread may have remapped while we waited for the lock.
            let covered = state
                .mapping
                .as_ref()
                .is_some_and(|m| offset + frame::FRAME_LEN <= m.len());
            if !covered {
                let len = frame::offset(PageId(state.num_pages)) as usize;
                state.mapping = Some(sys::Mapping::new(&self.file, len).map_err(|e| {
                    IrError::Storage(format!("mmap of {len}-byte page file failed: {e}"))
                })?);
                self.stats.record_read_syscall();
            }
            let Some(mapping) = state.mapping.as_ref() else {
                return Err(IrError::Storage(
                    "mmap state lost its mapping during a remap".to_string(),
                ));
            };
            mapping.read_into(offset, &mut framed);
        }
        frame::verify(page, &framed[..PAGE_SIZE], &framed[PAGE_SIZE..])?;
        framed.truncate(PAGE_SIZE);
        self.stats.record_logical_read();
        Ok(framed.into_boxed_slice())
    }

    fn write_page(&self, page: PageId, data: &[u8]) -> IrResult<()> {
        check_write_len(data)?;
        // Hold the lock shared across the write so a concurrent remap cannot
        // observe a torn page; the positioned write itself needs no cursor.
        let state = self.state.read();
        if page.0 >= state.num_pages {
            return Err(out_of_bounds(page, state.num_pages));
        }
        let mut framed = vec![0u8; frame::FRAME_LEN];
        framed[..PAGE_SIZE].copy_from_slice(data);
        framed[PAGE_SIZE..].copy_from_slice(&frame::seal(data));
        write_all_at(&self.file, &framed, frame::offset(page))?;
        self.stats.record_write();
        Ok(())
    }

    fn io_snapshot(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_io_stats(&self) {
        self.stats.reset();
    }

    fn corrupt_stored_byte(&self, page: PageId, offset: usize, mask: u8) -> IrResult<()> {
        check_corrupt_offset(offset)?;
        let state = self.state.read();
        if page.0 >= state.num_pages {
            return Err(out_of_bounds(page, state.num_pages));
        }
        let pos = frame::offset(page) + offset as u64;
        let mut byte = [0u8; 1];
        read_exact_at(&self.file, &mut byte, pos)?;
        byte[0] ^= mask;
        write_all_at(&self.file, &byte, pos)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::zeroed_page;

    #[test]
    fn mmap_store_roundtrip_and_growth() {
        let dir = tempfile::tempdir().unwrap();
        let store = MmapPageStore::create(dir.path().join("pages.bin")).unwrap();
        assert_eq!(store.num_pages(), 0);
        assert!(store.read_page(PageId(0)).is_err());

        store.allocate(2).unwrap();
        let mut page = zeroed_page();
        page[0] = 11;
        page[PAGE_SIZE - 1] = 22;
        store.write_page(PageId(1), &page).unwrap();
        assert_eq!(store.read_page(PageId(1)).unwrap()[0], 11);
        assert_eq!(store.read_page(PageId(1)).unwrap()[PAGE_SIZE - 1], 22);
        assert!(store.read_page(PageId(0)).unwrap().iter().all(|&b| b == 0));

        // Growth past the established mapping must remap transparently.
        let next = store.allocate(3).unwrap();
        assert_eq!(next, PageId(2));
        page[5] = 33;
        store.write_page(PageId(4), &page).unwrap();
        assert_eq!(store.read_page(PageId(4)).unwrap()[5], 33);
    }

    #[test]
    fn mmap_store_reopens_persisted_pages() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("pages.bin");
        {
            let store = MmapPageStore::create(&path).unwrap();
            store.allocate(2).unwrap();
            let mut page = zeroed_page();
            page[7] = 77;
            store.write_page(PageId(0), &page).unwrap();
        }
        let reopened = MmapPageStore::open(&path).unwrap();
        assert_eq!(reopened.num_pages(), 2);
        assert_eq!(reopened.read_page(PageId(0)).unwrap()[7], 77);
        assert!(MmapPageStore::open(dir.path().join("missing.bin")).is_err());
    }

    #[test]
    fn writes_are_coherent_with_the_mapping() {
        let dir = tempfile::tempdir().unwrap();
        let store = MmapPageStore::create(dir.path().join("pages.bin")).unwrap();
        store.allocate(1).unwrap();
        // Establish the mapping first, then write through the file
        // descriptor: MAP_SHARED must observe the new bytes.
        assert!(store.read_page(PageId(0)).unwrap().iter().all(|&b| b == 0));
        let mut page = zeroed_page();
        page[100] = 42;
        store.write_page(PageId(0), &page).unwrap();
        assert_eq!(store.read_page(PageId(0)).unwrap()[100], 42);
    }

    #[test]
    fn page_fault_equivalent_reads_are_counted() {
        let dir = tempfile::tempdir().unwrap();
        let store = MmapPageStore::create(dir.path().join("pages.bin")).unwrap();
        store.allocate(3).unwrap();
        for i in 0..3 {
            store.read_page(PageId(i)).unwrap();
        }
        let snap = store.io_snapshot();
        assert_eq!(snap.logical_reads, 3, "one page-fault-equivalent per read");
        assert_eq!(snap.read_syscalls, 1, "a single mmap(2) serves all reads");
        store.allocate(1).unwrap();
        store.read_page(PageId(3)).unwrap();
        assert_eq!(store.io_snapshot().read_syscalls, 2, "growth remaps once");
    }

    #[test]
    fn rejects_invalid_write_sizes_and_out_of_bounds() {
        let dir = tempfile::tempdir().unwrap();
        let store = MmapPageStore::create(dir.path().join("pages.bin")).unwrap();
        store.allocate(1).unwrap();
        assert!(store.write_page(PageId(0), &[1, 2, 3]).is_err());
        assert!(matches!(
            store.write_page(PageId(9), &zeroed_page()),
            Err(IrError::PageOutOfBounds {
                page: 9,
                num_pages: 1
            })
        ));
        assert!(matches!(
            store.read_page(PageId(9)),
            Err(IrError::PageOutOfBounds {
                page: 9,
                num_pages: 1
            })
        ));
    }

    #[test]
    fn detects_injected_corruption_through_the_mapping() {
        let dir = tempfile::tempdir().unwrap();
        let store = MmapPageStore::create(dir.path().join("pages.bin")).unwrap();
        store.allocate(2).unwrap();
        let mut page = zeroed_page();
        page[17] = 0xAB;
        store.write_page(PageId(1), &page).unwrap();
        // Establish the mapping, then rot a byte underneath it: MAP_SHARED
        // coherence means the checksum check sees the damage immediately.
        store.read_page(PageId(1)).unwrap();
        store.corrupt_stored_byte(PageId(1), 17, 0xFF).unwrap();
        let err = store.read_page(PageId(1)).unwrap_err();
        assert!(
            matches!(err, IrError::Corruption { page: Some(1), .. }),
            "expected corruption on page 1, got: {err}"
        );
        // Re-applying the XOR mask heals it.
        store.corrupt_stored_byte(PageId(1), 17, 0xFF).unwrap();
        assert_eq!(store.read_page(PageId(1)).unwrap()[17], 0xAB);
    }
}
