//! # ir-storage
//!
//! Page-based storage substrate for the immutable-region stack.
//!
//! Section 3 of the paper states the physical design: *"we create an inverted
//! list `L_j` for each dimension [...] sorted in decreasing `d_{αj}` order.
//! The inverted lists and the external file of tuples are stored on disk."*
//! Section 7 then reports I/O cost as a primary metric. This crate provides
//! that substrate:
//!
//! * [`page`] / [`pagestore`] — fixed-size pages backed by an in-memory
//!   "disk" ([`MemPageStore`]), a real file accessed with positioned reads
//!   ([`FilePageStore`]), or — behind the `mmap` cargo feature — a read-only
//!   memory mapping (`MmapPageStore` in the `mmap` module),
//! * [`buffer`] — an LRU buffer pool that every access goes through, with
//!   logical/physical read accounting and a bounded [`RetryPolicy`] that
//!   heals transient device faults invisibly,
//! * [`fault`] — a deterministic fault-injection wrapper
//!   ([`FaultInjectingPageStore`]) driven by a serializable [`FaultPlan`],
//!   used by the chaos suite and the `--fault-plan` runner flag,
//! * [`stats`] — I/O counters and a configurable latency model used by the
//!   experiment harness to report I/O time,
//! * [`inverted`] — the per-dimension inverted lists with resumable
//!   sequential cursors (TA's *sorted access*),
//! * [`tuplestore`] — the external tuple file with random access by tuple id
//!   (TA's *random access*),
//! * [`index`] — [`TopKIndex`], the façade that builds all of the above from
//!   an in-memory [`ir_types::Dataset`] and is what the query algorithms
//!   operate on.

// The default build carries no `unsafe` at all. Enabling the `mmap` feature
// relaxes the crate-wide forbid to a deny, and the one module that maps
// files (`mmap::sys`) opts back in explicitly — every other module stays
// unsafe-free, which the CI feature matrix grep-asserts.
#![cfg_attr(not(feature = "mmap"), forbid(unsafe_code))]
#![cfg_attr(feature = "mmap", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod buffer;
pub mod checksum;
pub mod fault;
pub mod index;
pub mod inverted;
pub mod maintain;
#[cfg(feature = "mmap")]
pub mod mmap;
pub mod page;
pub mod pagestore;
pub mod snapshot;
pub mod stats;
pub mod tuplestore;

pub use buffer::{BufferPool, RetryPolicy};
pub use checksum::fnv1a64;
pub use fault::{CorruptionSpec, FaultInjectingPageStore, FaultPlan};
pub use index::{
    BackendKind, ColdStartInfo, ColdStartSource, IndexBuilder, StorageBackend, TopKIndex,
};
pub use inverted::{InvertedListCursor, ListDirectoryEntry};
pub use maintain::{AppliedUpdate, MaintenanceStatsSnapshot};
#[cfg(feature = "mmap")]
pub use mmap::MmapPageStore;
pub use page::{PageId, PAGE_SIZE};
pub use pagestore::{FilePageStore, MemPageStore, PageStore};
pub use snapshot::{SnapshotPeek, SnapshotSummary};
pub use stats::{
    set_thread_stats_shard, thread_stats_shard, IoConfig, IoStats, IoStatsSnapshot, ShardedIoStats,
    IO_STATS_SHARDS,
};
pub use tuplestore::TupleDirectoryEntry;
