//! # ir-geometry
//!
//! Score-coordinate geometry used by the immutable-region algorithms.
//!
//! When a single query weight `q_j` deviates by `δ`, the score of a tuple
//! `d_α` is the *line* `y(δ) = S(d_α, q) + δ · d_{αj}` in the
//! score-coordinate plane (Figures 4, 8 and 9 of the paper). Everything the
//! algorithms need reduces to questions about such lines:
//!
//! * where do two lines cross ([`mod@line`]),
//! * what is the lower envelope of the current result lines — i.e. the score
//!   of the k-th result tuple as a function of `δ` ([`envelope`]),
//! * where are the first `φ + 1` order changes among a set of lines, and how
//!   does the ordered top-k evolve as `δ` grows when candidate lines may
//!   enter it ([`kinetic`]),
//! * interval bookkeeping for the immutable regions themselves
//!   ([`interval`]).
//!
//! The crate is deliberately independent of the data model: lines carry an
//! opaque `u64` label so that callers can map them back to tuples.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod envelope;
pub mod interval;
pub mod kinetic;
pub mod line;

pub use envelope::{EnvelopePiece, LowerEnvelope};
pub use interval::Interval;
pub use kinetic::{sweep_topk, KineticSweep, SweepEvent, SweepEventKind, SweepOutcome};
pub use line::{intersection_x, Line};
