//! Kinetic sweep over the ordered top-k as one weight deviation grows.
//!
//! Section 6 of the paper computes, for `φ > 0`, the sequence of result
//! perturbations as `δq_j` increases: crossings among result lines are
//! reorderings, and a candidate line crossing the lower envelope of the
//! result enters the result (evicting the then k-th tuple). This module
//! implements that process as a *kinetic sorted list*: the ordered top-k is
//! maintained while `x` (the deviation) sweeps to the right, and every order
//! change is reported as a [`SweepEvent`].
//!
//! The sweep works on abstract [`Line`]s; the caller mirrors lines
//! (`slope → -slope`) to reuse the same machinery for negative deviations.

use crate::envelope::EnvelopePiece;
use crate::line::{intersection_x, Line};
use serde::{Deserialize, Serialize};

/// What kind of perturbation an event represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepEventKind {
    /// Two adjacent result members swapped ranks: `overtaker` moved above
    /// `overtaken`.
    Reorder {
        /// Label of the line that moved up.
        overtaker: u64,
        /// Label of the line that moved down.
        overtaken: u64,
    },
    /// A line from outside the result overtook the k-th member.
    Enter {
        /// Label of the entering line.
        entering: u64,
        /// Label of the evicted (previously k-th) line.
        evicted: u64,
    },
}

/// One perturbation of the ordered top-k.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepEvent {
    /// Deviation at which the perturbation happens.
    pub x: f64,
    /// The kind of perturbation.
    pub kind: SweepEventKind,
    /// The ordered top-k labels immediately after the event.
    pub order_after: Vec<u64>,
}

/// Result of running a sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// The perturbations found, in increasing `x` order (at most the
    /// requested maximum).
    pub events: Vec<SweepEvent>,
    /// Piecewise description of the k-th (lowest ranked) line between `0` and
    /// [`SweepOutcome::end_x`] — the paper's lower envelope of the result.
    pub envelope: Vec<EnvelopePiece>,
    /// Where the sweep stopped: `x_max`, or the position of the last event if
    /// the maximum event count was reached first.
    pub end_x: f64,
    /// Whether the sweep stopped because it found the maximum number of
    /// events (as opposed to reaching `x_max`).
    pub truncated: bool,
}

/// The kinetic sorted list.
#[derive(Clone, Debug)]
pub struct KineticSweep {
    x: f64,
    x_max: f64,
    ordered: Vec<Line>,
    outside: Vec<Line>,
    envelope: Vec<EnvelopePiece>,
    envelope_from: f64,
}

const EVENT_EPS: f64 = 1e-15;

impl KineticSweep {
    /// Creates a sweep starting at `x = x_start` with the given ordered
    /// result lines (best first). Panics if `ordered` is empty.
    pub fn new(ordered: Vec<Line>, x_start: f64, x_max: f64) -> Self {
        assert!(!ordered.is_empty(), "kinetic sweep needs at least one line");
        assert!(x_start <= x_max, "invalid sweep range");
        KineticSweep {
            x: x_start,
            x_max,
            ordered,
            outside: Vec::new(),
            envelope: Vec::new(),
            envelope_from: x_start,
        }
    }

    /// Adds a line that is currently outside the result (a candidate). It
    /// will produce an [`SweepEventKind::Enter`] event if and when it
    /// overtakes the k-th result line.
    pub fn add_outside(&mut self, line: Line) {
        self.outside.push(line);
    }

    /// Current sweep position.
    pub fn position(&self) -> f64 {
        self.x
    }

    /// The current ordered result labels (best first).
    pub fn order(&self) -> Vec<u64> {
        self.ordered.iter().map(|l| l.label).collect()
    }

    /// The current k-th (worst ranked) result line.
    pub fn kth_line(&self) -> Line {
        *self.ordered.last().expect("non-empty order")
    }

    fn record_envelope_piece(&mut self, to_x: f64) {
        if to_x > self.envelope_from {
            let piece = EnvelopePiece {
                x_start: self.envelope_from,
                x_end: to_x,
                line: self.kth_line(),
            };
            self.envelope.push(piece);
            self.envelope_from = to_x;
        }
    }

    /// Finds and applies the next perturbation at or after the current
    /// position, returning `None` when no further perturbation occurs before
    /// `x_max`.
    pub fn next_event(&mut self) -> Option<SweepEvent> {
        #[derive(Clone, Copy)]
        enum Pending {
            Reorder(usize),
            Enter(usize),
        }

        let mut best_x = f64::INFINITY;
        let mut best: Option<Pending> = None;

        // Adjacent reorderings inside the result.
        for i in 0..self.ordered.len().saturating_sub(1) {
            let upper = &self.ordered[i];
            let lower = &self.ordered[i + 1];
            if lower.slope <= upper.slope {
                continue; // lower can never catch up
            }
            if let Some(cx) = intersection_x(upper, lower) {
                let cx = cx.max(self.x);
                if cx <= self.x_max && cx < best_x - EVENT_EPS {
                    best_x = cx;
                    best = Some(Pending::Reorder(i));
                }
            }
        }

        // Outside lines overtaking the k-th result line.
        let kth = self.kth_line();
        let kth_here = kth.eval(self.x);
        // Tolerance for the "already above" test: right after an Enter event
        // the evicted line is numerically equal to the new k-th line at the
        // event position; without a tolerance, rounding can make it appear
        // infinitesimally above and the two lines would flip-flop forever.
        let above_eps = 1e-12 * kth_here.abs().max(1.0);
        for (idx, cand) in self.outside.iter().enumerate() {
            let entry_x = if cand.eval(self.x) > kth_here + above_eps {
                // Clearly above already (can happen right after another event
                // at the same x): enters immediately.
                Some(self.x)
            } else if cand.slope > kth.slope {
                intersection_x(cand, &kth).map(|cx| cx.max(self.x))
            } else {
                None
            };
            if let Some(cx) = entry_x {
                if cx <= self.x_max && cx < best_x - EVENT_EPS {
                    best_x = cx;
                    best = Some(Pending::Enter(idx));
                }
            }
        }

        let pending = best?;
        self.record_envelope_piece(best_x);
        self.x = best_x;

        let kind = match pending {
            Pending::Reorder(i) => {
                let overtaker = self.ordered[i + 1].label;
                let overtaken = self.ordered[i].label;
                self.ordered.swap(i, i + 1);
                SweepEventKind::Reorder {
                    overtaker,
                    overtaken,
                }
            }
            Pending::Enter(idx) => {
                let entering = self.outside.swap_remove(idx);
                let evicted = self.ordered.pop().expect("non-empty order");
                self.ordered.push(entering);
                self.outside.push(evicted);
                SweepEventKind::Enter {
                    entering: entering.label,
                    evicted: evicted.label,
                }
            }
        };
        Some(SweepEvent {
            x: best_x,
            kind,
            order_after: self.order(),
        })
    }

    /// Runs the sweep until `max_events` perturbations were found or `x_max`
    /// was reached, and returns the outcome (events + envelope trace).
    pub fn run(mut self, max_events: usize) -> SweepOutcome {
        let mut events = Vec::new();
        let mut truncated = false;
        while events.len() < max_events {
            match self.next_event() {
                Some(ev) => events.push(ev),
                None => break,
            }
        }
        if events.len() >= max_events {
            truncated = true;
        }
        let end_x = if truncated {
            events.last().map(|e| e.x).unwrap_or(self.x_max)
        } else {
            self.x_max
        };
        // Complete the envelope trace to end_x.
        self.record_envelope_piece(end_x);
        SweepOutcome {
            events,
            envelope: self.envelope,
            end_x,
            truncated,
        }
    }
}

/// Convenience wrapper: sweeps `ordered` (best first) against `outside`
/// candidates over `[x_start, x_max]`, reporting at most `max_events`
/// perturbations.
pub fn sweep_topk(
    ordered: Vec<Line>,
    outside: Vec<Line>,
    x_start: f64,
    x_max: f64,
    max_events: usize,
) -> SweepOutcome {
    let mut sweep = KineticSweep::new(ordered, x_start, x_max);
    for line in outside {
        sweep.add_outside(line);
    }
    sweep.run(max_events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(label: u64, intercept: f64, slope: f64) -> Line {
        Line::new(label, intercept, slope)
    }

    #[test]
    fn reorder_event_matches_running_example() {
        // Top-2 of the running example on dimension 1: d2 (0.81, slope 0.7)
        // then d1 (0.80, slope 0.8). They swap at δ = 0.1.
        let outcome = sweep_topk(vec![l(2, 0.81, 0.7), l(1, 0.80, 0.8)], vec![], 0.0, 0.2, 10);
        assert_eq!(outcome.events.len(), 1);
        let ev = &outcome.events[0];
        assert!((ev.x - 0.1).abs() < 1e-12);
        assert_eq!(
            ev.kind,
            SweepEventKind::Reorder {
                overtaker: 1,
                overtaken: 2
            }
        );
        assert_eq!(ev.order_after, vec![1, 2]);
        assert!(!outcome.truncated);
        assert_eq!(outcome.end_x, 0.2);
    }

    #[test]
    fn enter_event_evicts_kth() {
        // One result line at 0.5 flat; a candidate starting at 0.2 with slope
        // 1.0 enters at x = 0.3.
        let outcome = sweep_topk(vec![l(0, 0.5, 0.0)], vec![l(9, 0.2, 1.0)], 0.0, 1.0, 10);
        assert_eq!(outcome.events.len(), 1);
        let ev = &outcome.events[0];
        assert!((ev.x - 0.3).abs() < 1e-12);
        assert_eq!(
            ev.kind,
            SweepEventKind::Enter {
                entering: 9,
                evicted: 0
            }
        );
        assert_eq!(ev.order_after, vec![9]);
    }

    #[test]
    fn evicted_line_can_reenter_later() {
        // Result: flat 0.5 (label 0). Candidate 1: slope 2 from 0.2 (enters
        // at 0.15, evicting 0). Candidate 2 never enters. After the eviction
        // the k-th is line 1, which line 0 can never overtake again (slope 0
        // vs 2), so only one event total.
        let outcome = sweep_topk(
            vec![l(0, 0.5, 0.0)],
            vec![l(1, 0.2, 2.0), l(2, 0.0, 0.1)],
            0.0,
            1.0,
            10,
        );
        assert_eq!(outcome.events.len(), 1);
        assert_eq!(outcome.events[0].order_after, vec![1]);
    }

    #[test]
    fn events_are_reported_in_increasing_x() {
        let outcome = sweep_topk(
            vec![l(0, 0.9, 0.1), l(1, 0.8, 0.5), l(2, 0.7, 0.2)],
            vec![l(3, 0.4, 1.5), l(4, 0.3, 0.05)],
            0.0,
            1.0,
            100,
        );
        let xs: Vec<f64> = outcome.events.iter().map(|e| e.x).collect();
        for w in xs.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "events out of order: {xs:?}");
        }
        // The final order must rank lines consistently with direct evaluation
        // at end_x (allowing ties).
        let end = outcome.end_x;
        let final_order = outcome.events.last().unwrap().order_after.clone();
        let all = [
            l(0, 0.9, 0.1),
            l(1, 0.8, 0.5),
            l(2, 0.7, 0.2),
            l(3, 0.4, 1.5),
            l(4, 0.3, 0.05),
        ];
        let val = |label: u64| all.iter().find(|x| x.label == label).unwrap().eval(end);
        for w in final_order.windows(2) {
            assert!(val(w[0]) >= val(w[1]) - 1e-9);
        }
    }

    #[test]
    fn max_events_truncates_and_reports_end_x() {
        let outcome = sweep_topk(
            vec![l(0, 0.9, 0.0), l(1, 0.85, 0.1)],
            vec![l(2, 0.5, 2.0), l(3, 0.4, 3.0)],
            0.0,
            1.0,
            1,
        );
        assert!(outcome.truncated);
        assert_eq!(outcome.events.len(), 1);
        assert!((outcome.end_x - outcome.events[0].x).abs() < 1e-12);
    }

    #[test]
    fn envelope_traces_the_kth_line() {
        // Two result lines; the k-th (lowest) changes identity at their
        // crossing.
        let outcome = sweep_topk(vec![l(0, 0.9, 0.0), l(1, 0.6, 0.8)], vec![], 0.0, 1.0, 10);
        // Crossing at x = 0.375: before it the k-th is line 1, after it the
        // k-th is line 0.
        assert_eq!(outcome.events.len(), 1);
        assert!((outcome.events[0].x - 0.375).abs() < 1e-12);
        assert_eq!(outcome.envelope.len(), 2);
        assert_eq!(outcome.envelope[0].line.label, 1);
        assert_eq!(outcome.envelope[1].line.label, 0);
        assert!((outcome.envelope[0].x_end - 0.375).abs() < 1e-12);
        assert!((outcome.envelope[1].x_end - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_events_when_nothing_crosses() {
        let outcome = sweep_topk(
            vec![l(0, 0.9, 0.5), l(1, 0.5, 0.5)],
            vec![l(2, 0.2, 0.5)],
            0.0,
            1.0,
            10,
        );
        assert!(outcome.events.is_empty());
        assert!(!outcome.truncated);
        assert_eq!(outcome.envelope.len(), 1);
        assert_eq!(outcome.envelope[0].line.label, 1);
    }
}
