//! Lower envelopes of line sets.
//!
//! The lower envelope of the `k` result lines is the score of the k-th
//! result tuple as a function of the weight deviation (Section 6, Figure 9).
//! A candidate enters the result exactly where its line crosses the envelope
//! from below, and the threshold line of the thresholding/Phase-3 termination
//! tests is safe exactly when it stays strictly below the envelope over the
//! considered deviation range.

use crate::line::{intersection_x, Line};
use serde::{Deserialize, Serialize};

/// One linear piece of a lower envelope.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnvelopePiece {
    /// Piece start (inclusive).
    pub x_start: f64,
    /// Piece end (exclusive except for the last piece).
    pub x_end: f64,
    /// The line that attains the minimum on this piece.
    pub line: Line,
}

/// The lower envelope (pointwise minimum) of a set of lines over `[lo, hi]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LowerEnvelope {
    lo: f64,
    hi: f64,
    pieces: Vec<EnvelopePiece>,
}

impl LowerEnvelope {
    /// Builds the lower envelope of `lines` over `[lo, hi]`.
    ///
    /// Runs a simple left-to-right sweep: starting from the minimal line at
    /// `lo`, repeatedly find the earliest crossing at which some other line
    /// dips below the current one. With `k` lines this is `O(k^2)` in the
    /// worst case (`O(k log k)` is possible but `k` is small — typically 10
    /// to 80 — so simplicity wins).
    ///
    /// Panics if `lines` is empty or `lo > hi`.
    pub fn build(lines: &[Line], lo: f64, hi: f64) -> Self {
        assert!(!lines.is_empty(), "lower envelope of zero lines");
        assert!(lo <= hi, "invalid envelope range [{lo}, {hi}]");

        let min_line_at = |x: f64| -> Line {
            *lines
                .iter()
                .min_by(|a, b| {
                    a.eval(x)
                        .total_cmp(&b.eval(x))
                        .then_with(|| a.label.cmp(&b.label))
                })
                .expect("non-empty lines")
        };

        let mut pieces = Vec::new();
        let mut x = lo;
        let mut current = min_line_at(lo);
        // Guard against pathological floating point cycling.
        let max_pieces = lines.len() * lines.len() + 2;
        while pieces.len() < max_pieces {
            // Earliest x' > x where some line goes strictly below `current`.
            let mut next_x = hi;
            let mut next_line: Option<Line> = None;
            for cand in lines {
                if cand.label == current.label {
                    continue;
                }
                // `cand` can only dip below `current` later if it decreases
                // relative to it, i.e. has a smaller slope.
                if cand.slope >= current.slope {
                    continue;
                }
                if let Some(cx) = intersection_x(&current, cand) {
                    if cx > x && cx < next_x {
                        next_x = cx;
                        next_line = Some(*cand);
                    }
                }
            }
            match next_line {
                Some(line) if next_x < hi => {
                    pieces.push(EnvelopePiece {
                        x_start: x,
                        x_end: next_x,
                        line: current,
                    });
                    x = next_x;
                    current = line;
                }
                _ => {
                    pieces.push(EnvelopePiece {
                        x_start: x,
                        x_end: hi,
                        line: current,
                    });
                    break;
                }
            }
        }
        LowerEnvelope { lo, hi, pieces }
    }

    /// Range start.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Range end.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// The envelope pieces from left to right.
    pub fn pieces(&self) -> &[EnvelopePiece] {
        &self.pieces
    }

    /// The piece containing `x` (clamped into the range).
    pub fn piece_at(&self, x: f64) -> &EnvelopePiece {
        let x = x.clamp(self.lo, self.hi);
        self.pieces
            .iter()
            .find(|p| x <= p.x_end)
            .unwrap_or_else(|| self.pieces.last().expect("envelope has pieces"))
    }

    /// Envelope value at `x`.
    pub fn value_at(&self, x: f64) -> f64 {
        self.piece_at(x).line.eval(x)
    }

    /// The label of the line attaining the minimum at `x`.
    pub fn min_label_at(&self, x: f64) -> u64 {
        self.piece_at(x).line.label
    }

    /// First `x` in `[lo, hi]` at which `probe` reaches (or exceeds) the
    /// envelope, i.e. `probe.eval(x) >= envelope(x)`, or `None` if the probe
    /// stays strictly below everywhere.
    ///
    /// This is the geometric primitive behind both "does this candidate enter
    /// the result inside the region?" and the safe-termination tests on the
    /// threshold line.
    pub fn first_reach_from_below(&self, probe: &Line) -> Option<f64> {
        for piece in &self.pieces {
            let start_diff = probe.eval(piece.x_start) - piece.line.eval(piece.x_start);
            if start_diff >= 0.0 {
                return Some(piece.x_start);
            }
            let end_diff = probe.eval(piece.x_end) - piece.line.eval(piece.x_end);
            if end_diff >= 0.0 {
                // Crossing inside this piece.
                let x = intersection_x(probe, &piece.line)
                    .expect("non-parallel because the sign of the difference changed");
                return Some(x.clamp(piece.x_start, piece.x_end));
            }
        }
        None
    }

    /// True if `probe` stays strictly below the envelope over the whole
    /// range.
    pub fn line_strictly_below(&self, probe: &Line) -> bool {
        self.first_reach_from_below(probe).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(label: u64, intercept: f64, slope: f64) -> Line {
        Line::new(label, intercept, slope)
    }

    #[test]
    fn single_line_envelope_is_that_line() {
        let env = LowerEnvelope::build(&[l(0, 0.5, 0.2)], 0.0, 1.0);
        assert_eq!(env.pieces().len(), 1);
        assert_eq!(env.value_at(0.5), 0.6);
        assert_eq!(env.min_label_at(0.9), 0);
    }

    #[test]
    fn envelope_of_two_crossing_lines_has_breakpoint() {
        // a starts lower but grows faster: min is a then b after crossing?
        // a(0)=0.2 slope 1.0, b(0)=0.5 slope 0.0; they cross at x=0.3, after
        // which a is above b, so the envelope is a on [0,0.3], b on [0.3,1].
        let a = l(0, 0.2, 1.0);
        let b = l(1, 0.5, 0.0);
        let env = LowerEnvelope::build(&[a, b], 0.0, 1.0);
        assert_eq!(env.pieces().len(), 2);
        assert_eq!(env.min_label_at(0.0), 0);
        assert_eq!(env.min_label_at(0.9), 1);
        assert!((env.pieces()[0].x_end - 0.3).abs() < 1e-12);
        assert!((env.value_at(0.3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn envelope_is_pointwise_minimum() {
        let lines = vec![
            l(0, 0.9, 0.1),
            l(1, 0.5, 0.6),
            l(2, 0.2, 1.2),
            l(3, 0.8, 0.0),
        ];
        let env = LowerEnvelope::build(&lines, 0.0, 2.0);
        for i in 0..=40 {
            let x = i as f64 * 0.05;
            let brute = lines
                .iter()
                .map(|ln| ln.eval(x))
                .fold(f64::INFINITY, f64::min);
            assert!(
                (env.value_at(x) - brute).abs() < 1e-9,
                "mismatch at x={x}: {} vs {}",
                env.value_at(x),
                brute
            );
        }
    }

    #[test]
    fn first_reach_from_below_finds_entry_point() {
        // Envelope of one flat line at 0.5; probe starts at 0.2 with slope 1.
        let env = LowerEnvelope::build(&[l(0, 0.5, 0.0)], 0.0, 1.0);
        let probe = l(9, 0.2, 1.0);
        let x = env.first_reach_from_below(&probe).unwrap();
        assert!((x - 0.3).abs() < 1e-12);

        // A probe that never reaches the envelope.
        let below = l(8, 0.1, 0.0);
        assert!(env.line_strictly_below(&below));

        // A probe already at/above the envelope at the range start.
        let above = l(7, 0.7, 0.0);
        assert_eq!(env.first_reach_from_below(&above), Some(0.0));
    }

    #[test]
    fn envelope_on_negative_range_works() {
        // Used for the left-hand (δ < 0) side after mirroring.
        let a = l(0, 0.8, 0.9);
        let b = l(1, 0.5, 0.1);
        let env = LowerEnvelope::build(&[a, b], -0.8, 0.0);
        // At δ=-0.8: a = 0.08, b = 0.42 -> min is a. At 0: a=0.8, b=0.5 -> b.
        assert_eq!(env.min_label_at(-0.8), 0);
        assert_eq!(env.min_label_at(0.0), 1);
        assert_eq!(env.pieces().len(), 2);
    }
}
