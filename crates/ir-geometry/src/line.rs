//! Lines in the score-coordinate plane.

use serde::{Deserialize, Serialize};

/// A line `y(x) = intercept + slope · x`.
///
/// In the immutable-region setting `x` is the deviation `δq_j` of one query
/// weight, `intercept` is the tuple's score at the current weight and `slope`
/// is the tuple's coordinate in the queried dimension. The `label` is an
/// opaque identifier (the tuple id) used to report which tuple caused a
/// perturbation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Line {
    /// Opaque identifier of the object this line represents.
    pub label: u64,
    /// Value at `x = 0`.
    pub intercept: f64,
    /// Growth per unit of `x` (a coordinate, hence non-negative in practice).
    pub slope: f64,
}

impl Line {
    /// Creates a line.
    pub fn new(label: u64, intercept: f64, slope: f64) -> Self {
        Line {
            label,
            intercept,
            slope,
        }
    }

    /// Evaluates the line at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Compares two lines at position `x` with the canonical ranking order:
    /// higher value first, ties broken by smaller label.
    #[inline]
    pub fn rank_cmp_at(&self, other: &Line, x: f64) -> std::cmp::Ordering {
        other
            .eval(x)
            .total_cmp(&self.eval(x))
            .then_with(|| self.label.cmp(&other.label))
    }
}

/// The `x` at which two lines intersect, or `None` if they are parallel.
///
/// The returned value can be negative — callers restrict it to the deviation
/// range they care about.
#[inline]
pub fn intersection_x(a: &Line, b: &Line) -> Option<f64> {
    let slope_diff = a.slope - b.slope;
    if slope_diff == 0.0 {
        return None;
    }
    Some((b.intercept - a.intercept) / slope_diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eval_is_affine() {
        let l = Line::new(1, 0.5, 0.25);
        assert_eq!(l.eval(0.0), 0.5);
        assert_eq!(l.eval(2.0), 1.0);
        assert_eq!(l.eval(-2.0), 0.0);
    }

    #[test]
    fn intersection_matches_running_example() {
        // d2 scores 0.81 with slope 0.7, d1 scores 0.80 with slope 0.8:
        // they cross at δq1 = 0.1 (Figure 1: u1 = 0.1).
        let d2 = Line::new(2, 0.81, 0.7);
        let d1 = Line::new(1, 0.80, 0.8);
        let x = intersection_x(&d2, &d1).unwrap();
        assert!((x - 0.1).abs() < 1e-12);

        // d1 (0.80, slope 0.8) and d3 (0.48, slope 0.1) cross at -16/35.
        let d3 = Line::new(3, 0.48, 0.1);
        let x = intersection_x(&d1, &d3).unwrap();
        assert!((x + 16.0 / 35.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_lines_do_not_intersect() {
        let a = Line::new(0, 0.3, 0.5);
        let b = Line::new(1, 0.7, 0.5);
        assert_eq!(intersection_x(&a, &b), None);
    }

    #[test]
    fn rank_cmp_orders_by_value_then_label() {
        let hi = Line::new(7, 0.9, 0.0);
        let lo = Line::new(2, 0.1, 0.0);
        assert_eq!(hi.rank_cmp_at(&lo, 0.0), std::cmp::Ordering::Less);
        let tie_a = Line::new(1, 0.5, 0.0);
        let tie_b = Line::new(3, 0.5, 0.0);
        assert_eq!(tie_a.rank_cmp_at(&tie_b, 10.0), std::cmp::Ordering::Less);
    }

    proptest! {
        #[test]
        fn lines_agree_at_their_intersection(
            i1 in -1.0f64..1.0, s1 in 0.0f64..1.0,
            i2 in -1.0f64..1.0, s2 in 0.0f64..1.0,
        ) {
            let a = Line::new(0, i1, s1);
            let b = Line::new(1, i2, s2);
            if let Some(x) = intersection_x(&a, &b) {
                // Values can be large when slopes are nearly equal; compare
                // with a tolerance that scales with the magnitude.
                let (ya, yb) = (a.eval(x), b.eval(x));
                let scale = ya.abs().max(yb.abs()).max(1.0);
                prop_assert!((ya - yb).abs() <= 1e-9 * scale);
            }
        }

        #[test]
        fn intersection_is_symmetric(
            i1 in -1.0f64..1.0, s1 in 0.0f64..1.0,
            i2 in -1.0f64..1.0, s2 in 0.0f64..1.0,
        ) {
            let a = Line::new(0, i1, s1);
            let b = Line::new(1, i2, s2);
            match (intersection_x(&a, &b), intersection_x(&b, &a)) {
                (Some(x), Some(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    prop_assert!((x - y).abs() <= 1e-9 * scale);
                }
                (None, None) => {}
                _ => prop_assert!(false, "asymmetric intersection result"),
            }
        }
    }
}
