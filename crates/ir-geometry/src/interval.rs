//! Closed intervals of weight deviations.
//!
//! An immutable region is reported relative to the current weight, e.g.
//! `(-16/35, 0.1)` in the running example. The interval type here is the
//! plain numeric range; openness at the endpoints is a property of the
//! perturbation that occurs *at* the endpoint and is tracked by the caller.

use serde::{Deserialize, Serialize};

/// A numeric interval `[lo, hi]` with `lo <= hi`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower end.
    pub lo: f64,
    /// Upper end.
    pub hi: f64,
}

impl Interval {
    /// Creates an interval, panicking if `lo > hi` (beyond fp tolerance).
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo <= hi + 1e-12,
            "interval bounds out of order: [{lo}, {hi}]"
        );
        Interval { lo: lo.min(hi), hi }
    }

    /// The interval `[lo, hi]` clamped so that `lo <= hi` (used when two
    /// independent tightening passes may cross due to rounding).
    pub fn new_clamped(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            let mid = 0.5 * (lo + hi);
            Interval { lo: mid, hi: mid }
        }
    }

    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True if `x` lies inside (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Intersection with another interval, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// True if the two intervals are equal within `tol` at both endpoints.
    pub fn approx_eq(&self, other: &Interval, tol: f64) -> bool {
        (self.lo - other.lo).abs() <= tol && (self.hi - other.hi).abs() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_width() {
        let i = Interval::new(-0.4, 0.1);
        assert!((i.width() - 0.5).abs() < 1e-12);
        assert!(i.contains(0.0));
        assert!(i.contains(-0.4));
        assert!(!i.contains(0.2));
    }

    #[test]
    #[should_panic(expected = "interval bounds out of order")]
    fn reversed_bounds_panic() {
        let _ = Interval::new(0.5, -0.5);
    }

    #[test]
    fn clamped_collapses_to_midpoint() {
        let i = Interval::new_clamped(0.2, 0.1);
        assert!((i.lo - 0.15).abs() < 1e-12);
        assert_eq!(i.lo, i.hi);
    }

    #[test]
    fn intersection_behaviour() {
        let a = Interval::new(-1.0, 0.5);
        let b = Interval::new(0.0, 2.0);
        let c = a.intersect(&b).unwrap();
        assert_eq!(c, Interval::new(0.0, 0.5));
        let d = Interval::new(0.6, 0.7);
        assert!(a.intersect(&d).is_none());
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(1e-10, 1.0 - 1e-10);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-12));
    }
}
