//! Property tests for the kinetic sweep: its reported order changes must
//! agree with brute-force re-ranking of the lines at sampled positions, and
//! the envelope trace must equal the k-th ranked value everywhere.

use ir_geometry::{sweep_topk, Line};
use proptest::prelude::*;

fn rank_at(lines: &[Line], x: f64) -> Vec<u64> {
    let mut sorted: Vec<&Line> = lines.iter().collect();
    sorted.sort_by(|a, b| {
        b.eval(x)
            .total_cmp(&a.eval(x))
            .then_with(|| a.label.cmp(&b.label))
    });
    sorted.iter().map(|l| l.label).collect()
}

fn lines_strategy(count: usize) -> impl Strategy<Value = Vec<Line>> {
    proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), count..=count).prop_map(|params| {
        params
            .into_iter()
            .enumerate()
            .map(|(i, (intercept, slope))| Line::new(i as u64, intercept, slope))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64).with_seed(0xB00C_0003))]

    /// Between consecutive events the k-th member reported by the sweep's
    /// envelope equals the brute-force k-th ranked line, and after the last
    /// event the final order equals the brute-force ranking.
    #[test]
    fn sweep_matches_brute_force_ranking(all_lines in lines_strategy(8), k in 2usize..5) {
        let x_max = 0.7f64;
        // Rank at x = 0 to split into result (top k) and outside lines.
        let initial = rank_at(&all_lines, 0.0);
        let topk: Vec<Line> = initial[..k]
            .iter()
            .map(|&label| all_lines[label as usize])
            .collect();
        let outside: Vec<Line> = initial[k..]
            .iter()
            .map(|&label| all_lines[label as usize])
            .collect();

        let outcome = sweep_topk(topk.clone(), outside, 0.0, x_max, 1_000);
        prop_assert!(!outcome.truncated);

        // The envelope value must equal the k-th best value among *all* lines
        // at the midpoint of each piece (modulo ties, compare values not
        // labels).
        for piece in &outcome.envelope {
            let mid = 0.5 * (piece.x_start + piece.x_end);
            if piece.x_end - piece.x_start < 1e-9 {
                continue;
            }
            let mut values: Vec<f64> = all_lines.iter().map(|l| l.eval(mid)).collect();
            values.sort_by(|a, b| b.total_cmp(a));
            let expected_kth = values[k - 1];
            prop_assert!(
                (piece.line.eval(mid) - expected_kth).abs() < 1e-9,
                "envelope value {} != k-th value {} at x = {mid}",
                piece.line.eval(mid),
                expected_kth
            );
        }

        // The order after the final event must equal the brute-force top-k
        // order just past it (ties can legitimately differ exactly at the
        // event, so sample slightly to the right).
        if let Some(last) = outcome.events.last() {
            let probe = (last.x + 1e-9).min(x_max);
            let expected: Vec<u64> = rank_at(&all_lines, probe)[..k].to_vec();
            let expected_values: Vec<f64> = expected
                .iter()
                .map(|&l| all_lines[l as usize].eval(probe))
                .collect();
            let got_values: Vec<f64> = last
                .order_after
                .iter()
                .map(|&l| all_lines[l as usize].eval(probe))
                .collect();
            for (g, e) in got_values.iter().zip(&expected_values) {
                prop_assert!((g - e).abs() < 1e-9, "ranked values diverge at x = {probe}");
            }
        }

        // Events must be in non-decreasing x order and inside the range.
        for w in outcome.events.windows(2) {
            prop_assert!(w[0].x <= w[1].x + 1e-12);
        }
        for ev in &outcome.events {
            prop_assert!(ev.x >= -1e-12 && ev.x <= x_max + 1e-12);
        }
    }

    /// A sweep with no outside lines reports exactly the pairwise crossings
    /// of the result lines that occur inside the range (counted with the
    /// adjacency rule), never more than `k(k-1)/2`.
    #[test]
    fn reorder_count_is_bounded(all_lines in lines_strategy(6)) {
        let k = all_lines.len();
        let initial = rank_at(&all_lines, 0.0);
        let ordered: Vec<Line> = initial.iter().map(|&l| all_lines[l as usize]).collect();
        let outcome = sweep_topk(ordered, vec![], 0.0, 1.0, 10_000);
        prop_assert!(outcome.events.len() <= k * (k - 1) / 2);
        // And the final order matches brute force at x = 1.
        let final_order = outcome
            .events
            .last()
            .map(|e| e.order_after.clone())
            .unwrap_or_else(|| initial.clone());
        let expected = rank_at(&all_lines, 1.0);
        let val = |label: u64| all_lines[label as usize].eval(1.0);
        for (a, b) in final_order.iter().zip(&expected) {
            prop_assert!((val(*a) - val(*b)).abs() < 1e-9);
        }
    }
}
