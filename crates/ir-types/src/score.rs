//! Scores, ranked tuples and top-k result lists.
//!
//! The whole stack relies on one *total* order over `(score, tuple id)`
//! pairs: decreasing score, ties broken by increasing tuple id. Using the
//! same deterministic order everywhere guarantees that TA, the baseline
//! algorithms, CPT and the exhaustive oracle all agree on what "the" top-k
//! result is even in the presence of exact score ties.

use crate::ids::TupleId;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A tuple together with its score under a particular query.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RankedTuple {
    /// The tuple id.
    pub id: TupleId,
    /// Its score `S(d, q)`.
    pub score: f64,
}

impl RankedTuple {
    /// Convenience constructor.
    pub fn new(id: TupleId, score: f64) -> Self {
        RankedTuple { id, score }
    }
}

/// Total order on `f64` in *descending* direction (NaN sorts last).
///
/// Scores produced by the scoring function are always finite, but using a
/// total order avoids partial-comparison panics when sorting.
#[inline]
pub fn total_cmp_desc(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater, // NaN sorts after every real score
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// The canonical ranking order: decreasing score, ties broken by increasing
/// tuple id. Returns `Ordering::Less` when `a` ranks *before* (better than)
/// `b`.
#[inline]
pub fn score_cmp(a: &RankedTuple, b: &RankedTuple) -> Ordering {
    total_cmp_desc(a.score, b.score).then_with(|| a.id.cmp(&b.id))
}

/// An ordered top-k result list `R(q) = [d_1, ..., d_k]` in decreasing score
/// order (position 0 is the best tuple, position `k-1` is the paper's `d_k`).
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
#[must_use = "a top-k result should be inspected, not discarded"]
pub struct TopKResult {
    entries: Vec<RankedTuple>,
}

impl TopKResult {
    /// Creates a result from already ranked entries, re-sorting defensively
    /// with the canonical order.
    pub fn from_entries(mut entries: Vec<RankedTuple>) -> Self {
        entries.sort_by(score_cmp);
        TopKResult { entries }
    }

    /// Creates an empty result.
    pub fn empty() -> Self {
        TopKResult {
            entries: Vec::new(),
        }
    }

    /// Number of tuples in the result.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the result is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The ranked entries in decreasing score order.
    #[inline]
    pub fn entries(&self) -> &[RankedTuple] {
        &self.entries
    }

    /// The entry at rank `rank` (0-based: rank 0 is the top tuple).
    #[inline]
    pub fn at(&self, rank: usize) -> Option<&RankedTuple> {
        self.entries.get(rank)
    }

    /// The last (k-th) result tuple — the paper's `d_k`.
    #[inline]
    pub fn last(&self) -> Option<&RankedTuple> {
        self.entries.last()
    }

    /// The ordered list of tuple ids.
    pub fn ids(&self) -> Vec<TupleId> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// True if the result contains the given tuple.
    pub fn contains(&self, id: TupleId) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// The rank (0-based) of a tuple, if present.
    pub fn rank_of(&self, id: TupleId) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }

    /// True if the two results contain the same tuples in the same order
    /// (the paper's notion of "the result is preserved" when reorderings
    /// count as perturbations).
    pub fn same_ordering(&self, other: &TopKResult) -> bool {
        self.ids() == other.ids()
    }

    /// True if the two results contain the same *set* of tuples, regardless
    /// of ordering (the composition-only notion of Section 7.4).
    pub fn same_composition(&self, other: &TopKResult) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let mut a = self.ids();
        let mut b = other.ids();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

impl FromIterator<RankedTuple> for TopKResult {
    fn from_iter<T: IntoIterator<Item = RankedTuple>>(iter: T) -> Self {
        TopKResult::from_entries(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(id: u32, score: f64) -> RankedTuple {
        RankedTuple::new(TupleId(id), score)
    }

    #[test]
    fn canonical_order_breaks_ties_by_id() {
        let a = rt(3, 0.5);
        let b = rt(1, 0.5);
        assert_eq!(score_cmp(&a, &b), Ordering::Greater); // lower id ranks first
        assert_eq!(score_cmp(&b, &a), Ordering::Less);
        assert_eq!(score_cmp(&a, &a), Ordering::Equal);
    }

    #[test]
    fn higher_score_ranks_first() {
        let better = rt(9, 0.9);
        let worse = rt(1, 0.2);
        assert_eq!(score_cmp(&better, &worse), Ordering::Less);
    }

    #[test]
    fn from_entries_sorts_canonically() {
        let r = TopKResult::from_entries(vec![rt(2, 0.5), rt(0, 0.9), rt(1, 0.5)]);
        assert_eq!(
            r.ids(),
            vec![TupleId(0), TupleId(1), TupleId(2)],
            "0.9 first, then the two 0.5s by id"
        );
        assert_eq!(r.last().unwrap().id, TupleId(2));
        assert_eq!(r.at(0).unwrap().score, 0.9);
    }

    #[test]
    fn same_ordering_vs_same_composition() {
        let a = TopKResult::from_entries(vec![rt(0, 0.9), rt(1, 0.5)]);
        let b = TopKResult::from_entries(vec![rt(1, 0.9), rt(0, 0.5)]);
        assert!(!a.same_ordering(&b));
        assert!(a.same_composition(&b));
        let c = TopKResult::from_entries(vec![rt(0, 0.9), rt(2, 0.5)]);
        assert!(!a.same_composition(&c));
    }

    #[test]
    fn rank_and_contains() {
        let r = TopKResult::from_entries(vec![rt(4, 0.9), rt(7, 0.5)]);
        assert!(r.contains(TupleId(7)));
        assert!(!r.contains(TupleId(1)));
        assert_eq!(r.rank_of(TupleId(7)), Some(1));
        assert_eq!(r.rank_of(TupleId(4)), Some(0));
        assert_eq!(r.rank_of(TupleId(1)), None);
    }

    #[test]
    fn total_cmp_desc_handles_nan_last() {
        let mut v = [0.3, f64::NAN, 0.9];
        v.sort_by(|a, b| total_cmp_desc(*a, *b));
        assert_eq!(v[0], 0.9);
        assert_eq!(v[1], 0.3);
        assert!(v[2].is_nan());
    }

    #[test]
    fn empty_result_behaviour() {
        let r = TopKResult::empty();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.last().is_none());
        assert!(r.same_ordering(&TopKResult::empty()));
    }
}
