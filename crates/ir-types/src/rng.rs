//! One shared seeded RNG for every deterministic draw in the workspace.
//!
//! Several layers need a tiny, dependency-free source of reproducible
//! pseudo-randomness: the fault planner scatters transient read faults over
//! an operation range, the subscription fleet shuffles its recompute order,
//! and the cluster simulator jitters message delivery. All of them use the
//! same MMIX linear congruential generator (Knuth's `a = 6364136223846793005`,
//! `c = 1442695040888963407`); this module is the single home for it.
//!
//! Two seeding conventions exist historically and both are preserved
//! bit-for-bit, because serialized fault plans and committed bench baselines
//! depend on the exact draw sequences:
//!
//! * [`SeededLcg::scatter`] — the fault-plan convention: the state starts at
//!   `seed * 0x5851_f42d_4c95_7f2d + 1` and draws are the raw 64-bit state
//!   (consumers reduce with `% range`).
//! * [`SeededLcg::mixed`] — the fleet/simulator convention: the state starts
//!   at `seed ^ 0x9E37_79B9_7F4A_7C15` (the golden-ratio constant, so that
//!   nearby seeds such as consecutive sequence numbers diverge immediately)
//!   and draws take the state's upper bits (`state >> 11`), which are the
//!   well-mixed ones in an LCG.

/// Knuth's MMIX multiplier.
pub const MMIX_MULTIPLIER: u64 = 6_364_136_223_846_793_005;
/// Knuth's MMIX increment.
pub const MMIX_INCREMENT: u64 = 1_442_695_040_888_963_407;

/// A seeded MMIX linear congruential generator.
///
/// Deliberately minimal — not cryptographic, not `rand`-compatible — just a
/// deterministic stream of 64-bit values that is identical on every platform
/// and cheap enough to construct per draw site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeededLcg {
    state: u64,
}

impl SeededLcg {
    /// Starts from a raw state, with no seed conditioning at all.
    pub const fn from_state(state: u64) -> Self {
        SeededLcg { state }
    }

    /// The fault-plan seeding: multiply by the PCG default multiplier and
    /// add one, so that seed 0 still produces a non-trivial stream. Draws
    /// pair with [`SeededLcg::next_state`].
    pub const fn scatter(seed: u64) -> Self {
        SeededLcg {
            state: seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1),
        }
    }

    /// The fleet/simulator seeding: XOR with the 64-bit golden-ratio
    /// constant so that structured seeds (sequence numbers, shard ids)
    /// decorrelate. Draws pair with [`SeededLcg::next_mixed`].
    pub const fn mixed(seed: u64) -> Self {
        SeededLcg {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Advances one MMIX step and returns the full 64-bit state.
    ///
    /// The low bits of an LCG state are weak (the lowest bit alternates);
    /// prefer [`SeededLcg::next_mixed`] unless a historical sequence depends on
    /// the raw state.
    pub fn next_state(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(MMIX_MULTIPLIER)
            .wrapping_add(MMIX_INCREMENT);
        self.state
    }

    /// Advances one MMIX step and returns the well-mixed upper bits
    /// (`state >> 11`, a 53-bit value).
    pub fn next_mixed(&mut self) -> u64 {
        self.next_state() >> 11
    }

    /// A draw in `[0, bound)` from the well-mixed bits. `bound` 0 yields 0
    /// rather than panicking, so callers can pass computed (possibly empty)
    /// ranges.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_mixed() % bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_matches_the_historical_fault_plan_sequence() {
        // The exact inline sequence `FaultPlan::transient_reads` shipped
        // with: state = seed * 0x5851_f42d_4c95_7f2d + 1, then raw MMIX
        // states. Serialized fault plans depend on it.
        let seed = 0xFA_u64;
        let mut expected_state = seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
        let mut lcg = SeededLcg::scatter(seed);
        for _ in 0..16 {
            expected_state = expected_state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            assert_eq!(lcg.next_state(), expected_state);
        }
    }

    #[test]
    fn mixed_matches_the_historical_fleet_sequence() {
        // The exact inline sequence the fleet's `Lcg` shipped with:
        // state = seed ^ golden ratio, draws are state >> 11.
        let seed = 0x5EED_u64;
        let mut expected_state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut lcg = SeededLcg::mixed(seed);
        for _ in 0..16 {
            expected_state = expected_state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            assert_eq!(lcg.next_mixed(), expected_state >> 11);
        }
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut lcg = SeededLcg::mixed(1);
            (0..8).map(|_| lcg.next_mixed()).collect()
        };
        let b: Vec<u64> = {
            let mut lcg = SeededLcg::mixed(1);
            (0..8).map(|_| lcg.next_mixed()).collect()
        };
        let c: Vec<u64> = {
            let mut lcg = SeededLcg::mixed(2);
            (0..8).map(|_| lcg.next_mixed()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn next_below_is_in_range_and_total_on_zero() {
        let mut lcg = SeededLcg::mixed(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..32 {
                assert!(lcg.next_below(bound) < bound);
            }
        }
        assert_eq!(lcg.next_below(0), 0);
    }
}
