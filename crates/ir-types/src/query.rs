//! Query vectors for subspace top-k queries.
//!
//! A query is a weight vector `q` in `[0, 1]^m` with `qlen << m` non-zero
//! weights (the *query dimensions*). The score of a tuple is the dot product
//! `S(d, q) = q · d`, and immutable regions are computed per query dimension.

use crate::error::{IrError, IrResult};
use crate::ids::DimId;
use crate::tuple::SparseVector;
use serde::{Deserialize, Serialize};

/// A subspace top-k query: the non-zero weights plus the requested result
/// size `k`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryVector {
    weights: SparseVector,
    k: usize,
}

/// Builder for [`QueryVector`].
#[derive(Debug, Default)]
#[must_use = "a query builder does nothing until `build` is called"]
pub struct QueryBuilder {
    pairs: Vec<(u32, f64)>,
    k: usize,
}

impl QueryBuilder {
    /// Starts a query requesting the top `k` tuples.
    pub fn new(k: usize) -> Self {
        QueryBuilder {
            pairs: Vec::new(),
            k,
        }
    }

    /// Adds (or accumulates) a weight on a dimension.
    pub fn weight(mut self, dim: u32, weight: f64) -> Self {
        self.pairs.push((dim, weight));
        self
    }

    /// Finalises the query, validating the weights.
    pub fn build(self) -> IrResult<QueryVector> {
        QueryVector::new(self.pairs, self.k)
    }
}

impl QueryVector {
    /// Creates a query from `(dimension, weight)` pairs and a result size.
    ///
    /// Weights must lie in `(0, 1]`; zero weights are dropped (a dimension
    /// with zero weight is simply not a query dimension). Returns an error if
    /// no positive weight remains or `k == 0`.
    pub fn new<I>(weights: I, k: usize) -> IrResult<Self>
    where
        I: IntoIterator<Item = (u32, f64)>,
    {
        if k == 0 {
            return Err(IrError::InvalidK {
                k,
                cardinality: usize::MAX,
            });
        }
        let weights = SparseVector::from_pairs(weights)?;
        if weights.is_empty() {
            return Err(IrError::EmptyQuery);
        }
        Ok(QueryVector { weights, k })
    }

    /// The query of the paper's running example: `q = <0.8, 0.5>`, `k = 2`.
    pub fn running_example() -> Self {
        QueryVector::new([(0, 0.8), (1, 0.5)], 2).expect("running example query is valid")
    }

    /// The requested result size `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Returns a copy of the query with a different `k`.
    pub fn with_k(&self, k: usize) -> IrResult<Self> {
        if k == 0 {
            return Err(IrError::InvalidK {
                k,
                cardinality: usize::MAX,
            });
        }
        Ok(QueryVector {
            weights: self.weights.clone(),
            k,
        })
    }

    /// Number of query dimensions (`qlen` in the paper).
    #[inline]
    pub fn qlen(&self) -> usize {
        self.weights.nnz()
    }

    /// The weight of dimension `dim` (zero if it is not a query dimension).
    #[inline]
    pub fn weight(&self, dim: DimId) -> f64 {
        self.weights.get(dim)
    }

    /// Iterates over the query dimensions and their weights.
    #[inline]
    pub fn dims(&self) -> impl Iterator<Item = (DimId, f64)> + '_ {
        self.weights.iter()
    }

    /// The query dimensions only (without weights).
    pub fn dim_ids(&self) -> Vec<DimId> {
        self.weights.iter().map(|(d, _)| d).collect()
    }

    /// The underlying sparse weight vector.
    #[inline]
    pub fn weights(&self) -> &SparseVector {
        &self.weights
    }

    /// Scores a tuple: `S(d, q) = q · d`.
    #[inline]
    pub fn score(&self, tuple: &SparseVector) -> f64 {
        self.weights.dot(tuple)
    }

    /// Returns a copy of the query with dimension `dim`'s weight shifted by
    /// `delta` (clamped into `[0, 1]`). Used by the iterative φ > 0 baseline
    /// and by refinement examples.
    pub fn with_weight_shift(&self, dim: DimId, delta: f64) -> IrResult<Self> {
        let mut pairs: Vec<(u32, f64)> = Vec::with_capacity(self.weights.nnz() + 1);
        let mut found = false;
        for (d, w) in self.weights.iter() {
            if d == dim {
                found = true;
                let shifted = (w + delta).clamp(0.0, 1.0);
                if shifted > 0.0 {
                    pairs.push((d.0, shifted));
                }
            } else {
                pairs.push((d.0, w));
            }
        }
        if !found {
            let shifted = delta.clamp(0.0, 1.0);
            if shifted > 0.0 {
                pairs.push((dim.0, shifted));
            }
        }
        QueryVector::new(pairs, self.k)
    }

    /// Validates that every query dimension exists in a dataset with the
    /// given dimensionality.
    pub fn validate_against(&self, dimensionality: u32) -> IrResult<()> {
        for (d, _) in self.weights.iter() {
            if d.0 >= dimensionality {
                return Err(IrError::UnknownDimension {
                    dim: d.0,
                    dimensionality,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::ids::TupleId;

    #[test]
    fn running_example_query_scores_match_figure_2() {
        let q = QueryVector::running_example();
        let d = Dataset::running_example();
        let scores: Vec<f64> = d.iter().map(|(_, t)| q.score(t)).collect();
        assert!((scores[0] - 0.80).abs() < 1e-12); // d1
        assert!((scores[1] - 0.81).abs() < 1e-12); // d2
        assert!((scores[2] - 0.48).abs() < 1e-12); // d3
        assert!((scores[3] - 0.38).abs() < 1e-12); // d4
    }

    #[test]
    fn zero_weights_are_dropped() {
        let q = QueryVector::new([(0, 0.5), (3, 0.0), (7, 0.2)], 5).unwrap();
        assert_eq!(q.qlen(), 2);
        assert_eq!(q.weight(DimId(3)), 0.0);
        assert_eq!(q.dim_ids(), vec![DimId(0), DimId(7)]);
    }

    #[test]
    fn empty_query_is_rejected() {
        assert!(matches!(
            QueryVector::new([(0, 0.0)], 3).unwrap_err(),
            IrError::EmptyQuery
        ));
        assert!(matches!(
            QueryVector::new([(0, 0.5)], 0).unwrap_err(),
            IrError::InvalidK { .. }
        ));
    }

    #[test]
    fn builder_accumulates_weights() {
        let q = QueryBuilder::new(10)
            .weight(2, 0.3)
            .weight(5, 0.6)
            .build()
            .unwrap();
        assert_eq!(q.k(), 10);
        assert_eq!(q.qlen(), 2);
        assert_eq!(q.weight(DimId(5)), 0.6);
    }

    #[test]
    fn weight_shift_moves_a_single_dimension() {
        let q = QueryVector::running_example();
        let shifted = q.with_weight_shift(DimId(0), 0.1).unwrap();
        assert!((shifted.weight(DimId(0)) - 0.9).abs() < 1e-12);
        assert!((shifted.weight(DimId(1)) - 0.5).abs() < 1e-12);
        // Shift below zero removes the dimension entirely (weight clamped to 0).
        let removed = q.with_weight_shift(DimId(0), -0.9).unwrap();
        assert_eq!(removed.qlen(), 1);
    }

    #[test]
    fn weight_shift_clamps_to_one() {
        let q = QueryVector::running_example();
        let s = q.with_weight_shift(DimId(1), 0.9).unwrap();
        assert!((s.weight(DimId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_against_checks_dimensionality() {
        let q = QueryVector::new([(0, 0.5), (9, 0.5)], 1).unwrap();
        assert!(q.validate_against(10).is_ok());
        assert!(q.validate_against(5).is_err());
    }

    #[test]
    fn with_k_changes_only_k() {
        let q = QueryVector::running_example();
        let q5 = q.with_k(5).unwrap();
        assert_eq!(q5.k(), 5);
        assert_eq!(q5.qlen(), q.qlen());
        assert!(q.with_k(0).is_err());
    }

    #[test]
    fn score_of_tuple_without_query_dims_is_zero() {
        let q = QueryVector::new([(0, 0.4)], 1).unwrap();
        let t = SparseVector::from_pairs([(5, 0.9)]).unwrap();
        assert_eq!(q.score(&t), 0.0);
        let d = Dataset::running_example();
        assert!(q.score(d.tuple(TupleId(0)).unwrap()) > 0.0);
    }
}
