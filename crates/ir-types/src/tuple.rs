//! Sparse vectors: the representation of both data tuples and query vectors.
//!
//! The evaluation datasets of the paper are extremely high-dimensional
//! (181,978 terms for WSJ, 9,693 features for KB) but each tuple has very few
//! non-zero coordinates, so a dense `[f64; m]` representation is out of the
//! question. A [`SparseVector`] stores only the non-zero `(dimension, value)`
//! pairs, sorted by dimension id, which makes dot products a merge-join and
//! point lookups a binary search.

use crate::error::{IrError, IrResult};
use crate::ids::DimId;
use serde::{Deserialize, Serialize};

/// A sparse vector in `[0, 1]^m`: the non-zero coordinates, sorted by
/// dimension id.
///
/// Invariants (enforced by the constructors):
/// * entries are strictly sorted by dimension id (no duplicates),
/// * every stored value is finite and inside `[0, 1]`,
/// * zero values are never stored.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(DimId, f64)>,
}

impl SparseVector {
    /// Creates an empty (all-zero) vector.
    pub fn new() -> Self {
        SparseVector {
            entries: Vec::new(),
        }
    }

    /// Builds a sparse vector from arbitrary `(dimension, value)` pairs.
    ///
    /// The pairs may arrive in any order; zero values are dropped. Returns an
    /// error if a value is outside `[0, 1]`, not finite, or a dimension is
    /// repeated with conflicting values.
    pub fn from_pairs<I>(pairs: I) -> IrResult<Self>
    where
        I: IntoIterator<Item = (u32, f64)>,
    {
        let mut entries: Vec<(DimId, f64)> = Vec::new();
        for (dim, value) in pairs {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(IrError::ValueOutOfRange {
                    what: format!("coordinate in dimension {dim}"),
                    value,
                });
            }
            if value == 0.0 {
                continue;
            }
            entries.push((DimId(dim), value));
        }
        entries.sort_by_key(|(d, _)| *d);
        for window in entries.windows(2) {
            if window[0].0 == window[1].0 {
                return Err(IrError::DuplicateDimension {
                    dim: window[0].0 .0,
                });
            }
        }
        Ok(SparseVector { entries })
    }

    /// Builds a sparse vector from a dense slice; index `i` becomes
    /// dimension `i`.
    pub fn from_dense(values: &[f64]) -> IrResult<Self> {
        Self::from_pairs(values.iter().enumerate().map(|(i, &v)| (i as u32, v)))
    }

    /// Returns the value of the given dimension (zero if not stored).
    #[inline]
    pub fn get(&self, dim: DimId) -> f64 {
        match self.entries.binary_search_by_key(&dim, |(d, _)| *d) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Number of non-zero coordinates.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True if the vector has no non-zero coordinate.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the non-zero `(dimension, value)` pairs in increasing
    /// dimension order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (DimId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The raw sorted entries.
    #[inline]
    pub fn entries(&self) -> &[(DimId, f64)] {
        &self.entries
    }

    /// Largest dimension id present, if any.
    pub fn max_dim(&self) -> Option<DimId> {
        self.entries.last().map(|(d, _)| *d)
    }

    /// Dot product with another sparse vector (merge-join over the two sorted
    /// entry lists).
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let mut sum = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        let a = &self.entries;
        let b = &other.entries;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// The L1 norm (sum of coordinates); coordinates are non-negative.
    pub fn l1_norm(&self) -> f64 {
        self.entries.iter().map(|(_, v)| v).sum()
    }

    /// The L2 norm.
    pub fn l2_norm(&self) -> f64 {
        self.entries.iter().map(|(_, v)| v * v).sum::<f64>().sqrt()
    }

    /// Returns a copy with every value divided by `max`, clamping to 1.0 for
    /// rounding safety. Used by generators to normalise raw weights (e.g.
    /// TF-IDF) into the `[0, 1]` domain.
    pub fn normalized_by(&self, max: f64) -> IrResult<Self> {
        if max.is_nan() || max <= 0.0 {
            return Err(IrError::InvalidConfig(format!(
                "normalisation constant must be positive, got {max}"
            )));
        }
        SparseVector::from_pairs(self.entries.iter().map(|(d, v)| (d.0, (v / max).min(1.0))))
    }

    /// Returns a copy with the coordinate in `dim` set to `value` — the
    /// canonical single-coordinate write of the update model. A `value` of
    /// `0.0` removes the coordinate (zeros are never stored); any other
    /// value must be finite and inside `[0, 1]`.
    pub fn with_coordinate(&self, dim: DimId, value: f64) -> IrResult<Self> {
        SparseVector::from_pairs(
            self.entries
                .iter()
                .filter(|(d, _)| *d != dim)
                .map(|(d, v)| (d.0, *v))
                .chain(std::iter::once((dim.0, value))),
        )
    }

    /// Estimated in-memory footprint of the vector in bytes (entries only).
    pub fn approx_bytes(&self) -> usize {
        self.entries.len() * (std::mem::size_of::<DimId>() + std::mem::size_of::<f64>())
    }
}

impl FromIterator<(DimId, f64)> for SparseVector {
    /// Collects pairs assumed to be valid; panics on invalid input. Prefer
    /// [`SparseVector::from_pairs`] for untrusted data.
    fn from_iter<T: IntoIterator<Item = (DimId, f64)>>(iter: T) -> Self {
        SparseVector::from_pairs(iter.into_iter().map(|(d, v)| (d.0, v)))
            .expect("invalid sparse vector literal")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sv(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn from_pairs_sorts_and_drops_zeros() {
        let v = sv(&[(5, 0.5), (1, 0.25), (3, 0.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.entries()[0].0, DimId(1));
        assert_eq!(v.entries()[1].0, DimId(5));
        assert_eq!(v.get(DimId(3)), 0.0);
    }

    #[test]
    fn duplicate_dimension_is_rejected() {
        let err = SparseVector::from_pairs([(2, 0.1), (2, 0.2)]).unwrap_err();
        assert!(matches!(err, IrError::DuplicateDimension { dim: 2 }));
    }

    #[test]
    fn out_of_range_value_is_rejected() {
        assert!(SparseVector::from_pairs([(0, 1.5)]).is_err());
        assert!(SparseVector::from_pairs([(0, -0.1)]).is_err());
        assert!(SparseVector::from_pairs([(0, f64::NAN)]).is_err());
    }

    #[test]
    fn dot_product_matches_running_example() {
        // d1 = <0.8, 0.32>, q = <0.8, 0.5> => score 0.8.
        let d1 = sv(&[(0, 0.8), (1, 0.32)]);
        let q = sv(&[(0, 0.8), (1, 0.5)]);
        assert!((d1.dot(&q) - 0.8).abs() < 1e-12);
        // d2 = <0.7, 0.5> => 0.81.
        let d2 = sv(&[(0, 0.7), (1, 0.5)]);
        assert!((d2.dot(&q) - 0.81).abs() < 1e-12);
    }

    #[test]
    fn dot_product_with_disjoint_support_is_zero() {
        let a = sv(&[(0, 0.4), (2, 0.3)]);
        let b = sv(&[(1, 0.9), (3, 0.2)]);
        assert_eq!(a.dot(&b), 0.0);
    }

    #[test]
    fn from_dense_maps_indices() {
        let v = SparseVector::from_dense(&[0.0, 0.5, 0.0, 0.25]).unwrap();
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(DimId(1)), 0.5);
        assert_eq!(v.get(DimId(3)), 0.25);
        assert_eq!(v.max_dim(), Some(DimId(3)));
    }

    #[test]
    fn norms_are_consistent() {
        let v = sv(&[(0, 0.3), (1, 0.4)]);
        assert!((v.l1_norm() - 0.7).abs() < 1e-12);
        assert!((v.l2_norm() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalized_by_scales_values() {
        let raw = SparseVector::from_pairs([(0, 0.9), (1, 0.3)]).unwrap();
        let norm = raw.normalized_by(0.9).unwrap();
        assert!((norm.get(DimId(0)) - 1.0).abs() < 1e-12);
        assert!((norm.get(DimId(1)) - 1.0 / 3.0).abs() < 1e-12);
        assert!(raw.normalized_by(0.0).is_err());
    }

    #[test]
    fn approx_bytes_scales_with_nnz() {
        let small = sv(&[(0, 0.1)]);
        let large = sv(&[(0, 0.1), (1, 0.2), (2, 0.3)]);
        assert!(large.approx_bytes() > small.approx_bytes());
    }

    proptest! {
        #[test]
        fn dot_is_commutative(
            a in proptest::collection::vec((0u32..64, 0.0f64..=1.0), 0..16),
            b in proptest::collection::vec((0u32..64, 0.0f64..=1.0), 0..16),
        ) {
            // Deduplicate dimensions to satisfy the constructor invariant.
            let dedup = |pairs: Vec<(u32, f64)>| {
                let mut seen = std::collections::BTreeMap::new();
                for (d, v) in pairs { seen.entry(d).or_insert(v); }
                seen.into_iter().collect::<Vec<_>>()
            };
            let va = SparseVector::from_pairs(dedup(a)).unwrap();
            let vb = SparseVector::from_pairs(dedup(b)).unwrap();
            let ab = va.dot(&vb);
            let ba = vb.dot(&va);
            prop_assert!((ab - ba).abs() < 1e-12);
        }

        #[test]
        fn get_agrees_with_iter(
            pairs in proptest::collection::btree_map(0u32..128, 0.0001f64..=1.0, 0..32)
        ) {
            let v = SparseVector::from_pairs(pairs.iter().map(|(&d, &x)| (d, x))).unwrap();
            for (d, x) in v.iter() {
                prop_assert_eq!(v.get(d), x);
            }
            prop_assert_eq!(v.nnz(), pairs.len());
        }
    }
}
