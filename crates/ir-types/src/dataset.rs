//! In-memory dataset: the collection `D` of sparse tuples.
//!
//! The dataset is the logical collection; the physical layout used by the
//! algorithms (inverted lists per dimension + external tuple file) lives in
//! `ir-storage` and is built *from* a [`Dataset`].

use crate::error::{IrError, IrResult};
use crate::ids::{DimId, TupleId};
use crate::tuple::SparseVector;
use serde::{Deserialize, Serialize};

/// A collection of sparse tuples over a fixed dimensionality `m`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    dimensionality: u32,
    tuples: Vec<SparseVector>,
}

/// Incremental builder for [`Dataset`].
#[derive(Debug, Default)]
#[must_use = "a dataset builder does nothing until `build` is called"]
pub struct DatasetBuilder {
    dimensionality: u32,
    tuples: Vec<SparseVector>,
}

/// Summary statistics of a dataset, used by generators, documentation and the
/// experiment harness.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of tuples.
    pub cardinality: usize,
    /// Number of dimensions.
    pub dimensionality: u32,
    /// Total number of non-zero coordinates.
    pub total_nnz: usize,
    /// Average non-zero coordinates per tuple.
    pub avg_nnz_per_tuple: f64,
    /// Number of dimensions that have at least one non-zero coordinate.
    pub populated_dims: usize,
    /// Largest coordinate value present in the dataset.
    pub max_value: f64,
}

impl DatasetBuilder {
    /// Creates a builder for a dataset over `dimensionality` dimensions.
    pub fn new(dimensionality: u32) -> Self {
        DatasetBuilder {
            dimensionality,
            tuples: Vec::new(),
        }
    }

    /// Reserves capacity for `n` tuples.
    pub fn with_capacity(dimensionality: u32, n: usize) -> Self {
        DatasetBuilder {
            dimensionality,
            tuples: Vec::with_capacity(n),
        }
    }

    /// Appends a tuple, validating that its coordinates fit the declared
    /// dimensionality. Returns the id assigned to the tuple.
    pub fn push(&mut self, tuple: SparseVector) -> IrResult<TupleId> {
        if let Some(max_dim) = tuple.max_dim() {
            if max_dim.0 >= self.dimensionality {
                return Err(IrError::UnknownDimension {
                    dim: max_dim.0,
                    dimensionality: self.dimensionality,
                });
            }
        }
        let id = TupleId::from(self.tuples.len());
        self.tuples.push(tuple);
        Ok(id)
    }

    /// Appends a tuple given as raw `(dimension, value)` pairs.
    pub fn push_pairs<I>(&mut self, pairs: I) -> IrResult<TupleId>
    where
        I: IntoIterator<Item = (u32, f64)>,
    {
        let tuple = SparseVector::from_pairs(pairs)?;
        self.push(tuple)
    }

    /// Finalises the dataset.
    pub fn build(self) -> Dataset {
        Dataset {
            dimensionality: self.dimensionality,
            tuples: self.tuples,
        }
    }
}

impl Dataset {
    /// Builds a dataset directly from tuples (validating dimensionality).
    pub fn from_tuples(dimensionality: u32, tuples: Vec<SparseVector>) -> IrResult<Self> {
        let mut builder = DatasetBuilder::with_capacity(dimensionality, tuples.len());
        for t in tuples {
            builder.push(t)?;
        }
        Ok(builder.build())
    }

    /// Builds the two-dimensional running example of Figure 1 of the paper:
    /// `d1 = <0.8, 0.32>`, `d2 = <0.7, 0.5>`, `d3 = <0.1, 0.8>`,
    /// `d4 = <0.1, 0.6>`.
    ///
    /// Tuple ids are zero-based, so the paper's `d1` is `TupleId(0)` and so
    /// on. This dataset is used extensively by documentation examples and
    /// tests because the paper traces TA, Scan and the immutable regions on
    /// it in full detail (Figures 1, 2 and 5).
    pub fn running_example() -> Self {
        let tuples = vec![
            SparseVector::from_pairs([(0, 0.8), (1, 0.32)]).unwrap(),
            SparseVector::from_pairs([(0, 0.7), (1, 0.5)]).unwrap(),
            SparseVector::from_pairs([(0, 0.1), (1, 0.8)]).unwrap(),
            SparseVector::from_pairs([(0, 0.1), (1, 0.6)]).unwrap(),
        ];
        Dataset::from_tuples(2, tuples).expect("running example is valid")
    }

    /// Number of tuples in the dataset (the paper's `n`).
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.tuples.len()
    }

    /// Number of dimensions (the paper's `m`).
    #[inline]
    pub fn dimensionality(&self) -> u32 {
        self.dimensionality
    }

    /// Returns the tuple with the given id.
    #[inline]
    pub fn tuple(&self, id: TupleId) -> IrResult<&SparseVector> {
        self.tuples
            .get(id.index())
            .ok_or(IrError::UnknownTuple { tuple: id.0 })
    }

    /// Returns the tuple with the given id, panicking if absent. Intended for
    /// internal hot paths where the id is known to be valid.
    #[inline]
    pub fn tuple_unchecked(&self, id: TupleId) -> &SparseVector {
        &self.tuples[id.index()]
    }

    /// The coordinate of `tuple` in dimension `dim` (zero if not stored).
    #[inline]
    pub fn coordinate(&self, tuple: TupleId, dim: DimId) -> f64 {
        self.tuples[tuple.index()].get(dim)
    }

    /// Iterates over `(TupleId, &SparseVector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &SparseVector)> {
        self.tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (TupleId::from(i), t))
    }

    /// All tuple ids of the dataset.
    pub fn tuple_ids(&self) -> impl Iterator<Item = TupleId> {
        (0..self.tuples.len() as u32).map(TupleId)
    }

    /// Mutable access to the tuple table for the update model (the
    /// [`crate::update`] module is the only consumer; it re-validates every
    /// mutation against the declared dimensionality).
    pub(crate) fn tuples_mut(&mut self) -> &mut Vec<SparseVector> {
        &mut self.tuples
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> DatasetStats {
        let total_nnz: usize = self.tuples.iter().map(|t| t.nnz()).sum();
        let mut populated = std::collections::HashSet::new();
        let mut max_value: f64 = 0.0;
        for t in &self.tuples {
            for (d, v) in t.iter() {
                populated.insert(d);
                if v > max_value {
                    max_value = v;
                }
            }
        }
        DatasetStats {
            cardinality: self.tuples.len(),
            dimensionality: self.dimensionality,
            total_nnz,
            avg_nnz_per_tuple: if self.tuples.is_empty() {
                0.0
            } else {
                total_nnz as f64 / self.tuples.len() as f64
            },
            populated_dims: populated.len(),
            max_value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_matches_figure_1() {
        let d = Dataset::running_example();
        assert_eq!(d.cardinality(), 4);
        assert_eq!(d.dimensionality(), 2);
        assert_eq!(d.coordinate(TupleId(0), DimId(0)), 0.8);
        assert_eq!(d.coordinate(TupleId(0), DimId(1)), 0.32);
        assert_eq!(d.coordinate(TupleId(2), DimId(1)), 0.8);
        assert_eq!(d.coordinate(TupleId(3), DimId(0)), 0.1);
    }

    #[test]
    fn builder_rejects_out_of_range_dimension() {
        let mut b = DatasetBuilder::new(2);
        let err = b.push_pairs([(5, 0.3)]).unwrap_err();
        assert!(matches!(err, IrError::UnknownDimension { dim: 5, .. }));
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = DatasetBuilder::new(3);
        let id0 = b.push_pairs([(0, 0.1)]).unwrap();
        let id1 = b.push_pairs([(1, 0.2)]).unwrap();
        assert_eq!(id0, TupleId(0));
        assert_eq!(id1, TupleId(1));
        let d = b.build();
        assert_eq!(d.cardinality(), 2);
    }

    #[test]
    fn unknown_tuple_lookup_errors() {
        let d = Dataset::running_example();
        assert!(d.tuple(TupleId(99)).is_err());
        assert!(d.tuple(TupleId(3)).is_ok());
    }

    #[test]
    fn stats_are_correct_for_running_example() {
        let stats = Dataset::running_example().stats();
        assert_eq!(stats.cardinality, 4);
        assert_eq!(stats.dimensionality, 2);
        assert_eq!(stats.total_nnz, 8);
        assert_eq!(stats.populated_dims, 2);
        assert!((stats.avg_nnz_per_tuple - 2.0).abs() < 1e-12);
        assert_eq!(stats.max_value, 0.8);
    }

    #[test]
    fn iteration_yields_all_tuples_in_order() {
        let d = Dataset::running_example();
        let ids: Vec<_> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(d.tuple_ids().count(), 4);
    }

    #[test]
    fn serde_roundtrip_preserves_dataset() {
        let d = Dataset::running_example();
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cardinality(), d.cardinality());
        assert_eq!(back.coordinate(TupleId(1), DimId(1)), 0.5);
    }
}
