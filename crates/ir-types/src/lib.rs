//! # ir-types
//!
//! Core data model shared by every crate in the immutable-regions workspace.
//!
//! The model follows Section 3 of *Computing Immutable Regions for Subspace
//! Top-k Queries* (Mouratidis & Pang, VLDB 2013):
//!
//! * a dataset `D` is a collection of tuples, each a vector in `[0, 1]^m`,
//! * dimensionality `m` is high (tens or hundreds of thousands of
//!   dimensions), so tuples are stored **sparsely** — only non-zero
//!   coordinates are materialised,
//! * a query is a vector of non-negative weights with `qlen << m` non-zero
//!   entries (the *query dimensions*),
//! * the score of a tuple is the dot product of tuple and query vectors, and
//!   the top-k result is the list of the `k` highest-scoring tuples in
//!   decreasing score order.
//!
//! The crate deliberately contains almost no algorithms — only the
//! vocabulary types (`SparseVector`, `Dataset`, `QueryVector`,
//! `RankedTuple`, `TopKResult`), the logical update model ([`TupleUpdate`])
//! and deterministic ordering helpers used by every layer above.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dataset;
pub mod error;
pub mod ids;
pub mod query;
pub mod rng;
pub mod score;
pub mod tuple;
pub mod update;

pub use dataset::{Dataset, DatasetBuilder, DatasetStats};
pub use error::{IrError, IrResult};
pub use ids::{DimId, TupleId};
pub use query::{QueryBuilder, QueryVector};
pub use rng::SeededLcg;
pub use score::{score_cmp, total_cmp_desc, RankedTuple, TopKResult};
pub use tuple::SparseVector;
pub use update::TupleUpdate;
