//! Error type shared across the workspace.
//!
//! The workspace avoids panicking on recoverable conditions (malformed
//! queries, out-of-range values, storage failures) and instead threads a
//! single [`IrError`] enum through the public APIs.

use std::fmt;
use std::io;

/// Convenient result alias used throughout the workspace.
pub type IrResult<T> = Result<T, IrError>;

/// Errors produced by the immutable-region stack.
#[derive(Debug)]
pub enum IrError {
    /// A coordinate or weight was outside the `[0, 1]` domain required by the
    /// paper's data model.
    ValueOutOfRange {
        /// Human readable description of the offending entity.
        what: String,
        /// The value that was rejected.
        value: f64,
    },
    /// A query referenced a dimension that does not exist in the dataset.
    UnknownDimension {
        /// The offending dimension index.
        dim: u32,
        /// Number of dimensions in the dataset.
        dimensionality: u32,
    },
    /// A tuple id was not present in the dataset / tuple store.
    UnknownTuple {
        /// The offending tuple index.
        tuple: u32,
    },
    /// The query has no dimension with a strictly positive weight.
    EmptyQuery,
    /// `k` was zero or exceeded the dataset cardinality.
    InvalidK {
        /// Requested result size.
        k: usize,
        /// Dataset cardinality.
        cardinality: usize,
    },
    /// A sparse vector listed the same dimension twice.
    DuplicateDimension {
        /// The duplicated dimension index.
        dim: u32,
    },
    /// Underlying storage failure (page store, file I/O, serialization).
    Storage(String),
    /// Wrapper around `std::io::Error` raised by the disk-backed page store.
    Io(io::Error),
    /// Invalid configuration of an algorithm or generator.
    InvalidConfig(String),
    /// A page access named a page the store has never allocated.
    PageOutOfBounds {
        /// The requested page index.
        page: u32,
        /// Number of pages the store holds.
        num_pages: u32,
    },
    /// A physical page failed its checksum (or a page file failed its header
    /// validation): the stored bytes are not what was written.
    Corruption {
        /// The corrupted page, when the failure is attributable to one
        /// (`None` for file-level damage such as a bad header).
        page: Option<u32>,
        /// What exactly failed to validate.
        detail: String,
    },
    /// A worker thread panicked while executing a job; the panic was caught
    /// at the driver boundary and the remaining jobs were unaffected.
    WorkerPanicked {
        /// Which job panicked (e.g. `"query 3"` or `"dimension 1"`).
        job: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A transient storage fault persisted through every allowed retry.
    RetryExhausted {
        /// How many attempts were made (including the first).
        attempts: u32,
        /// The transient error observed on the final attempt.
        source: Box<IrError>,
    },
}

impl IrError {
    /// Whether this error is *transient*: the same operation may well
    /// succeed if simply retried (interrupted syscalls, timeouts,
    /// momentarily unavailable devices). The buffer pool's `RetryPolicy`
    /// (in `ir-storage`) only retries errors for which this returns `true`;
    /// everything else —
    /// corruption, out-of-bounds accesses, permanent device failures — is
    /// surfaced immediately.
    pub fn is_transient(&self) -> bool {
        match self {
            IrError::Io(err) => matches!(
                err.kind(),
                io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::ValueOutOfRange { what, value } => {
                write!(f, "{what} has value {value} outside the [0, 1] domain")
            }
            IrError::UnknownDimension {
                dim,
                dimensionality,
            } => write!(
                f,
                "dimension {dim} is out of range for a dataset with {dimensionality} dimensions"
            ),
            IrError::UnknownTuple { tuple } => write!(f, "tuple {tuple} does not exist"),
            IrError::EmptyQuery => write!(f, "query has no positive weight"),
            IrError::InvalidK { k, cardinality } => write!(
                f,
                "k = {k} is invalid for a dataset with {cardinality} tuples"
            ),
            IrError::DuplicateDimension { dim } => {
                write!(
                    f,
                    "dimension {dim} appears more than once in a sparse vector"
                )
            }
            IrError::Storage(msg) => write!(f, "storage error: {msg}"),
            IrError::Io(err) => write!(f, "I/O error: {err}"),
            IrError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            IrError::PageOutOfBounds { page, num_pages } => {
                write!(
                    f,
                    "page {page} is out of bounds (store has {num_pages} pages)"
                )
            }
            IrError::Corruption { page, detail } => match page {
                Some(page) => write!(f, "corruption detected on page {page}: {detail}"),
                None => write!(f, "corruption detected: {detail}"),
            },
            IrError::WorkerPanicked { job, message } => {
                write!(f, "worker panicked while running {job}: {message}")
            }
            IrError::RetryExhausted { attempts, source } => write!(
                f,
                "transient storage fault persisted through {attempts} attempts: {source}"
            ),
        }
    }
}

impl std::error::Error for IrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IrError::Io(err) => Some(err),
            IrError::RetryExhausted { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for IrError {
    fn from(err: io::Error) -> Self {
        IrError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = IrError::UnknownDimension {
            dim: 12,
            dimensionality: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains("12"));
        assert!(msg.contains('4'));
    }

    #[test]
    fn io_error_converts_and_chains_source() {
        let err: IrError = io::Error::new(io::ErrorKind::NotFound, "missing page file").into();
        assert!(err.to_string().contains("missing page file"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn transience_is_limited_to_retryable_io_kinds() {
        let transient: IrError = io::Error::new(io::ErrorKind::Interrupted, "try again").into();
        assert!(transient.is_transient());
        let permanent: IrError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(!permanent.is_transient());
        assert!(!IrError::Storage("injected device failure".into()).is_transient());
        assert!(!IrError::Corruption {
            page: Some(3),
            detail: "checksum mismatch".into(),
        }
        .is_transient());
        // An exhausted retry is final even though its source was transient.
        let exhausted = IrError::RetryExhausted {
            attempts: 3,
            source: Box::new(transient),
        };
        assert!(!exhausted.is_transient());
    }

    #[test]
    fn corruption_display_names_the_page_when_known() {
        let with_page = IrError::Corruption {
            page: Some(12),
            detail: "checksum mismatch".to_string(),
        };
        assert!(with_page.to_string().contains("page 12"));
        assert!(with_page.to_string().contains("checksum mismatch"));
        let file_level = IrError::Corruption {
            page: None,
            detail: "bad magic".to_string(),
        };
        assert!(!file_level.to_string().contains("page"));
        assert!(file_level.to_string().contains("bad magic"));
    }

    #[test]
    fn worker_panicked_display_names_the_job() {
        let err = IrError::WorkerPanicked {
            job: "query 3".to_string(),
            message: "boom".to_string(),
        };
        let msg = err.to_string();
        assert!(msg.contains("query 3"));
        assert!(msg.contains("boom"));
    }

    #[test]
    fn retry_exhausted_chains_its_source() {
        let source: IrError = io::Error::new(io::ErrorKind::Interrupted, "flaky read").into();
        let err = IrError::RetryExhausted {
            attempts: 4,
            source: Box::new(source),
        };
        assert!(err.to_string().contains('4'));
        assert!(err.to_string().contains("flaky read"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn page_out_of_bounds_display_mentions_both_sides() {
        let err = IrError::PageOutOfBounds {
            page: 9,
            num_pages: 4,
        };
        assert!(err.to_string().contains('9'));
        assert!(err.to_string().contains('4'));
    }

    #[test]
    fn value_out_of_range_mentions_value() {
        let err = IrError::ValueOutOfRange {
            what: "coordinate of d3 in dim2".to_string(),
            value: 1.25,
        };
        assert!(err.to_string().contains("1.25"));
    }
}
