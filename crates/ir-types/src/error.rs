//! Error type shared across the workspace.
//!
//! The workspace avoids panicking on recoverable conditions (malformed
//! queries, out-of-range values, storage failures) and instead threads a
//! single [`IrError`] enum through the public APIs.

use std::fmt;
use std::io;

/// Convenient result alias used throughout the workspace.
pub type IrResult<T> = Result<T, IrError>;

/// Errors produced by the immutable-region stack.
#[derive(Debug)]
pub enum IrError {
    /// A coordinate or weight was outside the `[0, 1]` domain required by the
    /// paper's data model.
    ValueOutOfRange {
        /// Human readable description of the offending entity.
        what: String,
        /// The value that was rejected.
        value: f64,
    },
    /// A query referenced a dimension that does not exist in the dataset.
    UnknownDimension {
        /// The offending dimension index.
        dim: u32,
        /// Number of dimensions in the dataset.
        dimensionality: u32,
    },
    /// A tuple id was not present in the dataset / tuple store.
    UnknownTuple {
        /// The offending tuple index.
        tuple: u32,
    },
    /// The query has no dimension with a strictly positive weight.
    EmptyQuery,
    /// `k` was zero or exceeded the dataset cardinality.
    InvalidK {
        /// Requested result size.
        k: usize,
        /// Dataset cardinality.
        cardinality: usize,
    },
    /// A sparse vector listed the same dimension twice.
    DuplicateDimension {
        /// The duplicated dimension index.
        dim: u32,
    },
    /// Underlying storage failure (page store, file I/O, serialization).
    Storage(String),
    /// Wrapper around `std::io::Error` raised by the disk-backed page store.
    Io(io::Error),
    /// Invalid configuration of an algorithm or generator.
    InvalidConfig(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::ValueOutOfRange { what, value } => {
                write!(f, "{what} has value {value} outside the [0, 1] domain")
            }
            IrError::UnknownDimension {
                dim,
                dimensionality,
            } => write!(
                f,
                "dimension {dim} is out of range for a dataset with {dimensionality} dimensions"
            ),
            IrError::UnknownTuple { tuple } => write!(f, "tuple {tuple} does not exist"),
            IrError::EmptyQuery => write!(f, "query has no positive weight"),
            IrError::InvalidK { k, cardinality } => write!(
                f,
                "k = {k} is invalid for a dataset with {cardinality} tuples"
            ),
            IrError::DuplicateDimension { dim } => {
                write!(
                    f,
                    "dimension {dim} appears more than once in a sparse vector"
                )
            }
            IrError::Storage(msg) => write!(f, "storage error: {msg}"),
            IrError::Io(err) => write!(f, "I/O error: {err}"),
            IrError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for IrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IrError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for IrError {
    fn from(err: io::Error) -> Self {
        IrError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = IrError::UnknownDimension {
            dim: 12,
            dimensionality: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains("12"));
        assert!(msg.contains('4'));
    }

    #[test]
    fn io_error_converts_and_chains_source() {
        let err: IrError = io::Error::new(io::ErrorKind::NotFound, "missing page file").into();
        assert!(err.to_string().contains("missing page file"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn value_out_of_range_mentions_value() {
        let err = IrError::ValueOutOfRange {
            what: "coordinate of d3 in dim2".to_string(),
            value: 1.25,
        };
        assert!(err.to_string().contains("1.25"));
    }
}
