//! The dynamic update model: typed mutations of the logical dataset.
//!
//! The paper computes immutable regions over a frozen dataset; the dynamic
//! layer of this workspace maintains top-k results and regions while the
//! dataset churns. This module defines the *logical* update vocabulary that
//! every layer shares — the storage maintenance path, the engine's mutation
//! API and the recompute oracle all apply the **same** [`TupleUpdate`]
//! semantics, which is what makes "incremental output ≡ full recompute on
//! the mutated dataset" a meaningful (and testable) law.
//!
//! The model is deliberately small:
//!
//! * **Ids are dense and never reused.** [`TupleUpdate::Insert`] appends a
//!   tuple at id `n` (the current cardinality); a deleted id stays valid
//!   forever and simply denotes the all-zero vector from then on.
//! * **Delete is a tombstone.** [`TupleUpdate::Delete`] replaces the tuple
//!   with the empty [`SparseVector`]; the slot remains addressable (the
//!   tuple store supports empty tuples natively) and the tuple vanishes
//!   from every posting list, so it can never score above zero again.
//! * **UpdateScore is a single-coordinate write.** Setting a coordinate to
//!   `0.0` removes it (zeros are never stored), so "remove this tuple from
//!   dimension `j`" needs no extra variant.

use crate::dataset::Dataset;
use crate::error::{IrError, IrResult};
use crate::ids::{DimId, TupleId};
use crate::tuple::SparseVector;
use serde::{Deserialize, Serialize};

/// One logical mutation of the dataset.
///
/// The enum is the shared vocabulary of the dynamic layer: the deterministic
/// `UpdateStream` generator emits it, the engine's `apply_updates` consumes
/// it, and the oracle replays it against an in-memory [`Dataset`] via
/// [`Dataset::with_updates`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TupleUpdate {
    /// Append a new tuple; it is assigned the next dense id (the current
    /// cardinality at the time the update is applied).
    Insert {
        /// The new tuple's sparse coordinate vector.
        vector: SparseVector,
    },
    /// Tombstone an existing tuple: its vector becomes empty (all-zero) and
    /// it disappears from every posting list. The id stays addressable.
    Delete {
        /// The tuple to tombstone.
        tuple: TupleId,
    },
    /// Set one coordinate of an existing tuple. A `value` of `0.0` removes
    /// the coordinate (zeros are never stored).
    UpdateScore {
        /// The tuple whose coordinate changes.
        tuple: TupleId,
        /// The dimension written.
        dim: DimId,
        /// The new coordinate value, in `[0, 1]` (`0.0` removes it).
        value: f64,
    },
}

impl TupleUpdate {
    /// The tuple the update touches, when it names an existing one
    /// (`None` for [`TupleUpdate::Insert`], whose id is assigned on apply).
    pub fn target(&self) -> Option<TupleId> {
        match self {
            TupleUpdate::Insert { .. } => None,
            TupleUpdate::Delete { tuple } => Some(*tuple),
            TupleUpdate::UpdateScore { tuple, .. } => Some(*tuple),
        }
    }

    /// Validates the update against a dataset shape without applying it.
    ///
    /// `cardinality` is the number of live ids (`0..cardinality` are
    /// addressable), `dimensionality` the number of dimensions.
    pub fn validate(&self, cardinality: usize, dimensionality: u32) -> IrResult<()> {
        match self {
            TupleUpdate::Insert { vector } => {
                if let Some(max_dim) = vector.max_dim() {
                    if max_dim.0 >= dimensionality {
                        return Err(IrError::UnknownDimension {
                            dim: max_dim.0,
                            dimensionality,
                        });
                    }
                }
                Ok(())
            }
            TupleUpdate::Delete { tuple } => {
                if tuple.index() >= cardinality {
                    return Err(IrError::UnknownTuple { tuple: tuple.0 });
                }
                Ok(())
            }
            TupleUpdate::UpdateScore { tuple, dim, value } => {
                if tuple.index() >= cardinality {
                    return Err(IrError::UnknownTuple { tuple: tuple.0 });
                }
                if dim.0 >= dimensionality {
                    return Err(IrError::UnknownDimension {
                        dim: dim.0,
                        dimensionality,
                    });
                }
                if !value.is_finite() || !(0.0..=1.0).contains(value) {
                    return Err(IrError::ValueOutOfRange {
                        what: format!("update of {tuple} in {dim}"),
                        value: *value,
                    });
                }
                Ok(())
            }
        }
    }

    /// Applies the update to a dense tuple table (the canonical semantics
    /// every consumer defers to). Returns the id of the affected tuple.
    pub fn apply_to(
        &self,
        tuples: &mut Vec<SparseVector>,
        dimensionality: u32,
    ) -> IrResult<TupleId> {
        self.validate(tuples.len(), dimensionality)?;
        match self {
            TupleUpdate::Insert { vector } => {
                let id = TupleId::from(tuples.len());
                tuples.push(vector.clone());
                Ok(id)
            }
            TupleUpdate::Delete { tuple } => {
                tuples[tuple.index()] = SparseVector::new();
                Ok(*tuple)
            }
            TupleUpdate::UpdateScore { tuple, dim, value } => {
                let next = tuples[tuple.index()].with_coordinate(*dim, *value)?;
                tuples[tuple.index()] = next;
                Ok(*tuple)
            }
        }
    }
}

impl Dataset {
    /// Applies one update in place. Returns the id of the affected tuple
    /// (for [`TupleUpdate::Insert`], the freshly assigned one).
    pub fn apply_update(&mut self, update: &TupleUpdate) -> IrResult<TupleId> {
        let dimensionality = self.dimensionality();
        update.apply_to(self.tuples_mut(), dimensionality)
    }

    /// Builds the dataset that results from applying `updates` in order —
    /// the recompute oracle's input. The original dataset is untouched;
    /// any invalid update aborts with an error and nothing is returned.
    pub fn with_updates(&self, updates: &[TupleUpdate]) -> IrResult<Dataset> {
        let mut mutated = self.clone();
        for update in updates {
            mutated.apply_update(update)?;
        }
        Ok(mutated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn insert_appends_with_the_next_dense_id() {
        let mut d = Dataset::running_example();
        let id = d
            .apply_update(&TupleUpdate::Insert {
                vector: sv(&[(0, 0.4)]),
            })
            .unwrap();
        assert_eq!(id, TupleId(4));
        assert_eq!(d.cardinality(), 5);
        assert_eq!(d.coordinate(TupleId(4), DimId(0)), 0.4);
    }

    #[test]
    fn delete_tombstones_but_keeps_the_id_addressable() {
        let mut d = Dataset::running_example();
        let id = d
            .apply_update(&TupleUpdate::Delete { tuple: TupleId(1) })
            .unwrap();
        assert_eq!(id, TupleId(1));
        assert_eq!(d.cardinality(), 4, "delete must not shift ids");
        assert!(d.tuple(TupleId(1)).unwrap().is_empty());
        // Deleting a tombstone is idempotent.
        d.apply_update(&TupleUpdate::Delete { tuple: TupleId(1) })
            .unwrap();
        assert!(d.tuple(TupleId(1)).unwrap().is_empty());
    }

    #[test]
    fn update_score_sets_and_removes_coordinates() {
        let mut d = Dataset::running_example();
        d.apply_update(&TupleUpdate::UpdateScore {
            tuple: TupleId(0),
            dim: DimId(1),
            value: 0.9,
        })
        .unwrap();
        assert_eq!(d.coordinate(TupleId(0), DimId(1)), 0.9);
        // Zero removes the coordinate entirely.
        d.apply_update(&TupleUpdate::UpdateScore {
            tuple: TupleId(0),
            dim: DimId(1),
            value: 0.0,
        })
        .unwrap();
        assert_eq!(d.coordinate(TupleId(0), DimId(1)), 0.0);
        assert_eq!(d.tuple(TupleId(0)).unwrap().nnz(), 1);
    }

    #[test]
    fn invalid_updates_are_rejected() {
        let d = Dataset::running_example();
        let cases = [
            TupleUpdate::Delete { tuple: TupleId(9) },
            TupleUpdate::UpdateScore {
                tuple: TupleId(9),
                dim: DimId(0),
                value: 0.5,
            },
            TupleUpdate::UpdateScore {
                tuple: TupleId(0),
                dim: DimId(7),
                value: 0.5,
            },
            TupleUpdate::UpdateScore {
                tuple: TupleId(0),
                dim: DimId(0),
                value: 1.5,
            },
            TupleUpdate::Insert {
                vector: sv(&[(7, 0.5)]),
            },
        ];
        for update in &cases {
            assert!(d.with_updates(std::slice::from_ref(update)).is_err());
        }
        // A failed batch leaves no partial dataset behind.
        let err = d.with_updates(&[
            TupleUpdate::Delete { tuple: TupleId(0) },
            TupleUpdate::Delete { tuple: TupleId(9) },
        ]);
        assert!(err.is_err());
        assert!(!d.tuple(TupleId(0)).unwrap().is_empty());
    }

    #[test]
    fn with_updates_matches_sequential_application() {
        let base = Dataset::running_example();
        let updates = vec![
            TupleUpdate::UpdateScore {
                tuple: TupleId(2),
                dim: DimId(0),
                value: 0.95,
            },
            TupleUpdate::Insert {
                vector: sv(&[(0, 0.2), (1, 0.3)]),
            },
            TupleUpdate::Delete { tuple: TupleId(3) },
            // Mutating the tuple inserted earlier in the same batch works.
            TupleUpdate::UpdateScore {
                tuple: TupleId(4),
                dim: DimId(1),
                value: 0.7,
            },
        ];
        let batched = base.with_updates(&updates).unwrap();
        let mut sequential = base.clone();
        for u in &updates {
            sequential.apply_update(u).unwrap();
        }
        assert_eq!(batched.cardinality(), sequential.cardinality());
        for id in batched.tuple_ids() {
            assert_eq!(batched.tuple(id).unwrap(), sequential.tuple(id).unwrap());
        }
    }

    #[test]
    fn target_names_the_touched_tuple() {
        assert_eq!(
            TupleUpdate::Insert {
                vector: SparseVector::new()
            }
            .target(),
            None
        );
        assert_eq!(
            TupleUpdate::Delete { tuple: TupleId(3) }.target(),
            Some(TupleId(3))
        );
        assert_eq!(
            TupleUpdate::UpdateScore {
                tuple: TupleId(2),
                dim: DimId(0),
                value: 0.1
            }
            .target(),
            Some(TupleId(2))
        );
    }

    #[test]
    fn serde_roundtrip_preserves_updates() {
        let updates = vec![
            TupleUpdate::Insert {
                vector: sv(&[(1, 0.25)]),
            },
            TupleUpdate::Delete { tuple: TupleId(2) },
            TupleUpdate::UpdateScore {
                tuple: TupleId(0),
                dim: DimId(1),
                value: 0.5,
            },
        ];
        let json = serde_json::to_string(&updates).unwrap();
        let back: Vec<TupleUpdate> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, updates);
    }
}
