//! Strongly typed identifiers for tuples and dimensions.
//!
//! Using newtypes (rather than bare `u32`s) prevents the classic
//! index-confusion bugs: a dimension id can never be passed where a tuple id
//! is expected, and vice versa. Both are `u32` internally because the paper's
//! datasets have at most a few hundred thousand tuples and dimensions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a tuple (a row of the dataset).
///
/// Tuple ids are dense: a dataset with `n` tuples uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TupleId(pub u32);

/// Identifier of a dimension (an attribute / search term / feature).
///
/// Dimension ids are dense: a dataset over `m` dimensions uses ids `0..m`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DimId(pub u32);

impl TupleId {
    /// Returns the id as a `usize`, convenient for indexing vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl DimId {
    /// Returns the id as a `usize`, convenient for indexing vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for TupleId {
    #[inline]
    fn from(v: u32) -> Self {
        TupleId(v)
    }
}

impl From<u32> for DimId {
    #[inline]
    fn from(v: u32) -> Self {
        DimId(v)
    }
}

impl From<usize> for TupleId {
    #[inline]
    fn from(v: usize) -> Self {
        TupleId(u32::try_from(v).expect("tuple id exceeds u32::MAX"))
    }
}

impl From<usize> for DimId {
    #[inline]
    fn from(v: usize) -> Self {
        DimId(u32::try_from(v).expect("dimension id exceeds u32::MAX"))
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Debug for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TupleId({})", self.0)
    }
}

impl fmt::Display for DimId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dim{}", self.0)
    }
}

impl fmt::Debug for DimId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DimId({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tuple_id_roundtrip_via_usize() {
        let id = TupleId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(id, TupleId(42));
    }

    #[test]
    fn dim_id_roundtrip_via_u32() {
        let id = DimId::from(7u32);
        assert_eq!(id.index(), 7);
        assert_eq!(id, DimId(7));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(TupleId(1));
        set.insert(TupleId(1));
        set.insert(TupleId(2));
        assert_eq!(set.len(), 2);
        assert!(TupleId(1) < TupleId(2));
        assert!(DimId(0) < DimId(1));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(TupleId(3).to_string(), "d3");
        assert_eq!(DimId(3).to_string(), "dim3");
    }

    #[test]
    #[should_panic(expected = "tuple id exceeds u32::MAX")]
    fn oversized_tuple_id_panics() {
        let _ = TupleId::from(u32::MAX as usize + 1);
    }
}
