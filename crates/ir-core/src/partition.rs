//! The candidate partitions `C⁰_j`, `C^H_j`, `C^L_j` of Section 5.1.
//!
//! For a query dimension `j` the candidate list splits into
//!
//! * `C⁰_j`  — candidates with a **zero** coordinate in `j` (they are in
//!   `C(q)` because of other query dimensions),
//! * `C^H_j` — candidates whose **only** non-zero query coordinate is `j`,
//! * `C^L_j` — candidates with a non-zero coordinate in `j` *and* in at
//!   least one other query dimension.
//!
//! Lemmas 2 and 3 (and their `φ > 0` generalisation, Lemma 4) show that only
//! a handful of tuples from `C⁰_j` and `C^H_j` can ever influence the
//! immutable regions, which is what the pruning step exploits.

use ir_topk::CandidateEntry;
use serde::{Deserialize, Serialize};

/// Indices (into the candidate slice) of each partition for one dimension.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Members of `C⁰_j`.
    pub zero: Vec<usize>,
    /// Members of `C^H_j`.
    pub high: Vec<usize>,
    /// Members of `C^L_j`.
    pub low: Vec<usize>,
}

/// Sizes of the three partitions (used by the Figure 6 experiment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSizes {
    /// `|C⁰_j|`.
    pub zero: usize,
    /// `|C^H_j|`.
    pub high: usize,
    /// `|C^L_j|`.
    pub low: usize,
}

impl Partition {
    /// Splits `candidates` with respect to the `dim_index`-th query
    /// dimension.
    pub fn classify(candidates: &[CandidateEntry], dim_index: usize) -> Self {
        let mut partition = Partition::default();
        for (i, cand) in candidates.iter().enumerate() {
            let coord_j = cand.coord(dim_index);
            if coord_j == 0.0 {
                partition.zero.push(i);
            } else {
                let has_other = cand
                    .coords
                    .iter()
                    .enumerate()
                    .any(|(d, &v)| d != dim_index && v > 0.0);
                if has_other {
                    partition.low.push(i);
                } else {
                    partition.high.push(i);
                }
            }
        }
        partition
    }

    /// The partition sizes.
    pub fn sizes(&self) -> PartitionSizes {
        PartitionSizes {
            zero: self.zero.len(),
            high: self.high.len(),
            low: self.low.len(),
        }
    }

    /// Index of the highest-scoring member of `C⁰_j` (the only `C⁰_j` tuple
    /// that can affect the lower bound when `φ = 0`, per Lemma 2).
    /// `candidates` must be the same slice passed to [`Partition::classify`],
    /// which is sorted by decreasing score, so this is simply the first one.
    pub fn best_zero(&self) -> Option<usize> {
        self.zero.first().copied()
    }

    /// The `count` highest-scoring members of `C⁰_j` (Lemma 4, for the `φ`
    /// regions to the left).
    pub fn top_zero_by_score(&self, count: usize) -> Vec<usize> {
        self.zero.iter().copied().take(count).collect()
    }

    /// Index of the member of `C^H_j` with the largest coordinate in `j`
    /// (the only `C^H_j` tuple that can affect the upper bound when `φ = 0`,
    /// per Lemma 3).
    pub fn best_high(&self, candidates: &[CandidateEntry], dim_index: usize) -> Option<usize> {
        self.top_high_by_coord(candidates, dim_index, 1)
            .first()
            .copied()
    }

    /// The `count` members of `C^H_j` with the largest coordinates in `j`
    /// (Lemma 4, for the `φ` regions to the right).
    pub fn top_high_by_coord(
        &self,
        candidates: &[CandidateEntry],
        dim_index: usize,
        count: usize,
    ) -> Vec<usize> {
        let mut by_coord: Vec<usize> = self.high.clone();
        by_coord.sort_by(|&a, &b| {
            candidates[b]
                .coord(dim_index)
                .total_cmp(&candidates[a].coord(dim_index))
                .then_with(|| candidates[a].id.cmp(&candidates[b].id))
        });
        by_coord.truncate(count);
        by_coord
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_types::TupleId;

    fn cand(id: u32, score: f64, coords: &[f64]) -> CandidateEntry {
        CandidateEntry {
            id: TupleId(id),
            score,
            coords: coords.to_vec(),
        }
    }

    /// Candidates over two query dimensions; slice sorted by decreasing
    /// score as `C(q)` always is.
    fn sample() -> Vec<CandidateEntry> {
        vec![
            cand(0, 0.9, &[0.0, 0.9]),  // zero in dim 0
            cand(1, 0.8, &[0.8, 0.0]),  // high in dim 0
            cand(2, 0.7, &[0.5, 0.2]),  // low in dim 0
            cand(3, 0.6, &[0.0, 0.6]),  // zero in dim 0
            cand(4, 0.5, &[0.95, 0.0]), // high in dim 0
        ]
    }

    #[test]
    fn classify_splits_correctly() {
        let candidates = sample();
        let p = Partition::classify(&candidates, 0);
        assert_eq!(p.zero, vec![0, 3]);
        assert_eq!(p.high, vec![1, 4]);
        assert_eq!(p.low, vec![2]);
        assert_eq!(
            p.sizes(),
            PartitionSizes {
                zero: 2,
                high: 2,
                low: 1
            }
        );
    }

    #[test]
    fn classification_is_per_dimension() {
        let candidates = sample();
        let p1 = Partition::classify(&candidates, 1);
        // In dimension 1: ids 1 and 4 have zero coordinate, id 0 and 3 are
        // "high" (only dim 1 non-zero), id 2 is "low".
        assert_eq!(p1.zero, vec![1, 4]);
        assert_eq!(p1.high, vec![0, 3]);
        assert_eq!(p1.low, vec![2]);
    }

    #[test]
    fn best_zero_is_top_scorer() {
        let candidates = sample();
        let p = Partition::classify(&candidates, 0);
        assert_eq!(p.best_zero(), Some(0));
        assert_eq!(p.top_zero_by_score(5), vec![0, 3]);
        assert_eq!(p.top_zero_by_score(1), vec![0]);
    }

    #[test]
    fn best_high_is_largest_coordinate() {
        let candidates = sample();
        let p = Partition::classify(&candidates, 0);
        // Candidate 4 has coordinate 0.95 > candidate 1's 0.8.
        assert_eq!(p.best_high(&candidates, 0), Some(4));
        assert_eq!(p.top_high_by_coord(&candidates, 0, 2), vec![4, 1]);
    }

    #[test]
    fn empty_candidate_list_yields_empty_partition() {
        let p = Partition::classify(&[], 0);
        assert_eq!(p.sizes(), PartitionSizes::default());
        assert_eq!(p.best_zero(), None);
        assert_eq!(p.best_high(&[], 0), None);
    }
}
