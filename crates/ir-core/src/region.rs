//! Output types: immutable regions, perturbations and the full report.

use crate::metrics::ComputationStats;
use ir_geometry::Interval;
use ir_types::{DimId, TupleId};
use serde::{Deserialize, Serialize};

/// What happens to the result at a region boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Perturbation {
    /// Two result members swap ranks: `moved_up` overtakes `moved_down`.
    Reorder {
        /// The tuple that gains a rank.
        moved_up: TupleId,
        /// The tuple that loses a rank.
        moved_down: TupleId,
    },
    /// A non-result tuple enters the result, evicting the current k-th
    /// member.
    Replace {
        /// The tuple entering the result.
        entering: TupleId,
        /// The tuple leaving the result.
        leaving: TupleId,
    },
}

/// A region boundary: the deviation at which a perturbation occurs, and the
/// perturbation itself.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegionBoundary {
    /// Deviation `δq_j` at which the perturbation occurs.
    pub delta: f64,
    /// The perturbation that occurs there.
    pub perturbation: Perturbation,
}

/// One maximal range of deviations with a fixed top-k result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeightRegion {
    /// Lower end of the deviation range.
    pub delta_lo: f64,
    /// Upper end of the deviation range.
    pub delta_hi: f64,
    /// The ordered top-k result valid throughout this region.
    pub result: Vec<TupleId>,
}

impl WeightRegion {
    /// True if the given deviation lies inside the region.
    pub fn contains(&self, delta: f64) -> bool {
        self.delta_lo <= delta && delta <= self.delta_hi
    }

    /// Width of the region.
    pub fn width(&self) -> f64 {
        self.delta_hi - self.delta_lo
    }
}

/// The regions computed for one query dimension.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DimRegions {
    /// The query dimension.
    pub dim: DimId,
    /// The current weight `q_j`.
    pub weight: f64,
    /// The immutable region (`φ = 0` region) as deviations around the
    /// current weight.
    pub immutable: Interval,
    /// The perturbation at the lower end of the immutable region, if the end
    /// is not the domain boundary `-q_j`.
    pub lower_boundary: Option<RegionBoundary>,
    /// The perturbation at the upper end of the immutable region, if the end
    /// is not the domain boundary `1 - q_j`.
    pub upper_boundary: Option<RegionBoundary>,
    /// All regions computed (one for `φ = 0`, up to `2φ + 1` otherwise),
    /// sorted by deviation and contiguous; always contains the region around
    /// deviation zero.
    pub regions: Vec<WeightRegion>,
    /// Index into [`DimRegions::regions`] of the region containing zero.
    pub current_region: usize,
}

impl DimRegions {
    /// The immutable region expressed as absolute weight values
    /// `(q_j + l_j, q_j + u_j)`, clamped to `[0, 1]`.
    pub fn absolute_immutable(&self) -> Interval {
        Interval::new(
            (self.weight + self.immutable.lo).max(0.0),
            (self.weight + self.immutable.hi).min(1.0),
        )
    }

    /// The region containing the given deviation, if any.
    pub fn region_at(&self, delta: f64) -> Option<&WeightRegion> {
        self.regions.iter().find(|r| r.contains(delta))
    }

    /// The result valid at deviation zero.
    pub fn current_result(&self) -> &[TupleId] {
        &self.regions[self.current_region].result
    }
}

/// The complete output of a region computation: one [`DimRegions`] per query
/// dimension plus the bookkeeping the evaluation section measures.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[must_use = "a region report carries the computed regions and cost counters"]
pub struct RegionReport {
    /// Per-dimension regions, in the query's dimension order.
    pub dims: Vec<DimRegions>,
    /// Cost counters of the computation.
    pub stats: ComputationStats,
}

impl RegionReport {
    /// The regions for a specific dimension, if it is a query dimension.
    pub fn for_dim(&self, dim: DimId) -> Option<&DimRegions> {
        self.dims.iter().find(|d| d.dim == dim)
    }

    /// The top-k result at the query's own weights (deviation zero). Every
    /// query dimension's region stack carries the same current result, so
    /// this reads it off the first; an (impossible) empty report yields an
    /// empty result.
    pub fn current_result(&self) -> &[TupleId] {
        self.dims.first().map_or(&[], |d| d.current_result())
    }

    /// The narrowest immutable-region width across dimensions — a scalar
    /// sensitivity indicator (the dimension the result is most sensitive to).
    pub fn most_sensitive_dim(&self) -> Option<(DimId, f64)> {
        self.dims
            .iter()
            .map(|d| (d.dim, d.immutable.width()))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(lo: f64, hi: f64, ids: &[u32]) -> WeightRegion {
        WeightRegion {
            delta_lo: lo,
            delta_hi: hi,
            result: ids.iter().map(|&i| TupleId(i)).collect(),
        }
    }

    fn dim_regions() -> DimRegions {
        DimRegions {
            dim: DimId(0),
            weight: 0.8,
            immutable: Interval::new(-16.0 / 35.0, 0.1),
            lower_boundary: Some(RegionBoundary {
                delta: -16.0 / 35.0,
                perturbation: Perturbation::Replace {
                    entering: TupleId(2),
                    leaving: TupleId(0),
                },
            }),
            upper_boundary: Some(RegionBoundary {
                delta: 0.1,
                perturbation: Perturbation::Reorder {
                    moved_up: TupleId(0),
                    moved_down: TupleId(1),
                },
            }),
            regions: vec![
                region(-0.55, -16.0 / 35.0, &[1, 2]),
                region(-16.0 / 35.0, 0.1, &[1, 0]),
                region(0.1, 0.2, &[0, 1]),
            ],
            current_region: 1,
        }
    }

    #[test]
    fn absolute_region_matches_figure_1() {
        let d = dim_regions();
        let abs = d.absolute_immutable();
        assert!((abs.lo - (0.8 - 16.0 / 35.0)).abs() < 1e-12);
        assert!((abs.hi - 0.9).abs() < 1e-12);
    }

    #[test]
    fn region_lookup_by_deviation() {
        let d = dim_regions();
        assert_eq!(d.current_result(), &[TupleId(1), TupleId(0)]);
        assert_eq!(
            d.region_at(0.15).unwrap().result,
            vec![TupleId(0), TupleId(1)]
        );
        assert_eq!(
            d.region_at(-0.5).unwrap().result,
            vec![TupleId(1), TupleId(2)]
        );
        assert!(d.region_at(5.0).is_none());
        assert!(d.region_at(0.0).unwrap().contains(0.0));
        assert!((d.regions[1].width() - (0.1 + 16.0 / 35.0)).abs() < 1e-12);
    }

    #[test]
    fn report_finds_most_sensitive_dimension() {
        let mut d0 = dim_regions();
        d0.dim = DimId(0);
        let mut d1 = dim_regions();
        d1.dim = DimId(1);
        d1.immutable = Interval::new(-1.0 / 18.0, 0.5);
        let report = RegionReport {
            dims: vec![d0.clone(), d1],
            stats: ComputationStats::default(),
        };
        // Dimension 0 has width 0.1 + 16/35 ≈ 0.557; dimension 1 has
        // 0.5 + 1/18 ≈ 0.556 — dimension 1 is (barely) the most sensitive.
        let (dim, _) = report.most_sensitive_dim().unwrap();
        assert_eq!(dim, DimId(1));
        assert!(report.for_dim(DimId(0)).is_some());
        assert!(report.for_dim(DimId(9)).is_none());
    }
}
