//! # ir-core
//!
//! Immutable-region computation for subspace top-k queries — the primary
//! contribution of *Computing Immutable Regions for Subspace Top-k Queries*
//! (Mouratidis & Pang, VLDB 2013).
//!
//! Given a dataset indexed by [`ir_storage::TopKIndex`], a query vector and a
//! result size `k`, the crate computes, for every query dimension `j`, the
//! *immutable region* `IR_j = (l_j, u_j)`: the widest range of deviations of
//! weight `q_j` (all other weights fixed) for which the top-k result is
//! preserved. For `φ > 0` it computes the `φ` successive regions on each side
//! together with the exact result inside each of them.
//!
//! Four algorithms are provided, selected by [`Algorithm`]:
//!
//! | Algorithm | Phase 2 behaviour | Paper section |
//! |-----------|-------------------|---------------|
//! | [`Algorithm::Scan`]  | evaluates every candidate in `C(q)` | §4 |
//! | [`Algorithm::Prune`] | candidate pruning (Lemmas 2–4) then evaluates the survivors | §5.1 |
//! | [`Algorithm::Thres`] | candidate thresholding over all of `C(q)` | §5.2 |
//! | [`Algorithm::Cpt`]   | pruning followed by thresholding (the paper's CPT) | §5 + §6 |
//!
//! All four share Phase 1 (reorderings inside `R(q)`) and Phase 3 (resumed TA
//! over tuples never seen by TA), and all four produce identical regions —
//! they differ only in how many candidates they must examine, which is
//! exactly what the paper's evaluation measures.
//!
//! The entry point is [`RegionComputation`]; [`oracle::ExhaustiveOracle`]
//! provides an `O(n²)` reference implementation used by the test-suite to
//! validate every algorithm on randomized inputs. The [`parallel`] module
//! adds a deterministic work-stealing driver on top: per-dimension fan-out
//! within a query ([`RegionComputation::compute_parallel`]) and
//! [`BatchRegionComputation`] for many queries over one warm buffer pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compute;
pub mod config;
pub mod evaluator;
pub mod invalidate;
pub mod iterative;
pub mod lemma;
pub mod metrics;
pub mod oracle;
pub mod parallel;
pub mod partition;
pub mod region;
pub mod solver_flat;
pub mod solver_phi;
pub mod threshold;

pub use compute::{OwnedRegionComputation, RegionComputation};
pub use config::{Algorithm, PerturbationMode, RegionConfig};
pub use invalidate::{update_impact, UpdateImpact};
pub use metrics::ComputationStats;
pub use oracle::ExhaustiveOracle;
pub use parallel::{BatchOutcome, BatchRegionComputation};
pub use region::{DimRegions, Perturbation, RegionBoundary, RegionReport, WeightRegion};
