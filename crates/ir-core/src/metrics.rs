//! Cost counters of a region computation.
//!
//! These are the quantities Section 7 of the paper reports: the number of
//! evaluated candidates (per query dimension and in total), the I/O incurred,
//! the CPU time and the memory footprint of the candidate bookkeeping.

use ir_storage::IoStatsSnapshot;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters accumulated while computing immutable regions.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ComputationStats {
    /// Candidates evaluated (checked against the k-th result tuple via
    /// Lemma 1, or fed to the kinetic sweep when `φ > 0`), summed over all
    /// query dimensions.
    pub evaluated_candidates: u64,
    /// Evaluated candidates per query dimension, in query-dimension order.
    pub evaluated_per_dim: Vec<u64>,
    /// Tuples newly discovered by the resumed TA of Phase 3 (all dimensions).
    pub phase3_tuples: u64,
    /// Size of the candidate list `C(q)` produced by the initial TA run.
    pub initial_candidates: usize,
    /// I/O performed while computing the regions (TA excluded).
    pub io: IoStatsSnapshot,
    /// I/O performed by the initial top-k computation (reported separately —
    /// every method pays it identically).
    pub topk_io: IoStatsSnapshot,
    /// Wall-clock time spent computing the regions (TA excluded). With the
    /// in-memory backend this is the paper's "CPU time"; the simulated I/O
    /// latency is *not* included.
    pub cpu_time: Duration,
    /// Estimated memory footprint in bytes of the candidate bookkeeping the
    /// selected algorithm keeps (Section 7.2's memory metric).
    pub memory_footprint_bytes: usize,
}

impl ComputationStats {
    /// Average evaluated candidates per query dimension.
    pub fn evaluated_per_dim_avg(&self) -> f64 {
        if self.evaluated_per_dim.is_empty() {
            0.0
        } else {
            self.evaluated_candidates as f64 / self.evaluated_per_dim.len() as f64
        }
    }

    /// Merges another stats block into this one (used when aggregating over
    /// queries in the experiment harness).
    pub fn merge(&mut self, other: &ComputationStats) {
        self.evaluated_candidates += other.evaluated_candidates;
        if self.evaluated_per_dim.len() < other.evaluated_per_dim.len() {
            self.evaluated_per_dim
                .resize(other.evaluated_per_dim.len(), 0);
        }
        for (slot, v) in self
            .evaluated_per_dim
            .iter_mut()
            .zip(&other.evaluated_per_dim)
        {
            *slot += v;
        }
        self.phase3_tuples += other.phase3_tuples;
        self.initial_candidates += other.initial_candidates;
        self.io = self.io.plus(&other.io);
        self.topk_io = self.topk_io.plus(&other.topk_io);
        self.cpu_time += other.cpu_time;
        self.memory_footprint_bytes = self
            .memory_footprint_bytes
            .max(other.memory_footprint_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_dim_average() {
        let stats = ComputationStats {
            evaluated_candidates: 12,
            evaluated_per_dim: vec![3, 4, 5],
            ..Default::default()
        };
        assert!((stats.evaluated_per_dim_avg() - 4.0).abs() < 1e-12);
        assert_eq!(ComputationStats::default().evaluated_per_dim_avg(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ComputationStats {
            evaluated_candidates: 5,
            evaluated_per_dim: vec![2, 3],
            phase3_tuples: 1,
            initial_candidates: 10,
            cpu_time: Duration::from_millis(5),
            memory_footprint_bytes: 100,
            ..Default::default()
        };
        let b = ComputationStats {
            evaluated_candidates: 7,
            evaluated_per_dim: vec![1, 6],
            phase3_tuples: 2,
            initial_candidates: 4,
            cpu_time: Duration::from_millis(3),
            memory_footprint_bytes: 250,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.evaluated_candidates, 12);
        assert_eq!(a.evaluated_per_dim, vec![3, 9]);
        assert_eq!(a.phase3_tuples, 3);
        assert_eq!(a.initial_candidates, 14);
        assert_eq!(a.cpu_time, Duration::from_millis(8));
        assert_eq!(a.memory_footprint_bytes, 250);
    }
}
