//! Lemma 1: when does a weight deviation preserve a pairwise score order?
//!
//! For tuples `d_α` (currently scoring at least as high) and `d_β`, and a
//! deviation `δq_j` of weight `q_j`, the order `S(d_β, q) ≤ S(d_α, q)` is
//! preserved iff `δq_j · (d_βj − d_αj) ≤ S(d_α, q) − S(d_β, q)`. Hence the
//! challenger `d_β` constrains
//!
//! * the **upper** bound of the immutable region when `d_βj > d_αj`
//!   (Formula 2): `u_j ≤ (S(d_α) − S(d_β)) / (d_βj − d_αj)`,
//! * the **lower** bound when `d_βj < d_αj` (Formula 3):
//!   `l_j ≥ (S(d_α) − S(d_β)) / (d_βj − d_αj)`,
//! * nothing when the two coordinates are equal (the score difference does
//!   not depend on `q_j`).

use serde::{Deserialize, Serialize};

/// A tuple's view in one query dimension: its current score and its
/// coordinate in that dimension.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScoreCoord {
    /// The current score `S(d, q)`.
    pub score: f64,
    /// The coordinate `d_j` in the dimension under consideration.
    pub coord: f64,
}

impl ScoreCoord {
    /// Convenience constructor.
    pub fn new(score: f64, coord: f64) -> Self {
        ScoreCoord { score, coord }
    }
}

/// Which bound (if any) a challenger constrains, and to what value.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Lemma1Bound {
    /// The challenger caps the upper bound at the given deviation.
    Upper(f64),
    /// The challenger raises the lower bound to the given deviation.
    Lower(f64),
    /// The challenger imposes no constraint (equal coordinates).
    None,
}

/// Computes the bound imposed by `challenger` on the region of the anchor
/// (`anchor` currently scores at least as high as `challenger`).
pub fn lemma1_bound(anchor: ScoreCoord, challenger: ScoreCoord) -> Lemma1Bound {
    let coord_diff = challenger.coord - anchor.coord;
    if coord_diff == 0.0 {
        return Lemma1Bound::None;
    }
    let bound = (anchor.score - challenger.score) / coord_diff;
    if coord_diff > 0.0 {
        Lemma1Bound::Upper(bound)
    } else {
        Lemma1Bound::Lower(bound)
    }
}

/// Applies Lemma 1 to a running `(l_j, u_j)` pair, tightening whichever bound
/// the challenger constrains. Returns `true` if a bound actually moved.
pub fn lemma1_tighten(
    anchor: ScoreCoord,
    challenger: ScoreCoord,
    lower: &mut f64,
    upper: &mut f64,
) -> bool {
    match lemma1_bound(anchor, challenger) {
        Lemma1Bound::Upper(b) if b < *upper => {
            *upper = b;
            true
        }
        Lemma1Bound::Lower(b) if b > *lower => {
            *lower = b;
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_dimension_1_bounds() {
        // Query q = <0.8, 0.5>; dimension 1 (index 0).
        // d2 (score 0.81, coord 0.7) is the anchor, d1 (0.80, 0.8) the
        // challenger: d1 has the larger coordinate, so it caps u_1 at
        // (0.81 - 0.80) / (0.8 - 0.7) = 0.1.
        let d2 = ScoreCoord::new(0.81, 0.7);
        let d1 = ScoreCoord::new(0.80, 0.8);
        match lemma1_bound(d2, d1) {
            Lemma1Bound::Upper(b) => assert!((b - 0.1).abs() < 1e-12),
            other => panic!("expected an upper bound, got {other:?}"),
        }
        // d1 (0.80, 0.8) anchor vs d3 (0.48, 0.1) challenger: smaller
        // coordinate, so it raises l_1 to (0.80 - 0.48)/(0.1 - 0.8) = -16/35.
        let d3 = ScoreCoord::new(0.48, 0.1);
        match lemma1_bound(d1, d3) {
            Lemma1Bound::Lower(b) => assert!((b + 16.0 / 35.0).abs() < 1e-12),
            other => panic!("expected a lower bound, got {other:?}"),
        }
    }

    #[test]
    fn running_example_dimension_2_bounds() {
        // Dimension 2 (index 1): d2 coord 0.5, d1 coord 0.32, d3 coord 0.8.
        // d2 anchor vs d1 challenger: d1's coordinate is smaller, so it
        // raises l_2 to (0.81-0.80)/(0.32-0.5) = -1/18.
        let d2 = ScoreCoord::new(0.81, 0.5);
        let d1 = ScoreCoord::new(0.80, 0.32);
        match lemma1_bound(d2, d1) {
            Lemma1Bound::Lower(b) => assert!((b + 1.0 / 18.0).abs() < 1e-12),
            other => panic!("expected a lower bound, got {other:?}"),
        }
        // d1 anchor vs d3 challenger: larger coordinate, caps u_2 at
        // (0.80-0.48)/(0.8-0.32) = 2/3.
        let d3 = ScoreCoord::new(0.48, 0.8);
        match lemma1_bound(d1, d3) {
            Lemma1Bound::Upper(b) => assert!((b - 2.0 / 3.0).abs() < 1e-12),
            other => panic!("expected an upper bound, got {other:?}"),
        }
    }

    #[test]
    fn equal_coordinates_impose_nothing() {
        let a = ScoreCoord::new(0.9, 0.4);
        let b = ScoreCoord::new(0.3, 0.4);
        assert_eq!(lemma1_bound(a, b), Lemma1Bound::None);
        let (mut lo, mut hi) = (-0.5, 0.5);
        assert!(!lemma1_tighten(a, b, &mut lo, &mut hi));
        assert_eq!((lo, hi), (-0.5, 0.5));
    }

    #[test]
    fn tighten_only_moves_bounds_inward() {
        let anchor = ScoreCoord::new(0.8, 0.5);
        // A challenger whose cap is looser than the current bound must not
        // move it.
        let weak = ScoreCoord::new(0.1, 0.9); // upper cap (0.7)/(0.4) = 1.75
        let (mut lo, mut hi) = (-0.5, 0.5);
        assert!(!lemma1_tighten(anchor, weak, &mut lo, &mut hi));
        assert_eq!(hi, 0.5);
        // A stronger challenger does move it.
        let strong = ScoreCoord::new(0.75, 0.9); // cap 0.05/0.4 = 0.125
        assert!(lemma1_tighten(anchor, strong, &mut lo, &mut hi));
        assert!((hi - 0.125).abs() < 1e-12);
    }

    #[test]
    fn preservation_holds_inside_and_breaks_outside_the_bound() {
        // Verify the *semantics* of the bound: inside it the anchor stays
        // ahead, beyond it the challenger overtakes.
        let anchor = ScoreCoord::new(0.81, 0.7);
        let challenger = ScoreCoord::new(0.80, 0.8);
        let Lemma1Bound::Upper(u) = lemma1_bound(anchor, challenger) else {
            panic!("expected upper bound");
        };
        let score_at = |sc: ScoreCoord, delta: f64| sc.score + delta * sc.coord;
        let inside = u - 1e-6;
        assert!(score_at(anchor, inside) >= score_at(challenger, inside));
        let outside = u + 1e-6;
        assert!(score_at(anchor, outside) < score_at(challenger, outside));
    }
}
