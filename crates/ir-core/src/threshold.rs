//! Candidate thresholding (Algorithm 3 of the paper) for `φ = 0`.
//!
//! Candidates are probed from three sorted lists — `SLS` (by decreasing
//! score), `SLj↓` (coordinates above `d_kj`, decreasing) and `SLj↑`
//! (coordinates below `d_kj`, increasing) — in a round-robin fashion. The
//! scores/coordinates at the current list positions bound the best possible
//! bound-update any *unseen* candidate could achieve, which yields a safe
//! early-termination condition for each of the two searches (`l_j` and
//! `u_j`).

use crate::lemma::{lemma1_tighten, ScoreCoord};
use ir_types::{IrResult, TupleId};
use std::collections::HashSet;

/// A candidate as the threshold machinery sees it: id, current score, and
/// its (cached) coordinate in the dimension under consideration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CandView {
    /// Tuple id.
    pub id: TupleId,
    /// Current score `S(d_β, q)`.
    pub score: f64,
    /// Coordinate `d_βj`.
    pub coord: f64,
}

/// Mutable state of the two bounds being tightened, including which tuple
/// last updated each of them (the provenance used to report the perturbation
/// at the region boundary).
#[derive(Debug)]
pub struct BoundState {
    /// Current lower bound `l_j`.
    pub lower: f64,
    /// Current upper bound `u_j`.
    pub upper: f64,
    /// Tuple that last tightened the lower bound.
    pub lower_cause: Option<TupleId>,
    /// Tuple that last tightened the upper bound.
    pub upper_cause: Option<TupleId>,
}

impl BoundState {
    /// Creates the widest possible state for a weight `q_j`.
    pub fn widest(weight: f64) -> Self {
        BoundState {
            lower: -weight,
            upper: 1.0 - weight,
            lower_cause: None,
            upper_cause: None,
        }
    }

    /// Applies Lemma 1 with `anchor` (a result tuple) against `challenger`,
    /// recording `cause` as the provenance if a bound moves.
    pub fn tighten(&mut self, anchor: ScoreCoord, challenger: ScoreCoord, cause: TupleId) -> bool {
        let before = (self.lower, self.upper);
        let moved = lemma1_tighten(anchor, challenger, &mut self.lower, &mut self.upper);
        if moved {
            if self.upper < before.1 {
                self.upper_cause = Some(cause);
            }
            if self.lower > before.0 {
                self.lower_cause = Some(cause);
            }
        }
        moved
    }
}

fn pull_next(list: &[usize], pos: &mut usize, processed: &HashSet<usize>) -> Option<usize> {
    while *pos < list.len() {
        let idx = list[*pos];
        *pos += 1;
        if !processed.contains(&idx) {
            return Some(idx);
        }
    }
    None
}

fn peek_value(list: &[usize], pos: usize) -> Option<usize> {
    list.get(pos).copied()
}

/// Runs the 3-list thresholded Phase 2 over `cands`, tightening `bounds`
/// against the k-th result tuple `dk`.
///
/// `evaluate` is invoked exactly once per candidate actually checked via
/// Lemma 1 (it performs the random access and is where the caller counts
/// evaluated candidates); it returns the candidate's coordinate in the
/// current dimension.
pub fn threshold_phase2(
    dk: ScoreCoord,
    cands: &[CandView],
    bounds: &mut BoundState,
    mut evaluate: impl FnMut(TupleId) -> IrResult<f64>,
) -> IrResult<()> {
    if cands.is_empty() {
        return Ok(());
    }

    // SLS: all candidates by decreasing score (ties by id for determinism).
    let mut sls: Vec<usize> = (0..cands.len()).collect();
    sls.sort_by(|&a, &b| {
        cands[b]
            .score
            .total_cmp(&cands[a].score)
            .then_with(|| cands[a].id.cmp(&cands[b].id))
    });
    // SLj↓: coordinates strictly above d_kj, by decreasing coordinate.
    let mut sl_down: Vec<usize> = (0..cands.len())
        .filter(|&i| cands[i].coord > dk.coord)
        .collect();
    sl_down.sort_by(|&a, &b| {
        cands[b]
            .coord
            .total_cmp(&cands[a].coord)
            .then_with(|| cands[a].id.cmp(&cands[b].id))
    });
    // SLj↑: coordinates strictly below d_kj, by increasing coordinate.
    let mut sl_up: Vec<usize> = (0..cands.len())
        .filter(|&i| cands[i].coord < dk.coord)
        .collect();
    sl_up.sort_by(|&a, &b| {
        cands[a]
            .coord
            .total_cmp(&cands[b].coord)
            .then_with(|| cands[a].id.cmp(&cands[b].id))
    });

    let mut processed: HashSet<usize> = HashSet::new();
    let (mut pos_s, mut pos_down, mut pos_up) = (0usize, 0usize, 0usize);
    let mut search_lower = true;
    let mut search_upper = true;

    let check = |idx: usize,
                 bounds: &mut BoundState,
                 evaluate: &mut dyn FnMut(TupleId) -> IrResult<f64>|
     -> IrResult<()> {
        let cand = cands[idx];
        let coord = evaluate(cand.id)?;
        bounds.tighten(dk, ScoreCoord::new(cand.score, coord), cand.id);
        Ok(())
    };

    while search_lower || search_upper {
        // 1. Pull the next candidate from SLS and apply it to whichever
        //    search its coordinate belongs to (if that search is active).
        if let Some(idx) = pull_next(&sls, &mut pos_s, &processed) {
            processed.insert(idx);
            let coord = cands[idx].coord;
            if (coord < dk.coord && search_lower) || (coord > dk.coord && search_upper) {
                check(idx, bounds, &mut evaluate)?;
            }
        }

        // 2. Lower-bound search: termination test, else pull from SLj↑.
        if search_lower {
            let t_up = peek_value(&sl_up, pos_up).map(|i| cands[i].coord);
            let t_s = peek_value(&sls, pos_s).map(|i| cands[i].score);
            let complete = match (t_up, t_s) {
                (None, _) => true,
                (Some(t_up), _) if t_up >= dk.coord => true,
                (_, None) => true,
                (Some(t_up), Some(t_s)) => (dk.score - t_s) / (t_up - dk.coord) <= bounds.lower,
            };
            if complete {
                search_lower = false;
            } else if let Some(idx) = pull_next(&sl_up, &mut pos_up, &processed) {
                processed.insert(idx);
                check(idx, bounds, &mut evaluate)?;
            } else {
                search_lower = false;
            }
        }

        // 3. Upper-bound search: termination test, else pull from SLj↓.
        if search_upper {
            let t_down = peek_value(&sl_down, pos_down).map(|i| cands[i].coord);
            let t_s = peek_value(&sls, pos_s).map(|i| cands[i].score);
            let complete = match (t_down, t_s) {
                (None, _) => true,
                (Some(t_down), _) if t_down <= dk.coord => true,
                (_, None) => true,
                (Some(t_down), Some(t_s)) => (dk.score - t_s) / (t_down - dk.coord) >= bounds.upper,
            };
            if complete {
                search_upper = false;
            } else if let Some(idx) = pull_next(&sl_down, &mut pos_down, &processed) {
                processed.insert(idx);
                check(idx, bounds, &mut evaluate)?;
            } else {
                search_upper = false;
            }
        }
    }
    Ok(())
}

/// Reference Phase 2: evaluates *every* candidate (what Scan and Prune do on
/// their respective candidate sets).
pub fn exhaustive_phase2(
    dk: ScoreCoord,
    cands: &[CandView],
    bounds: &mut BoundState,
    mut evaluate: impl FnMut(TupleId) -> IrResult<f64>,
) -> IrResult<()> {
    for cand in cands {
        let coord = evaluate(cand.id)?;
        bounds.tighten(dk, ScoreCoord::new(cand.score, coord), cand.id);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cv(id: u32, score: f64, coord: f64) -> CandView {
        CandView {
            id: TupleId(id),
            score,
            coord,
        }
    }

    /// Thresholded and exhaustive Phase 2 must reach identical bounds; the
    /// thresholded variant must not evaluate more candidates.
    fn assert_equivalent(dk: ScoreCoord, weight: f64, cands: &[CandView]) {
        let mut exhaustive = BoundState::widest(weight);
        let mut count_ex = 0u64;
        exhaustive_phase2(dk, cands, &mut exhaustive, |id| {
            count_ex += 1;
            Ok(cands.iter().find(|c| c.id == id).unwrap().coord)
        })
        .unwrap();

        let mut thresholded = BoundState::widest(weight);
        let mut count_th = 0u64;
        threshold_phase2(dk, cands, &mut thresholded, |id| {
            count_th += 1;
            Ok(cands.iter().find(|c| c.id == id).unwrap().coord)
        })
        .unwrap();

        assert!(
            (exhaustive.lower - thresholded.lower).abs() < 1e-12,
            "lower bounds differ: {} vs {}",
            exhaustive.lower,
            thresholded.lower
        );
        assert!(
            (exhaustive.upper - thresholded.upper).abs() < 1e-12,
            "upper bounds differ: {} vs {}",
            exhaustive.upper,
            thresholded.upper
        );
        assert!(
            count_th <= count_ex,
            "thresholding evaluated more ({count_th} > {count_ex})"
        );
    }

    #[test]
    fn running_example_dimension_1_phase2() {
        // dk = d1 (score 0.80, coord 0.8 in dim 1); the only candidate is d3
        // (score 0.48, coord 0.1). Starting from the Phase-1 interim region
        // [-0.8, 0.1), Phase 2 must raise the lower bound to -16/35.
        let dk = ScoreCoord::new(0.80, 0.8);
        let cands = vec![cv(2, 0.48, 0.1)];
        let mut bounds = BoundState {
            lower: -0.8,
            upper: 0.1,
            lower_cause: None,
            upper_cause: None,
        };
        threshold_phase2(dk, &cands, &mut bounds, |_| Ok(0.1)).unwrap();
        assert!((bounds.lower + 16.0 / 35.0).abs() < 1e-12);
        assert!((bounds.upper - 0.1).abs() < 1e-12);
        assert_eq!(bounds.lower_cause, Some(TupleId(2)));
        assert_eq!(bounds.upper_cause, None);
    }

    #[test]
    fn equivalence_on_mixed_candidates() {
        let dk = ScoreCoord::new(0.7, 0.4);
        let cands = vec![
            cv(10, 0.65, 0.9),
            cv(11, 0.6, 0.1),
            cv(12, 0.5, 0.0),
            cv(13, 0.45, 0.7),
            cv(14, 0.3, 0.4), // same coordinate as dk: affects nothing
            cv(15, 0.2, 0.95),
            cv(16, 0.1, 0.05),
        ];
        assert_equivalent(dk, 0.5, &cands);
    }

    #[test]
    fn equivalence_on_pseudorandom_inputs() {
        // Deterministic pseudo-random stream (no external RNG needed here).
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..25 {
            let dk = ScoreCoord::new(0.4 + 0.5 * next(), next());
            let n = 3 + (trial % 17);
            let cands: Vec<CandView> = (0..n)
                .map(|i| cv(100 + i as u32, dk.score * next(), next()))
                .collect();
            assert_equivalent(dk, 0.5, &cands);
        }
    }

    #[test]
    fn thresholding_skips_low_potential_candidates() {
        // One decisive candidate and many hopeless ones (tiny scores and
        // coordinates close to dk's): thresholding must terminate without
        // evaluating all of them.
        let dk = ScoreCoord::new(0.9, 0.5);
        let mut cands = vec![cv(0, 0.89, 0.95)];
        for i in 1..200 {
            cands.push(cv(i, 0.01, 0.5 + 1e-6 * i as f64));
        }
        let mut bounds = BoundState::widest(0.5);
        let mut evaluated = 0u64;
        threshold_phase2(dk, &cands, &mut bounds, |id| {
            evaluated += 1;
            Ok(cands.iter().find(|c| c.id == id).unwrap().coord)
        })
        .unwrap();
        assert!(evaluated < 50, "evaluated {evaluated} of 200 candidates");
        // And the bound is the one imposed by the decisive candidate.
        assert!((bounds.upper - (0.9 - 0.89) / (0.95 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn empty_candidate_set_is_a_noop() {
        let mut bounds = BoundState::widest(0.3);
        threshold_phase2(ScoreCoord::new(0.5, 0.2), &[], &mut bounds, |_| {
            panic!("nothing to evaluate")
        })
        .unwrap();
        assert_eq!(bounds.lower, -0.3);
        assert_eq!(bounds.upper, 0.7);
    }
}
