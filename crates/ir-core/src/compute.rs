//! The public entry point: [`RegionComputation`].

use crate::config::{PerturbationMode, RegionConfig};
use crate::evaluator::CandidateEvaluator;
use crate::metrics::ComputationStats;
use crate::region::{DimRegions, RegionReport};
use crate::solver_flat::solve_dim_flat;
use crate::solver_phi::solve_dim_phi;
use ir_storage::{IoStatsSnapshot, TopKIndex};
use ir_topk::{TaConfig, TaRun};
use ir_types::{IrResult, QueryVector, TopKResult};
use std::sync::Arc;
use std::time::Instant;

/// How a computation holds its index: a plain borrow (the classic zero-cost
/// constructors) or a shared [`Arc`] handle, which erases the lifetime so
/// owning façades (the umbrella crate's `IrEngine`) can hand computations out
/// without borrowing from themselves.
#[derive(Clone)]
pub(crate) enum IndexHandle<'a> {
    /// Borrowed from the caller — the computation cannot outlive the index.
    Borrowed(&'a TopKIndex),
    /// Shared ownership — the computation keeps the index alive on its own.
    Shared(Arc<TopKIndex>),
}

impl std::ops::Deref for IndexHandle<'_> {
    type Target = TopKIndex;

    fn deref(&self) -> &TopKIndex {
        match self {
            IndexHandle::Borrowed(index) => index,
            IndexHandle::Shared(index) => index,
        }
    }
}

/// A [`RegionComputation`] that owns its index via [`Arc`] and therefore has
/// no borrowed lifetime — the form returned by owning façades.
pub type OwnedRegionComputation = RegionComputation<'static>;

/// A top-k query whose result has been computed and whose immutable regions
/// can be derived.
///
/// ```
/// use ir_core::{Algorithm, RegionComputation, RegionConfig};
/// use ir_storage::TopKIndex;
/// use ir_types::{Dataset, DimId, QueryVector};
///
/// let dataset = Dataset::running_example();
/// let index = TopKIndex::build_in_memory(&dataset).unwrap();
/// let query = QueryVector::running_example();
/// let mut computation =
///     RegionComputation::new(&index, &query, RegionConfig::flat(Algorithm::Cpt)).unwrap();
/// let report = computation.compute().unwrap();
/// let dim0 = report.for_dim(DimId(0)).unwrap();
/// assert!((dim0.immutable.lo - (-16.0 / 35.0)).abs() < 1e-9);
/// assert!((dim0.immutable.hi - 0.1).abs() < 1e-9);
/// ```
#[must_use = "a region computation does nothing until `compute` is called"]
pub struct RegionComputation<'a> {
    index: IndexHandle<'a>,
    ta: TaRun,
    config: RegionConfig,
    topk_io: IoStatsSnapshot,
}

impl<'a> RegionComputation<'a> {
    /// Runs TA for the query and prepares the region computation.
    pub fn new(index: &'a TopKIndex, query: &QueryVector, config: RegionConfig) -> IrResult<Self> {
        Self::with_ta_config(index, query, config, &TaConfig::default())
    }

    /// Same as [`RegionComputation::new`] with an explicit TA configuration.
    pub fn with_ta_config(
        index: &'a TopKIndex,
        query: &QueryVector,
        config: RegionConfig,
        ta_config: &TaConfig,
    ) -> IrResult<Self> {
        Self::from_handle(IndexHandle::Borrowed(index), query, config, ta_config)
    }

    /// Like [`RegionComputation::new`], but holding the index via [`Arc`]:
    /// the returned computation has no borrowed lifetime and can be stored,
    /// sent across threads, or returned from owning services.
    pub fn new_shared(
        index: Arc<TopKIndex>,
        query: &QueryVector,
        config: RegionConfig,
    ) -> IrResult<OwnedRegionComputation> {
        Self::with_ta_config_shared(index, query, config, &TaConfig::default())
    }

    /// [`RegionComputation::new_shared`] with an explicit TA configuration.
    pub fn with_ta_config_shared(
        index: Arc<TopKIndex>,
        query: &QueryVector,
        config: RegionConfig,
        ta_config: &TaConfig,
    ) -> IrResult<OwnedRegionComputation> {
        RegionComputation::from_handle(IndexHandle::Shared(index), query, config, ta_config)
    }

    pub(crate) fn from_handle<'b>(
        index: IndexHandle<'b>,
        query: &QueryVector,
        config: RegionConfig,
        ta_config: &TaConfig,
    ) -> IrResult<RegionComputation<'b>> {
        // Diff the calling thread's own stats shard (not the pool total) so
        // the TA I/O stays correctly attributed even when other workers are
        // using the same buffer pool concurrently; single-threaded the two
        // are identical.
        let before = index.thread_io_snapshot();
        let ta = TaRun::execute(&index, query, ta_config)?;
        let topk_io = index.thread_io_snapshot().since(&before);
        Ok(RegionComputation {
            index,
            ta,
            config,
            topk_io,
        })
    }

    /// The top-k result of the query.
    pub fn result(&self) -> TopKResult {
        self.ta.result()
    }

    /// The size of the candidate list produced by the initial TA run.
    pub fn initial_candidates(&self) -> usize {
        self.ta.candidates().len()
    }

    /// Read access to the underlying TA run (result entries, candidates,
    /// thresholds) — used by the experiment harness for the Figure 6 study.
    pub fn ta(&self) -> &TaRun {
        &self.ta
    }

    /// The I/O the initial top-k phase cost, as attributed to the calling
    /// thread — what [`RegionComputation::compute`] stamps into
    /// [`ComputationStats::topk_io`](crate::metrics::ComputationStats).
    /// Exposed so external per-dimension drivers (the cluster coordinator)
    /// can assemble identical stats.
    pub fn topk_io(&self) -> IoStatsSnapshot {
        self.topk_io
    }

    /// The configuration in effect.
    pub fn config(&self) -> RegionConfig {
        self.config
    }

    /// Computes the immutable regions (and, for `φ > 0`, the surrounding
    /// regions) of every query dimension.
    pub fn compute(&mut self) -> IrResult<RegionReport> {
        let initial_candidates = self.ta.candidates().len();
        // Thread-shard diff, like `with_ta_config`: identical to the pool
        // total in sequential use, correctly attributed when other workers
        // share the pool.
        let io_before = self.index.thread_io_snapshot();
        let started = Instant::now();

        let mut evaluator = CandidateEvaluator::new(&self.index);
        let qlen = self.ta.dims().len();
        let mut dims: Vec<DimRegions> = Vec::with_capacity(qlen);
        let mut evaluated_per_dim = Vec::with_capacity(qlen);
        let mut evaluated_total = 0u64;
        let mut phase3_total = 0u64;
        let mut footprint = 0usize;

        for dim_index in 0..qlen {
            evaluator.start_dimension();
            // The flat (Lemma-1 against d_k) solver is only valid while the
            // result ordering is fixed inside the region, i.e. when
            // reorderings count as perturbations. In composition-only mode
            // the lowest-ranked result member can change identity inside the
            // region, so the envelope-based solver is used even for φ = 0.
            let use_flat =
                self.config.phi == 0 && self.config.mode == PerturbationMode::WithReorderings;
            let (regions, info) = if use_flat {
                solve_dim_flat(
                    &self.index,
                    &mut self.ta,
                    dim_index,
                    &self.config,
                    &mut evaluator,
                )?
            } else {
                solve_dim_phi(
                    &self.index,
                    &mut self.ta,
                    dim_index,
                    &self.config,
                    &mut evaluator,
                )?
            };
            evaluated_per_dim.push(info.evaluated);
            evaluated_total += info.evaluated;
            phase3_total += info.phase3_tuples;
            footprint = footprint.max(info.footprint_bytes);
            dims.push(regions);
        }

        let cpu_time = started.elapsed();
        let io = self.index.thread_io_snapshot().since(&io_before);
        let stats = ComputationStats {
            evaluated_candidates: evaluated_total,
            evaluated_per_dim,
            phase3_tuples: phase3_total,
            initial_candidates,
            io,
            topk_io: self.topk_io,
            cpu_time,
            memory_footprint_bytes: footprint,
        };
        Ok(RegionReport { dims, stats })
    }

    /// Computes the regions with the per-dimension solves fanned out over
    /// up to `threads` workers (see [`crate::parallel`]).
    ///
    /// Every dimension is solved from a private clone of the initial TA
    /// snapshot, so the report — regions *and* candidate counts — is
    /// identical for every `threads` value; only `cpu_time` and
    /// physical-read counts (cache dependent) vary. Unlike
    /// [`RegionComputation::compute`], later dimensions do not reuse the
    /// Phase-3 discoveries of earlier ones, which is exactly what makes the
    /// solves order-free; the regions themselves are the same either way.
    pub fn compute_parallel(&self, threads: usize) -> IrResult<RegionReport> {
        let initial_candidates = self.ta.candidates().len();
        let started = Instant::now();
        let qlen = self.ta.dims().len();

        let (solved, _worker_io) =
            crate::parallel::run_queries(&self.index, threads, qlen, "dimension", |dim_index| {
                let before = self.index.thread_io_snapshot();
                let result = crate::parallel::solve_dim_from_snapshot(
                    &self.index,
                    &self.ta,
                    dim_index,
                    &self.config,
                );
                let io = self.index.thread_io_snapshot().since(&before);
                result.map(|(regions, info)| (regions, info, io))
            });

        // Merge in dimension order — fixed by index, never completion order.
        let mut dims: Vec<DimRegions> = Vec::with_capacity(qlen);
        let mut evaluated_per_dim = Vec::with_capacity(qlen);
        let mut evaluated_total = 0u64;
        let mut phase3_total = 0u64;
        let mut footprint = 0usize;
        let mut io = ir_storage::IoStatsSnapshot::default();
        for solved_dim in solved {
            let (regions, info, dim_io) = solved_dim?;
            evaluated_per_dim.push(info.evaluated);
            evaluated_total += info.evaluated;
            phase3_total += info.phase3_tuples;
            footprint = footprint.max(info.footprint_bytes);
            io = io.plus(&dim_io);
            dims.push(regions);
        }

        let stats = ComputationStats {
            evaluated_candidates: evaluated_total,
            evaluated_per_dim,
            phase3_tuples: phase3_total,
            initial_candidates,
            io,
            topk_io: self.topk_io,
            cpu_time: started.elapsed(),
            memory_footprint_bytes: footprint,
        };
        Ok(RegionReport { dims, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use crate::region::Perturbation;
    use ir_types::{Dataset, DimId, TupleId};

    fn running_setup() -> (TopKIndex, QueryVector) {
        let dataset = Dataset::running_example();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        (index, QueryVector::running_example())
    }

    /// The running example of Section 1: IR_1 = (-16/35, 0.1) and
    /// IR_2 = (-1/18, 0.5), for every algorithm.
    #[test]
    fn running_example_regions_for_all_algorithms() {
        let (index, query) = running_setup();
        for algorithm in Algorithm::ALL {
            let mut computation =
                RegionComputation::new(&index, &query, RegionConfig::flat(algorithm)).unwrap();
            let report = computation.compute().unwrap();
            assert_eq!(
                computation.result().ids(),
                vec![TupleId(1), TupleId(0)],
                "{}",
                algorithm.name()
            );
            let d0 = report.for_dim(DimId(0)).unwrap();
            assert!(
                (d0.immutable.lo + 16.0 / 35.0).abs() < 1e-9,
                "{}: lo = {}",
                algorithm.name(),
                d0.immutable.lo
            );
            assert!(
                (d0.immutable.hi - 0.1).abs() < 1e-9,
                "{}: hi = {}",
                algorithm.name(),
                d0.immutable.hi
            );
            let d1 = report.for_dim(DimId(1)).unwrap();
            assert!(
                (d1.immutable.lo + 1.0 / 18.0).abs() < 1e-9,
                "{}",
                algorithm.name()
            );
            assert!((d1.immutable.hi - 0.5).abs() < 1e-9, "{}", algorithm.name());
        }
    }

    /// The perturbations at the region boundaries match Section 1: raising
    /// q_1 past 0.1 swaps d1 and d2; lowering it past -16/35 brings d3 in.
    #[test]
    fn running_example_boundary_perturbations() {
        let (index, query) = running_setup();
        let mut computation =
            RegionComputation::new(&index, &query, RegionConfig::flat(Algorithm::Cpt)).unwrap();
        let report = computation.compute().unwrap();
        let d0 = report.for_dim(DimId(0)).unwrap();
        match d0.upper_boundary.unwrap().perturbation {
            crate::region::Perturbation::Reorder {
                moved_up,
                moved_down,
            } => {
                assert_eq!(moved_up, TupleId(0));
                assert_eq!(moved_down, TupleId(1));
            }
            other => panic!("expected a reorder at the upper bound, got {other:?}"),
        }
        match d0.lower_boundary.unwrap().perturbation {
            crate::region::Perturbation::Replace { entering, leaving } => {
                assert_eq!(entering, TupleId(2));
                assert_eq!(leaving, TupleId(0));
            }
            other => panic!("expected a replacement at the lower bound, got {other:?}"),
        }
    }

    /// φ = 1 on the running example, dimension 1: the paper (Section 1)
    /// gives the adjacent regions (0.1, 0.2) with result [d1, d2] and
    /// (-0.55, -16/35) with result [d2, d3].
    #[test]
    fn running_example_phi_one_regions() {
        let (index, query) = running_setup();
        for algorithm in Algorithm::ALL {
            let mut computation =
                RegionComputation::new(&index, &query, RegionConfig::with_phi(algorithm, 1))
                    .unwrap();
            let report = computation.compute().unwrap();
            let d0 = report.for_dim(DimId(0)).unwrap();
            assert!(
                (d0.immutable.lo + 16.0 / 35.0).abs() < 1e-9,
                "{}",
                algorithm.name()
            );
            assert!((d0.immutable.hi - 0.1).abs() < 1e-9, "{}", algorithm.name());

            let right = d0.region_at(0.15).expect("region to the right");
            assert_eq!(
                right.result,
                vec![TupleId(0), TupleId(1)],
                "{}",
                algorithm.name()
            );
            assert!((right.delta_lo - 0.1).abs() < 1e-9);
            assert!(
                (right.delta_hi - 0.2).abs() < 1e-9,
                "{}: {}",
                algorithm.name(),
                right.delta_hi
            );

            let left = d0.region_at(-0.5).expect("region to the left");
            assert_eq!(
                left.result,
                vec![TupleId(1), TupleId(2)],
                "{}",
                algorithm.name()
            );
            assert!((left.delta_hi + 16.0 / 35.0).abs() < 1e-9);
            assert!(
                (left.delta_lo + 0.55).abs() < 1e-9,
                "{}: {}",
                algorithm.name(),
                left.delta_lo
            );
        }
    }

    #[test]
    fn composition_only_mode_widens_dimension_one() {
        // In composition-only mode the reorder of d1/d2 at +0.1 no longer
        // bounds IR_1; the upper bound is instead where a new tuple would
        // enter the top-2 (or the domain edge).
        let (index, query) = running_setup();
        let mut computation = RegionComputation::new(
            &index,
            &query,
            RegionConfig::flat(Algorithm::Cpt).composition_only(),
        )
        .unwrap();
        let report = computation.compute().unwrap();
        let d0 = report.for_dim(DimId(0)).unwrap();
        assert!(d0.immutable.hi > 0.1 + 1e-9);
        assert_eq!(report.stats.evaluated_per_dim.len(), 2);
        // The other-mode lower bound is unchanged: d3 entering is a
        // composition change either way.
        assert!((d0.immutable.lo + 16.0 / 35.0).abs() < 1e-9);
    }

    #[test]
    fn stats_reflect_work_done() {
        let (index, query) = running_setup();
        index.cold_start();
        let mut scan =
            RegionComputation::new(&index, &query, RegionConfig::flat(Algorithm::Scan)).unwrap();
        let scan_report = scan.compute().unwrap();
        assert_eq!(scan_report.stats.evaluated_per_dim.len(), 2);
        assert!(scan_report.stats.io.logical_reads > 0);
        assert!(scan_report.stats.cpu_time.as_nanos() > 0);

        index.cold_start();
        let mut cpt =
            RegionComputation::new(&index, &query, RegionConfig::flat(Algorithm::Cpt)).unwrap();
        let cpt_report = cpt.compute().unwrap();
        assert!(
            cpt_report.stats.evaluated_candidates <= scan_report.stats.evaluated_candidates,
            "CPT must not evaluate more candidates than Scan"
        );
    }

    #[test]
    fn composition_only_regions_contain_reordering_regions() {
        // Ignoring reorderings can only widen every immutable region: the
        // strict-mode region must be contained in the composition-only one.
        let (index, query) = running_setup();
        for algorithm in Algorithm::ALL {
            let mut strict =
                RegionComputation::new(&index, &query, RegionConfig::flat(algorithm)).unwrap();
            let strict_report = strict.compute().unwrap();
            let mut loose = RegionComputation::new(
                &index,
                &query,
                RegionConfig::flat(algorithm).composition_only(),
            )
            .unwrap();
            let loose_report = loose.compute().unwrap();
            for dim in [DimId(0), DimId(1)] {
                let s = strict_report.for_dim(dim).unwrap();
                let l = loose_report.for_dim(dim).unwrap();
                assert!(
                    l.immutable.lo <= s.immutable.lo + 1e-12,
                    "{}",
                    algorithm.name()
                );
                assert!(
                    l.immutable.hi >= s.immutable.hi - 1e-12,
                    "{}",
                    algorithm.name()
                );
            }
            // In strict mode, IR_2's lower bound is the d1/d2 reordering at
            // -1/18 (Figure 5, Phase 1).
            let d1 = strict_report.for_dim(DimId(1)).unwrap();
            assert!(
                (d1.immutable.lo + 1.0 / 18.0).abs() < 1e-9,
                "{}",
                algorithm.name()
            );
            assert_eq!(
                d1.lower_boundary.unwrap().perturbation,
                Perturbation::Reorder {
                    moved_up: TupleId(0),
                    moved_down: TupleId(1)
                },
                "{}",
                algorithm.name()
            );
        }
    }
}
