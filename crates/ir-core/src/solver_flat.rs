//! The `φ = 0` solver: Phases 1–3 for a single query dimension.
//!
//! This module contains the shared skeleton of Scan, Prune, Thres and CPT
//! when a single immutable region per dimension is requested:
//!
//! * **Phase 1** (Algorithm 1): tighten the region so the relative order
//!   among the result tuples is preserved (skipped in composition-only
//!   mode).
//! * **Phase 2**: tighten the region so no candidate of `C(q)` overtakes the
//!   k-th result tuple. The algorithms differ only here — which candidates
//!   they consider (pruning) and in which order / with what early
//!   termination (thresholding).
//! * **Phase 3** (Algorithm 2): resume TA and keep tightening until no
//!   unseen tuple can possibly overtake the k-th result tuple anywhere
//!   inside the current region.

use crate::config::{PerturbationMode, RegionConfig};
use crate::evaluator::CandidateEvaluator;
use crate::lemma::ScoreCoord;
use crate::partition::Partition;
use crate::region::{DimRegions, Perturbation, RegionBoundary, WeightRegion};
use crate::threshold::{exhaustive_phase2, threshold_phase2, BoundState, CandView};
use ir_geometry::Interval;
use ir_storage::TopKIndex;
use ir_topk::TaRun;
use ir_types::{IrError, IrResult, TupleId};

/// Per-dimension bookkeeping returned alongside the regions.
#[derive(Clone, Copy, Debug, Default)]
pub struct DimSolveInfo {
    /// Candidates evaluated for this dimension.
    pub evaluated: u64,
    /// Tuples newly discovered by the resumed TA of Phase 3.
    pub phase3_tuples: u64,
    /// Number of candidates Phase 2 worked on (after pruning, if any).
    pub phase2_pool: usize,
    /// Approximate bytes of candidate bookkeeping this dimension required.
    pub footprint_bytes: usize,
}

/// Solves one query dimension for `φ = 0`.
pub fn solve_dim_flat(
    index: &TopKIndex,
    ta: &mut TaRun,
    dim_index: usize,
    config: &RegionConfig,
    evaluator: &mut CandidateEvaluator<'_>,
) -> IrResult<(DimRegions, DimSolveInfo)> {
    let dim = ta.dims()[dim_index];
    let weight = ta.weights()[dim_index];
    let result: Vec<(TupleId, f64, f64)> = ta
        .result_entries()
        .iter()
        .map(|e| (e.id, e.score, e.coord(dim_index)))
        .collect();
    let result_ids: Vec<TupleId> = result.iter().map(|(id, _, _)| *id).collect();

    let mut info = DimSolveInfo::default();
    let mut bounds = BoundState::widest(weight);
    // The perturbation occurring at each bound (provenance).
    let mut lower_perturbation: Option<Perturbation> = None;
    let mut upper_perturbation: Option<Perturbation> = None;

    if result.is_empty() {
        // Degenerate query: nothing can ever change.
        let regions = vec![WeightRegion {
            delta_lo: bounds.lower,
            delta_hi: bounds.upper,
            result: vec![],
        }];
        return Ok((
            DimRegions {
                dim,
                weight,
                immutable: Interval::new(bounds.lower, bounds.upper),
                lower_boundary: None,
                upper_boundary: None,
                regions,
                current_region: 0,
            },
            info,
        ));
    }

    // ------------------------------------------------------------------
    // Phase 1: reorderings inside R(q) (Algorithm 1).
    // ------------------------------------------------------------------
    if config.mode == PerturbationMode::WithReorderings {
        for pair in result.windows(2) {
            let (anchor_id, anchor_score, anchor_coord) = pair[0];
            let (chall_id, chall_score, chall_coord) = pair[1];
            let before = (bounds.lower, bounds.upper);
            bounds.tighten(
                ScoreCoord::new(anchor_score, anchor_coord),
                ScoreCoord::new(chall_score, chall_coord),
                chall_id,
            );
            if bounds.upper < before.1 {
                upper_perturbation = Some(Perturbation::Reorder {
                    moved_up: chall_id,
                    moved_down: anchor_id,
                });
            }
            if bounds.lower > before.0 {
                lower_perturbation = Some(Perturbation::Reorder {
                    moved_up: chall_id,
                    moved_down: anchor_id,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: candidates in C(q).
    // ------------------------------------------------------------------
    // The empty-result case returned early above, so the top-k buffer is
    // provably non-empty here; the guard keeps the lints' no-panic promise.
    let Some(&(dk_id, dk_score, dk_coord)) = result.last() else {
        return Err(IrError::InvalidConfig(
            "top-k result unexpectedly empty after non-empty check".to_string(),
        ));
    };
    let dk = ScoreCoord::new(dk_score, dk_coord);

    let candidate_views: Vec<CandView> = ta
        .candidates()
        .iter()
        .map(|c| CandView {
            id: c.id,
            score: c.score,
            coord: c.coord(dim_index),
        })
        .collect();
    let all_candidate_entries: Vec<_> = ta.candidates().entries().to_vec();

    let selected: Vec<CandView> = if config.algorithm.prunes() {
        let partition = Partition::classify(&all_candidate_entries, dim_index);
        let mut picks: Vec<usize> = partition.low.clone();
        picks.extend(partition.top_zero_by_score(1));
        picks.extend(partition.top_high_by_coord(&all_candidate_entries, dim_index, 1));
        picks.sort_unstable();
        picks.dedup();
        picks.into_iter().map(|i| candidate_views[i]).collect()
    } else {
        candidate_views.clone()
    };
    info.phase2_pool = selected.len();
    info.footprint_bytes = phase2_footprint(
        config,
        all_candidate_entries.len(),
        selected.len(),
        ta.dims().len(),
    );

    {
        let before_eval = evaluator.evaluated();
        let track_upper_before = bounds.upper;
        let track_lower_before = bounds.lower;
        let mut eval_fn = |id: TupleId| evaluator.evaluate(id, dim);
        if config.algorithm.thresholds() {
            threshold_phase2(dk, &selected, &mut bounds, &mut eval_fn)?;
        } else {
            exhaustive_phase2(dk, &selected, &mut bounds, &mut eval_fn)?;
        }
        info.evaluated += evaluator.evaluated() - before_eval;
        if bounds.upper < track_upper_before {
            if let Some(cause) = bounds.upper_cause {
                upper_perturbation = Some(Perturbation::Replace {
                    entering: cause,
                    leaving: dk_id,
                });
            }
        }
        if bounds.lower > track_lower_before {
            if let Some(cause) = bounds.lower_cause {
                lower_perturbation = Some(Perturbation::Replace {
                    entering: cause,
                    leaving: dk_id,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: tuples outside R(q) and C(q) (Algorithm 2).
    // ------------------------------------------------------------------
    {
        let weights = ta.weights().to_vec();
        loop {
            let tvals = ta.threshold_values().to_vec();
            let sum_other: f64 = weights
                .iter()
                .zip(&tvals)
                .enumerate()
                .filter(|(i, _)| *i != dim_index)
                .map(|(_, (w, t))| w * t)
                .sum();
            let tj = tvals[dim_index];
            // If d_k's entry in L_j precedes the scan frontier it was reached
            // via sorted access, so no unseen tuple has a larger j-coordinate
            // and the upper bound is already final (Section 4, Phase 3).
            let upper_needs_scan = dk_coord <= tj;
            let s_low = dk_score + bounds.lower * dk_coord;
            let s_high = dk_score + bounds.upper * dk_coord;
            let lower_active = sum_other + (weight + bounds.lower) * tj > s_low;
            let upper_active =
                upper_needs_scan && sum_other + (weight + bounds.upper) * tj > s_high;
            if !lower_active && !upper_active {
                break;
            }
            let Some(entry) = ta.resume_next_candidate(index)? else {
                break;
            };
            info.phase3_tuples += 1;
            let before_eval = evaluator.evaluated();
            let coord = evaluator.evaluate(entry.id, dim)?;
            info.evaluated += evaluator.evaluated() - before_eval;
            let before = (bounds.lower, bounds.upper);
            bounds.tighten(dk, ScoreCoord::new(entry.score, coord), entry.id);
            if bounds.upper < before.1 {
                upper_perturbation = Some(Perturbation::Replace {
                    entering: entry.id,
                    leaving: dk_id,
                });
            }
            if bounds.lower > before.0 {
                lower_perturbation = Some(Perturbation::Replace {
                    entering: entry.id,
                    leaving: dk_id,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Assemble the per-dimension output.
    // ------------------------------------------------------------------
    let immutable = Interval::new_clamped(bounds.lower, bounds.upper);
    let lower_boundary = lower_perturbation.map(|perturbation| RegionBoundary {
        delta: immutable.lo,
        perturbation,
    });
    let upper_boundary = upper_perturbation.map(|perturbation| RegionBoundary {
        delta: immutable.hi,
        perturbation,
    });
    let regions = vec![WeightRegion {
        delta_lo: immutable.lo,
        delta_hi: immutable.hi,
        result: result_ids,
    }];
    Ok((
        DimRegions {
            dim,
            weight,
            immutable,
            lower_boundary,
            upper_boundary,
            regions,
            current_region: 0,
        },
        info,
    ))
}

/// Memory-footprint model of Section 7.2: Scan keeps a `(score, pointer)`
/// pair per candidate; thresholding additionally keeps the score- and
/// coordinate-sorted lists (one pointer each per member of its pool); pruning
/// shrinks the pool itself.
pub fn phase2_footprint(
    config: &RegionConfig,
    total_candidates: usize,
    pool: usize,
    _qlen: usize,
) -> usize {
    let pair = std::mem::size_of::<f64>() + std::mem::size_of::<u64>();
    let pointer = std::mem::size_of::<u64>();
    let base = if config.algorithm.prunes() {
        // The on-the-fly optimisation keeps only the pruned pool per
        // dimension.
        pool * pair
    } else {
        total_candidates * pair
    };
    let lists = if config.algorithm.thresholds() {
        2 * pool * pointer
    } else {
        0
    };
    base + lists
}
