//! Parallel execution of region computations.
//!
//! The per-dimension region computations of a query are independent (they
//! only read the frozen TA snapshot and the shared, `Sync` index), and so
//! are the computations of distinct queries. This module exploits both
//! levels:
//!
//! * [`RegionComputation::compute_parallel`](crate::RegionComputation::compute_parallel)
//!   fans the per-dimension solves of *one* query out over a scoped
//!   work-stealing worker pool, and
//! * [`BatchRegionComputation`] runs *many* queries concurrently over one
//!   warm buffer pool, each worker owning its private scratch state (a
//!   cloned [`TaRun`] snapshot plus a fresh
//!   [`CandidateEvaluator`]).
//!
//! **Determinism.** Parallel output is byte-for-byte identical for every
//! worker count, and merge order is fixed by dimension / query index, never
//! by completion order. Per-dimension fan-out solves each dimension from a
//! private clone of the *initial* TA snapshot — a pure function of index +
//! query, independent of scheduling. Batch fan-out runs each query's plain
//! sequential solve on one worker, so its reports equal the sequential
//! oracle's exactly (regions *and* candidate counts). Only wall-clock time
//! and physical-read counts (cache-state dependent) may vary between runs.
//!
//! **Panic containment.** Every job runs under `catch_unwind`: a panicking
//! worker job surfaces as a typed [`ir_types::IrError::WorkerPanicked`] in
//! that job's result slot, other jobs complete normally, and no mutex is
//! ever poisoned (the collection locks are `parking_lot` locks, which have
//! no poisoning at all) — the process and the driver stay fully serviceable.
//!
//! **I/O attribution.** Workers register a private shard of the pool's
//! sharded I/O counters ([`ir_storage::set_thread_stats_shard`]) and diff it
//! around their own work, so per-query and per-worker I/O tallies stay exact
//! while many workers hammer the same buffer pool, and the per-worker
//! tallies always merge losslessly into the pool total.

use crate::compute::{IndexHandle, RegionComputation};
use crate::config::{PerturbationMode, RegionConfig};
use crate::evaluator::CandidateEvaluator;
use crate::region::{DimRegions, RegionReport};
use crate::solver_flat::{solve_dim_flat, DimSolveInfo};
use crate::solver_phi::solve_dim_phi;
use ir_storage::{IoStatsSnapshot, TopKIndex};
use ir_topk::{TaConfig, TaRun};
use ir_types::{IrError, IrResult, QueryVector};
use parking_lot::Mutex;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Global allocator of worker shard hints: each pool of workers takes a
/// consecutive block, so up to [`ir_storage::IO_STATS_SHARDS`] concurrent
/// workers own pairwise-distinct shards.
static NEXT_SHARD_HINT: AtomicUsize = AtomicUsize::new(0);

/// Best-effort extraction of a human-readable message from a panic payload
/// (the `&str`/`String` payloads `panic!` produces; anything else becomes a
/// placeholder).
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `job(i)`, converting a panic into a typed
/// [`IrError::WorkerPanicked`] naming the job as `"{label} {i}"`.
fn run_contained<T, F>(label: &str, i: usize, job: &F) -> IrResult<T>
where
    F: Fn(usize) -> IrResult<T> + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| job(i))) {
        Ok(result) => result,
        Err(payload) => Err(IrError::WorkerPanicked {
            job: format!("{label} {i}"),
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Runs `n` index-bound jobs on up to `threads` workers and returns the
/// per-job results **in job order** together with one I/O tally per worker.
///
/// The driver is a scoped work-stealing pool: workers pull the next
/// unclaimed job index from a shared atomic counter until none remain, so
/// an uneven job mix self-balances. With `threads <= 1` (or a single job)
/// everything runs inline on the caller — bit-identical to the threaded
/// path, because job results never depend on which worker ran them.
///
/// **Panic containment.** Each job runs under `catch_unwind`: a panicking
/// job becomes an `Err(`[`IrError::WorkerPanicked`]`)` in its slot of the
/// result vector (named `"{label} {i}"`), the worker moves on to the next
/// job, and no lock is ever poisoned — the process survives and every other
/// job's result is unaffected.
///
/// Each spawned worker pins a private I/O-stats shard and reports the shard
/// delta it caused; with the run's workers owning their shards (guaranteed
/// within a single run — worker counts are capped at the shard count) the
/// tallies sum to exactly the I/O of the whole run. If *other* threads use
/// the same pool concurrently (another driver run, or a sequential caller
/// whose hash-derived shard collides), their reads can blur into a worker's
/// tally; the pool totals remain exact either way.
pub fn run_queries<T, F>(
    index: &TopKIndex,
    threads: usize,
    n: usize,
    label: &str,
    job: F,
) -> (Vec<IrResult<T>>, Vec<IoStatsSnapshot>)
where
    T: Send,
    F: Fn(usize) -> IrResult<T> + Sync,
{
    // Clamp to the shard count: a single pool of up to IO_STATS_SHARDS
    // workers owns pairwise-distinct stats shards (consecutive hint block),
    // which is what keeps the per-worker I/O tallies exact. More workers
    // than shards would alias shards and double-count concurrent diffs.
    let threads = threads
        .max(1)
        .min(n.max(1))
        .min(ir_storage::IO_STATS_SHARDS);
    if threads <= 1 {
        let before = index.thread_io_snapshot();
        let items: Vec<IrResult<T>> = (0..n).map(|i| run_contained(label, i, &job)).collect();
        let io = index.thread_io_snapshot().since(&before);
        return (items, vec![io]);
    }

    let next_job = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, IrResult<T>)>> = Mutex::new(Vec::with_capacity(n));
    let tallies: Mutex<Vec<IoStatsSnapshot>> = Mutex::new(Vec::with_capacity(threads));
    let hint_base = NEXT_SHARD_HINT.fetch_add(threads, Ordering::Relaxed);
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let job = &job;
            let next_job = &next_job;
            let collected = &collected;
            let tallies = &tallies;
            scope.spawn(move || {
                ir_storage::set_thread_stats_shard(hint_base.wrapping_add(worker));
                let before = index.thread_io_snapshot();
                let mut local = Vec::new();
                loop {
                    let i = next_job.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, run_contained(label, i, job)));
                }
                let io = index.thread_io_snapshot().since(&before);
                collected.lock().extend(local);
                tallies.lock().push(io);
            });
        }
    });
    let mut items = collected.into_inner();
    items.sort_by_key(|(i, _)| *i);
    (
        items.into_iter().map(|(_, item)| item).collect(),
        tallies.into_inner(),
    )
}

/// Solves one query dimension from a frozen TA snapshot.
///
/// The snapshot is cloned, so the caller's `TaRun` is untouched and many
/// workers can solve distinct dimensions of the same query concurrently.
/// The result is a pure function of `(index contents, snapshot, dim_index,
/// config)` — independent of thread count and scheduling — which is what
/// makes the parallel drivers deterministic.
pub fn solve_dim_from_snapshot(
    index: &TopKIndex,
    ta: &TaRun,
    dim_index: usize,
    config: &RegionConfig,
) -> IrResult<(DimRegions, DimSolveInfo)> {
    let mut ta = ta.clone();
    let mut evaluator = CandidateEvaluator::new(index);
    evaluator.start_dimension();
    // Same dispatch as the sequential path (see `RegionComputation::compute`):
    // the flat Lemma-1 solver is only valid while reorderings count as
    // perturbations and a single region is requested.
    let use_flat = config.phi == 0 && config.mode == PerturbationMode::WithReorderings;
    if use_flat {
        solve_dim_flat(index, &mut ta, dim_index, config, &mut evaluator)
    } else {
        solve_dim_phi(index, &mut ta, dim_index, config, &mut evaluator)
    }
}

/// The outcome of a [`BatchRegionComputation`] run: the per-query reports
/// (in query order) plus batch-level bookkeeping.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// One report per input query, in input order regardless of which
    /// worker finished when.
    pub reports: Vec<RegionReport>,
    /// I/O attributed to each worker of the pool; sums to the I/O of the
    /// whole batch when this batch's threads are the pool's only users
    /// (see [`run_queries`] on shard ownership).
    pub worker_io: Vec<IoStatsSnapshot>,
    /// Wall-clock time of the whole batch.
    pub wall_time: Duration,
}

impl BatchOutcome {
    /// The batch-wide I/O: counter-wise sum of the per-worker tallies.
    pub fn total_io(&self) -> IoStatsSnapshot {
        self.worker_io
            .iter()
            .fold(IoStatsSnapshot::default(), |acc, io| acc.plus(io))
    }
}

/// Runs many queries concurrently over one shared index and warm buffer
/// pool — the "serve heavy traffic" entry point.
///
/// ```
/// use ir_core::{parallel::BatchRegionComputation, RegionConfig};
/// use ir_storage::TopKIndex;
/// use ir_types::{Dataset, QueryVector};
///
/// let dataset = Dataset::running_example();
/// let index = TopKIndex::build_in_memory(&dataset).unwrap();
/// let queries = vec![QueryVector::running_example(); 4];
/// let batch = BatchRegionComputation::new(&index, RegionConfig::default()).with_threads(2);
/// let reports = batch.run(&queries).unwrap();
/// assert_eq!(reports.len(), 4);
/// // Deterministic: every worker count yields identical regions.
/// let sequential = BatchRegionComputation::new(&index, RegionConfig::default())
///     .run(&queries)
///     .unwrap();
/// assert!(reports
///     .iter()
///     .zip(&sequential)
///     .all(|(a, b)| a.dims == b.dims));
/// ```
#[derive(Clone)]
#[must_use = "a batch runner does nothing until `run` is called"]
pub struct BatchRegionComputation<'a> {
    index: IndexHandle<'a>,
    config: RegionConfig,
    ta_config: TaConfig,
    threads: usize,
}

impl<'a> BatchRegionComputation<'a> {
    /// Creates a batch runner over `index` with one worker (sequential).
    pub fn new(index: &'a TopKIndex, config: RegionConfig) -> Self {
        Self::from_handle(IndexHandle::Borrowed(index), config)
    }

    /// Like [`BatchRegionComputation::new`], but holding the index via
    /// [`Arc`](std::sync::Arc): the runner has no borrowed lifetime, so an
    /// owning service can store it or move it across threads.
    pub fn new_shared(
        index: std::sync::Arc<TopKIndex>,
        config: RegionConfig,
    ) -> BatchRegionComputation<'static> {
        BatchRegionComputation::from_handle(IndexHandle::Shared(index), config)
    }

    fn from_handle<'b>(index: IndexHandle<'b>, config: RegionConfig) -> BatchRegionComputation<'b> {
        BatchRegionComputation {
            index,
            config,
            ta_config: TaConfig::default(),
            threads: 1,
        }
    }

    /// Sets the worker count (clamped to at least 1; the driver further
    /// caps it at [`ir_storage::IO_STATS_SHARDS`] so every worker owns a
    /// private stats shard). Regions and deterministic counters are
    /// identical for every value; only wall-clock time and cache-dependent
    /// physical reads change.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the TA configuration used for every query.
    pub fn with_ta_config(mut self, ta_config: TaConfig) -> Self {
        self.ta_config = ta_config;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The region configuration every query runs with.
    pub fn config(&self) -> RegionConfig {
        self.config
    }

    /// Runs every query and returns the reports in query order.
    pub fn run(&self, queries: &[QueryVector]) -> IrResult<Vec<RegionReport>> {
        self.run_detailed(queries).map(|outcome| outcome.reports)
    }

    /// Runs every query, also returning per-worker I/O tallies and the
    /// batch wall-clock time.
    pub fn run_detailed(&self, queries: &[QueryVector]) -> IrResult<BatchOutcome> {
        let started = Instant::now();
        let (results, worker_io) = run_queries(
            &self.index,
            self.threads,
            queries.len(),
            "query",
            |query_index| {
                let mut computation = RegionComputation::with_ta_config(
                    &self.index,
                    &queries[query_index],
                    self.config,
                    &self.ta_config,
                )?;
                // Each query runs the plain sequential solve on its worker:
                // a query is self-contained, so the report (regions *and*
                // candidate counts) is exactly what the sequential oracle
                // produces, for every worker count. Per-dimension fan-out
                // (`compute_parallel`) is a separate, latency-oriented tool.
                computation.compute()
            },
        );
        let reports = results.into_iter().collect::<IrResult<Vec<_>>>()?;
        Ok(BatchOutcome {
            reports,
            worker_io,
            wall_time: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use ir_types::{Dataset, DatasetBuilder};

    /// Silences the default panic hook for deliberately injected panics
    /// (spawned worker threads are outside libtest's output capture);
    /// everything else still reaches the default hook.
    fn quiet_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !panic_message(info.payload()).contains("injected fault") {
                    default(info);
                }
            }));
        });
    }

    fn medium_dataset() -> Dataset {
        let mut builder = DatasetBuilder::new(5);
        for i in 0..160u32 {
            let pairs: Vec<(u32, f64)> = (0..5u32)
                .map(|d| (d, (((i * 31 + d * 17) % 97) + 1) as f64 / 98.0))
                .collect();
            builder.push_pairs(pairs).unwrap();
        }
        builder.build()
    }

    fn queries(k: usize) -> Vec<QueryVector> {
        (0..6u32)
            .map(|i| {
                QueryVector::new(
                    [
                        (i % 5, 0.2 + 0.1 * (i % 4) as f64),
                        ((i + 1) % 5, 0.9 - 0.1 * (i % 3) as f64),
                        ((i + 2) % 5, 0.5),
                    ],
                    k,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn run_queries_preserves_job_order() {
        let dataset = Dataset::running_example();
        let index = ir_storage::TopKIndex::build_in_memory(&dataset).unwrap();
        for threads in [1usize, 2, 5] {
            let (items, tallies) = run_queries(&index, threads, 9, "job", |i| Ok(i * i));
            let items: Vec<usize> = items.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(items, (0..9).map(|i| i * i).collect::<Vec<_>>());
            assert!(!tallies.is_empty());
        }
    }

    #[test]
    fn run_queries_contains_panics_per_job() {
        let dataset = Dataset::running_example();
        let index = ir_storage::TopKIndex::build_in_memory(&dataset).unwrap();
        // Suppress the default panic hook's stderr spam for the injected
        // panics; the hook is process-global, so set it once.
        quiet_panics();
        for threads in [1usize, 2, 8] {
            let (items, _) = run_queries(&index, threads, 9, "job", |i| {
                if i == 4 {
                    panic!("injected fault: job four exploded");
                }
                Ok(i)
            });
            assert_eq!(items.len(), 9);
            for (i, item) in items.iter().enumerate() {
                if i == 4 {
                    let err = item.as_ref().unwrap_err();
                    match err {
                        IrError::WorkerPanicked { job, message } => {
                            assert_eq!(job, "job 4");
                            assert!(message.contains("exploded"), "{message}");
                        }
                        other => panic!("expected WorkerPanicked, got: {other}"),
                    }
                } else {
                    assert_eq!(*item.as_ref().unwrap(), i, "threads = {threads}");
                }
            }
        }
        // The driver is reusable after a panic: no poisoned state anywhere.
        let (items, _) = run_queries(&index, 4, 3, "job", Ok);
        assert!(items.into_iter().all(|r| r.is_ok()));
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let from_str = std::panic::catch_unwind(|| panic!("plain &str")).unwrap_err();
        assert_eq!(panic_message(from_str.as_ref()), "plain &str");
        let from_string = std::panic::catch_unwind(|| panic!("formatted {}", 42)).unwrap_err();
        assert_eq!(panic_message(from_string.as_ref()), "formatted 42");
        let opaque = std::panic::catch_unwind(|| std::panic::panic_any(17u32)).unwrap_err();
        assert_eq!(panic_message(opaque.as_ref()), "non-string panic payload");
    }

    #[test]
    fn batch_reports_match_for_every_worker_count() {
        let dataset = medium_dataset();
        let index = ir_storage::TopKIndex::build_in_memory(&dataset).unwrap();
        let queries = queries(4);
        let baseline = BatchRegionComputation::new(&index, RegionConfig::flat(Algorithm::Cpt))
            .run(&queries)
            .unwrap();
        for threads in [2usize, 4, 8] {
            let reports = BatchRegionComputation::new(&index, RegionConfig::flat(Algorithm::Cpt))
                .with_threads(threads)
                .run(&queries)
                .unwrap();
            assert_eq!(reports.len(), baseline.len());
            for (a, b) in baseline.iter().zip(&reports) {
                assert_eq!(a.dims, b.dims, "threads = {threads}");
            }
        }
    }

    #[test]
    fn worker_tallies_sum_to_batch_io() {
        let dataset = medium_dataset();
        let index = ir_storage::TopKIndex::build_in_memory(&dataset).unwrap();
        index.cold_start();
        let before = index.io_snapshot();
        let outcome = BatchRegionComputation::new(&index, RegionConfig::default())
            .with_threads(3)
            .run_detailed(&queries(3))
            .unwrap();
        let total = index.io_snapshot().since(&before);
        assert_eq!(outcome.total_io(), total);
        assert!(total.logical_reads > 0);
    }
}
