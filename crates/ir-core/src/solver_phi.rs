//! The `φ > 0` solver: successive regions via the kinetic sweep (Section 6).
//!
//! For each query dimension and each direction (positive / negative
//! deviations) the result tuples become lines in the score-coordinate plane;
//! the first `φ + 1` order changes among them (Phase 1), plus the entries of
//! candidate lines into the result (Phase 2) and of tuples discovered by a
//! resumed TA (Phase 3), define the region boundaries. Pruning restricts
//! which candidates need to be considered (Lemma 4) and thresholding
//! processes them in potential order with a threshold-line termination test
//! against the lower envelope of the result.

use crate::config::{PerturbationMode, RegionConfig};
use crate::evaluator::CandidateEvaluator;
use crate::partition::Partition;
use crate::region::{DimRegions, Perturbation, RegionBoundary, WeightRegion};
use crate::solver_flat::{phase2_footprint, DimSolveInfo};
use ir_geometry::{
    sweep_topk, Interval, Line, LowerEnvelope, SweepEvent, SweepEventKind, SweepOutcome,
};
use ir_storage::TopKIndex;
use ir_topk::{CandidateEntry, TaRun};
use ir_types::{IrResult, TupleId};
use std::collections::HashSet;

/// Which side of the current weight a directional sweep covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    /// Positive deviations `δq_j > 0`.
    Right,
    /// Negative deviations `δq_j < 0` (handled by mirroring `x = -δ`).
    Left,
}

/// A candidate as seen by one directional sweep.
#[derive(Clone, Copy, Debug)]
struct PhiCand {
    id: TupleId,
    score: f64,
    coord: f64,
}

impl PhiCand {
    fn line(&self, direction: Direction) -> Line {
        match direction {
            Direction::Right => Line::new(self.id.0 as u64, self.score, self.coord),
            Direction::Left => Line::new(self.id.0 as u64, self.score, -self.coord),
        }
    }
}

/// State of one directional sweep while candidates are being folded in.
struct DirectionalSweep {
    direction: Direction,
    result_lines: Vec<Line>,
    accepted: Vec<Line>,
    x_max: f64,
    max_events: usize,
}

impl DirectionalSweep {
    fn new(
        direction: Direction,
        result: &[(TupleId, f64, f64)],
        weight: f64,
        phi: usize,
        mode: PerturbationMode,
    ) -> Self {
        let result_lines: Vec<Line> = result
            .iter()
            .map(|&(id, score, coord)| match direction {
                Direction::Right => Line::new(id.0 as u64, score, coord),
                Direction::Left => Line::new(id.0 as u64, score, -coord),
            })
            .collect();
        let x_max = match direction {
            Direction::Right => 1.0 - weight,
            Direction::Left => weight,
        };
        // In composition-only mode reorderings among result tuples are not
        // perturbations; the same sweep runs but only Enter events count
        // against φ, so the raw-event budget must cover every possible
        // reordering before the (φ+1)-th entry: at most k + φ + 1 distinct
        // lines ever hold a result slot and each pair crosses at most once.
        let head_room = match mode {
            PerturbationMode::WithReorderings => phi + 1,
            PerturbationMode::CompositionOnly => {
                let members = result.len() + phi + 1;
                (phi + 1) + members * members.saturating_sub(1) / 2 + 1
            }
        };
        DirectionalSweep {
            direction,
            result_lines,
            accepted: Vec::new(),
            x_max,
            max_events: head_room,
        }
    }

    fn add_candidate(&mut self, cand: PhiCand) {
        self.accepted.push(cand.line(self.direction));
    }

    fn outcome(&self) -> SweepOutcome {
        sweep_topk(
            self.result_lines.clone(),
            self.accepted.clone(),
            0.0,
            self.x_max,
            self.max_events,
        )
    }

    /// The lower envelope of the k-th result line over the currently known
    /// region range, used by the threshold-line termination tests.
    fn envelope(&self, outcome: &SweepOutcome) -> Option<LowerEnvelope> {
        if outcome.end_x <= 0.0 {
            return None;
        }
        let lines: Vec<Line> = outcome.envelope.iter().map(|p| p.line).collect();
        if lines.is_empty() {
            return None;
        }
        Some(LowerEnvelope::build(&lines, 0.0, outcome.end_x))
    }
}

/// Counts the events that are perturbations under the given mode.
fn filter_events(events: &[SweepEvent], mode: PerturbationMode, phi: usize) -> Vec<SweepEvent> {
    let mut kept = Vec::new();
    for ev in events {
        let counts = match (mode, &ev.kind) {
            (PerturbationMode::WithReorderings, _) => true,
            (PerturbationMode::CompositionOnly, SweepEventKind::Enter { .. }) => true,
            (PerturbationMode::CompositionOnly, SweepEventKind::Reorder { .. }) => false,
        };
        if counts {
            kept.push(ev.clone());
            if kept.len() > phi {
                break;
            }
        }
    }
    kept
}

fn event_perturbation(kind: &SweepEventKind) -> Perturbation {
    match *kind {
        SweepEventKind::Reorder {
            overtaker,
            overtaken,
        } => Perturbation::Reorder {
            moved_up: TupleId(overtaker as u32),
            moved_down: TupleId(overtaken as u32),
        },
        SweepEventKind::Enter { entering, evicted } => Perturbation::Replace {
            entering: TupleId(entering as u32),
            leaving: TupleId(evicted as u32),
        },
    }
}

fn order_to_ids(order: &[u64]) -> Vec<TupleId> {
    order.iter().map(|&l| TupleId(l as u32)).collect()
}

/// Solves one query dimension for `φ ≥ 1`.
pub fn solve_dim_phi(
    index: &TopKIndex,
    ta: &mut TaRun,
    dim_index: usize,
    config: &RegionConfig,
    evaluator: &mut CandidateEvaluator<'_>,
) -> IrResult<(DimRegions, DimSolveInfo)> {
    let dim = ta.dims()[dim_index];
    let weight = ta.weights()[dim_index];
    let phi = config.phi;
    let result: Vec<(TupleId, f64, f64)> = ta
        .result_entries()
        .iter()
        .map(|e| (e.id, e.score, e.coord(dim_index)))
        .collect();
    let result_ids: Vec<TupleId> = result.iter().map(|(id, _, _)| *id).collect();
    let mut info = DimSolveInfo::default();

    if result.is_empty() {
        let regions = vec![WeightRegion {
            delta_lo: -weight,
            delta_hi: 1.0 - weight,
            result: vec![],
        }];
        return Ok((
            DimRegions {
                dim,
                weight,
                immutable: Interval::new(-weight, 1.0 - weight),
                lower_boundary: None,
                upper_boundary: None,
                regions,
                current_region: 0,
            },
            info,
        ));
    }

    let mut right = DirectionalSweep::new(Direction::Right, &result, weight, phi, config.mode);
    let mut left = DirectionalSweep::new(Direction::Left, &result, weight, phi, config.mode);

    // ------------------------------------------------------------------
    // Phase 2: fold the candidates of C(q) into the sweeps.
    // ------------------------------------------------------------------
    let all_entries: Vec<CandidateEntry> = ta.candidates().entries().to_vec();
    let views: Vec<PhiCand> = all_entries
        .iter()
        .map(|c| PhiCand {
            id: c.id,
            score: c.score,
            coord: c.coord(dim_index),
        })
        .collect();

    // Candidate selection (Lemma 4) per direction.
    let (right_pool, left_pool): (Vec<usize>, Vec<usize>) = if config.algorithm.prunes() {
        let partition = Partition::classify(&all_entries, dim_index);
        let mut right_pool = partition.low.clone();
        right_pool.extend(partition.top_high_by_coord(&all_entries, dim_index, phi + 1));
        let mut left_pool = partition.low.clone();
        left_pool.extend(partition.top_zero_by_score(phi + 1));
        (right_pool, left_pool)
    } else {
        ((0..views.len()).collect(), (0..views.len()).collect())
    };
    let pool_union: HashSet<usize> = right_pool.iter().chain(left_pool.iter()).copied().collect();
    info.phase2_pool = pool_union.len();
    info.footprint_bytes =
        phase2_footprint(config, all_entries.len(), pool_union.len(), ta.dims().len());

    let mut evaluated_ids: HashSet<TupleId> = HashSet::new();
    let feed = |idx: usize,
                sweep: &mut DirectionalSweep,
                evaluator: &mut CandidateEvaluator<'_>,
                evaluated_ids: &mut HashSet<TupleId>,
                info: &mut DimSolveInfo|
     -> IrResult<()> {
        let cand = views[idx];
        if evaluated_ids.insert(cand.id) {
            let before = evaluator.evaluated();
            evaluator.evaluate(cand.id, dim)?;
            info.evaluated += evaluator.evaluated() - before;
        }
        sweep.add_candidate(cand);
        Ok(())
    };

    if config.algorithm.thresholds() {
        // Thresholded processing per direction: pull candidates by potential,
        // stopping as soon as the threshold line cannot reach the envelope.
        for (pool, direction) in [
            (&right_pool, Direction::Right),
            (&left_pool, Direction::Left),
        ] {
            let sweep = match direction {
                Direction::Right => &mut right,
                Direction::Left => &mut left,
            };
            // SLS: by decreasing score. SLj: by potential coordinate — large
            // coordinates help on the right, small ones on the left.
            let mut sls: Vec<usize> = pool.clone();
            sls.sort_by(|&a, &b| {
                views[b]
                    .score
                    .total_cmp(&views[a].score)
                    .then_with(|| views[a].id.cmp(&views[b].id))
            });
            let mut slj: Vec<usize> = pool.clone();
            match direction {
                Direction::Right => slj.sort_by(|&a, &b| {
                    views[b]
                        .coord
                        .total_cmp(&views[a].coord)
                        .then_with(|| views[a].id.cmp(&views[b].id))
                }),
                Direction::Left => slj.sort_by(|&a, &b| {
                    views[a]
                        .coord
                        .total_cmp(&views[b].coord)
                        .then_with(|| views[a].id.cmp(&views[b].id))
                }),
            }
            let mut processed: HashSet<usize> = HashSet::new();
            let (mut pos_s, mut pos_j) = (0usize, 0usize);
            loop {
                // Termination test: the threshold line built from the current
                // list positions must stay strictly below the envelope.
                let outcome = sweep.outcome();
                let envelope = sweep.envelope(&outcome);
                let t_s = sls.get(pos_s).map(|&i| views[i].score);
                let t_j = slj.get(pos_j).map(|&i| views[i].coord);
                let (Some(t_s), Some(t_j)) = (t_s, t_j) else {
                    break; // a list is exhausted: every pool member was seen
                };
                let threshold_line = match direction {
                    Direction::Right => Line::new(u64::MAX, t_s, t_j),
                    Direction::Left => Line::new(u64::MAX, t_s, -t_j),
                };
                if let Some(env) = &envelope {
                    if env.line_strictly_below(&threshold_line) {
                        break;
                    }
                } else {
                    break;
                }
                // Round-robin pull: SLS first, then SLj.
                let mut pulled = false;
                while pos_s < sls.len() {
                    let idx = sls[pos_s];
                    pos_s += 1;
                    if processed.insert(idx) {
                        feed(idx, sweep, evaluator, &mut evaluated_ids, &mut info)?;
                        pulled = true;
                        break;
                    }
                }
                while pos_j < slj.len() {
                    let idx = slj[pos_j];
                    pos_j += 1;
                    if processed.insert(idx) {
                        feed(idx, sweep, evaluator, &mut evaluated_ids, &mut info)?;
                        pulled = true;
                        break;
                    }
                }
                if !pulled {
                    break;
                }
            }
        }
    } else {
        // Scan / Prune: every pool member is evaluated and folded in.
        for &idx in &right_pool {
            feed(idx, &mut right, evaluator, &mut evaluated_ids, &mut info)?;
        }
        for &idx in &left_pool {
            feed(idx, &mut left, evaluator, &mut evaluated_ids, &mut info)?;
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: resume TA until no unseen tuple can reach either envelope.
    // ------------------------------------------------------------------
    loop {
        let right_outcome = right.outcome();
        let left_outcome = left.outcome();
        let tvals = ta.threshold_values().to_vec();
        let weights = ta.weights().to_vec();
        let base: f64 = weights.iter().zip(&tvals).map(|(w, t)| w * t).sum();
        let tj = tvals[dim_index];
        // Unseen tuples score at most `base` at δ = 0; to the right their
        // score grows at most with slope t_j, to the left it cannot grow at
        // all (coordinates are non-negative).
        let right_threshold = Line::new(u64::MAX, base, tj);
        let left_threshold = Line::new(u64::MAX, base, 0.0);
        let right_safe = match right.envelope(&right_outcome) {
            Some(env) => env.line_strictly_below(&right_threshold),
            None => true,
        };
        let left_safe = match left.envelope(&left_outcome) {
            Some(env) => env.line_strictly_below(&left_threshold),
            None => true,
        };
        if (right_safe && left_safe) || ta.exhausted() {
            break;
        }
        let Some(entry) = ta.resume_next_candidate(index)? else {
            break;
        };
        info.phase3_tuples += 1;
        let before = evaluator.evaluated();
        let coord = evaluator.evaluate(entry.id, dim)?;
        info.evaluated += evaluator.evaluated() - before;
        let cand = PhiCand {
            id: entry.id,
            score: entry.score,
            coord,
        };
        right.add_candidate(cand);
        left.add_candidate(cand);
    }

    // ------------------------------------------------------------------
    // Assemble regions from the two directional outcomes.
    // ------------------------------------------------------------------
    let right_outcome = right.outcome();
    let left_outcome = left.outcome();
    let right_events = filter_events(&right_outcome.events, config.mode, phi);
    let left_events = filter_events(&left_outcome.events, config.mode, phi);

    let build_side =
        |events: &[SweepEvent], x_max: f64, direction: Direction| -> Vec<WeightRegion> {
            // Region r (1-based) lies between event r and event r+1 (or x_max).
            let mut regions = Vec::new();
            for r in 0..events.len().min(phi) {
                let lo_x = events[r].x;
                let hi_x = events.get(r + 1).map(|e| e.x).unwrap_or(x_max);
                let ids = order_to_ids(&events[r].order_after);
                let (delta_lo, delta_hi) = match direction {
                    Direction::Right => (lo_x, hi_x),
                    Direction::Left => (-hi_x, -lo_x),
                };
                regions.push(WeightRegion {
                    delta_lo,
                    delta_hi,
                    result: ids,
                });
            }
            regions
        };

    let center_hi = right_events.first().map(|e| e.x).unwrap_or(right.x_max);
    let center_lo = -left_events.first().map(|e| e.x).unwrap_or(left.x_max);
    let immutable = Interval::new_clamped(center_lo, center_hi);

    let upper_boundary = right_events.first().map(|e| RegionBoundary {
        delta: e.x,
        perturbation: event_perturbation(&e.kind),
    });
    let lower_boundary = left_events.first().map(|e| RegionBoundary {
        delta: -e.x,
        perturbation: event_perturbation(&e.kind),
    });

    let mut regions: Vec<WeightRegion> = Vec::new();
    let mut left_regions = build_side(&left_events, left.x_max, Direction::Left);
    left_regions.reverse(); // most negative first
    regions.extend(left_regions);
    let current_region = regions.len();
    regions.push(WeightRegion {
        delta_lo: immutable.lo,
        delta_hi: immutable.hi,
        result: result_ids,
    });
    regions.extend(build_side(&right_events, right.x_max, Direction::Right));

    Ok((
        DimRegions {
            dim,
            weight,
            immutable,
            lower_boundary,
            upper_boundary,
            regions,
            current_region,
        },
        info,
    ))
}
