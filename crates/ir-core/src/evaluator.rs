//! Candidate evaluation: the unit of cost the paper measures.
//!
//! "Evaluating" a candidate means checking it against the k-th result tuple
//! (or the result's lower envelope when `φ > 0`) via Lemma 1, which requires
//! its exact coordinate in the dimension under consideration. Per the
//! paper's cost model the exact coordinates of evaluated candidates are
//! fetched from the external tuple file, so every evaluation incurs one
//! random access — this is precisely why the number of evaluated candidates
//! is the primary performance metric, and why pruning/thresholding pay off.
//!
//! The evaluator deduplicates per dimension: a candidate pulled from several
//! sorted lists is fetched and counted once.

use ir_storage::TopKIndex;
use ir_types::{DimId, IrResult, TupleId};
use std::collections::HashMap;

/// Fetches candidate coordinates and counts evaluations.
pub struct CandidateEvaluator<'a> {
    index: &'a TopKIndex,
    /// Coordinates already fetched for the current dimension.
    cache: HashMap<TupleId, f64>,
    evaluated: u64,
}

impl<'a> CandidateEvaluator<'a> {
    /// Creates an evaluator over the given index.
    pub fn new(index: &'a TopKIndex) -> Self {
        CandidateEvaluator {
            index,
            cache: HashMap::new(),
            evaluated: 0,
        }
    }

    /// Starts a new dimension: clears the per-dimension deduplication cache
    /// and the counter.
    pub fn start_dimension(&mut self) {
        self.cache.clear();
        self.evaluated = 0;
    }

    /// Evaluates a candidate for the given dimension: fetches its tuple
    /// (random access through the buffer pool) and returns its coordinate.
    /// Counted once per `(dimension, tuple)` pair.
    pub fn evaluate(&mut self, id: TupleId, dim: DimId) -> IrResult<f64> {
        if let Some(&coord) = self.cache.get(&id) {
            return Ok(coord);
        }
        let tuple = self.index.fetch_tuple(id)?;
        let coord = tuple.get(dim);
        self.cache.insert(id, coord);
        self.evaluated += 1;
        Ok(coord)
    }

    /// Number of distinct candidates evaluated for the current dimension.
    pub fn evaluated(&self) -> u64 {
        self.evaluated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_types::Dataset;

    #[test]
    fn evaluation_is_deduplicated_per_dimension() {
        let dataset = Dataset::running_example();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let mut ev = CandidateEvaluator::new(&index);
        ev.start_dimension();
        let c1 = ev.evaluate(TupleId(2), DimId(0)).unwrap();
        let c2 = ev.evaluate(TupleId(2), DimId(0)).unwrap();
        assert_eq!(c1, 0.1);
        assert_eq!(c2, 0.1);
        assert_eq!(ev.evaluated(), 1);
        ev.evaluate(TupleId(3), DimId(0)).unwrap();
        assert_eq!(ev.evaluated(), 2);
        // A new dimension resets both cache and counter.
        ev.start_dimension();
        assert_eq!(ev.evaluated(), 0);
        let c = ev.evaluate(TupleId(2), DimId(1)).unwrap();
        assert_eq!(c, 0.8);
        assert_eq!(ev.evaluated(), 1);
    }

    #[test]
    fn evaluation_incurs_io() {
        let dataset = Dataset::running_example();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        index.cold_start();
        let mut ev = CandidateEvaluator::new(&index);
        ev.start_dimension();
        ev.evaluate(TupleId(1), DimId(0)).unwrap();
        assert!(index.io_snapshot().logical_reads > 0);
    }
}
