//! Configuration of a region computation.

use serde::{Deserialize, Serialize};

/// Which of the paper's algorithms performs Phase 2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// The baseline of Section 4: every candidate in `C(q)` is evaluated.
    Scan,
    /// Scan enhanced with candidate pruning only (Section 5.1 / Lemma 2–4).
    Prune,
    /// Scan enhanced with candidate thresholding only (Section 5.2).
    Thres,
    /// The full Candidate Pruning and Thresholding algorithm (default).
    #[default]
    Cpt,
}

impl Algorithm {
    /// All four algorithms, in the order the paper's figures list them.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Scan,
        Algorithm::Thres,
        Algorithm::Prune,
        Algorithm::Cpt,
    ];

    /// Whether Phase 2 applies the pruning of Section 5.1.
    pub fn prunes(self) -> bool {
        matches!(self, Algorithm::Prune | Algorithm::Cpt)
    }

    /// Whether Phase 2 applies the thresholding of Section 5.2.
    pub fn thresholds(self) -> bool {
        matches!(self, Algorithm::Thres | Algorithm::Cpt)
    }

    /// Display name matching the paper (what [`std::fmt::Display`] prints).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Scan => "Scan",
            Algorithm::Prune => "Prune",
            Algorithm::Thres => "Thres",
            Algorithm::Cpt => "CPT",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What counts as a perturbation of the result.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PerturbationMode {
    /// Any change — a reordering inside `R(q)` or a change of composition
    /// (the paper's main formulation).
    #[default]
    WithReorderings,
    /// Only changes in the *composition* of `R(q)` count; reorderings among
    /// result tuples are ignored (Section 7.4). Phase 1 is skipped and the
    /// regions are initialised to their widest possible form.
    CompositionOnly,
}

/// Full configuration of a region computation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegionConfig {
    /// Which algorithm performs Phase 2.
    pub algorithm: Algorithm,
    /// Number of tolerable perturbations per direction (`φ`); `0` computes a
    /// single immutable region per dimension.
    pub phi: usize,
    /// Whether reorderings inside the result count as perturbations.
    pub mode: PerturbationMode,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            algorithm: Algorithm::Cpt,
            phi: 0,
            mode: PerturbationMode::WithReorderings,
        }
    }
}

impl RegionConfig {
    /// Convenience constructor for a `φ = 0` computation with `algorithm`.
    pub fn flat(algorithm: Algorithm) -> Self {
        RegionConfig {
            algorithm,
            ..Default::default()
        }
    }

    /// Convenience constructor for a `φ > 0` computation with `algorithm`.
    pub fn with_phi(algorithm: Algorithm, phi: usize) -> Self {
        RegionConfig {
            algorithm,
            phi,
            ..Default::default()
        }
    }

    /// Same configuration but in composition-only mode.
    pub fn composition_only(mut self) -> Self {
        self.mode = PerturbationMode::CompositionOnly;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_capabilities() {
        assert!(!Algorithm::Scan.prunes());
        assert!(!Algorithm::Scan.thresholds());
        assert!(Algorithm::Prune.prunes());
        assert!(!Algorithm::Prune.thresholds());
        assert!(!Algorithm::Thres.prunes());
        assert!(Algorithm::Thres.thresholds());
        assert!(Algorithm::Cpt.prunes());
        assert!(Algorithm::Cpt.thresholds());
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["Scan", "Thres", "Prune", "CPT"]);
    }

    #[test]
    fn config_builders() {
        let c = RegionConfig::flat(Algorithm::Scan);
        assert_eq!(c.phi, 0);
        assert_eq!(c.mode, PerturbationMode::WithReorderings);
        let c = RegionConfig::with_phi(Algorithm::Cpt, 5).composition_only();
        assert_eq!(c.phi, 5);
        assert_eq!(c.mode, PerturbationMode::CompositionOnly);
        assert_eq!(RegionConfig::default().algorithm, Algorithm::Cpt);
    }
}
