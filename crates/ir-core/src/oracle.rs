//! An exhaustive reference implementation used to validate the algorithms.
//!
//! The oracle works directly on the in-memory dataset, with no index, no
//! candidate list and no pruning: for a query dimension it collects *every*
//! pairwise score crossing over the weight-deviation domain, evaluates the
//! exact ordered top-k between consecutive crossings, and reads the region
//! boundaries off the points where the result changes. It is `O(n² log n)`
//! per dimension and therefore only suitable for tests — which is exactly
//! its purpose: every production algorithm must reproduce its output.

use crate::config::PerturbationMode;
use crate::region::WeightRegion;
use ir_geometry::Interval;
use ir_types::{score_cmp, Dataset, DimId, QueryVector, RankedTuple, TupleId};

/// Exhaustive recomputation of top-k results under weight deviations.
pub struct ExhaustiveOracle<'a> {
    dataset: &'a Dataset,
    query: QueryVector,
}

/// The oracle's answer for one dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleRegions {
    /// The immutable region around deviation zero.
    pub immutable: Interval,
    /// All regions (up to `φ` on each side of the immutable region), sorted
    /// by deviation.
    pub regions: Vec<WeightRegion>,
    /// Index of the region containing deviation zero.
    pub current_region: usize,
}

impl<'a> ExhaustiveOracle<'a> {
    /// Creates an oracle for a dataset/query pair.
    pub fn new(dataset: &'a Dataset, query: QueryVector) -> Self {
        ExhaustiveOracle { dataset, query }
    }

    /// The ordered top-k result when dimension `dim`'s weight deviates by
    /// `delta` (all other weights fixed).
    pub fn topk_at(&self, dim: DimId, delta: f64) -> Vec<TupleId> {
        let mut ranked: Vec<RankedTuple> = self
            .dataset
            .iter()
            .map(|(id, tuple)| {
                let score = self.query.score(tuple) + delta * tuple.get(dim);
                RankedTuple::new(id, score)
            })
            .collect();
        ranked.sort_by(score_cmp);
        ranked
            .into_iter()
            .take(self.query.k())
            .map(|r| r.id)
            .collect()
    }

    /// Computes the exact region structure for dimension `dim`, reporting up
    /// to `phi` regions on each side of the immutable region.
    pub fn regions(&self, dim: DimId, phi: usize, mode: PerturbationMode) -> OracleRegions {
        let weight = self.query.weight(dim);
        let lo = -weight;
        let hi = 1.0 - weight;

        // Candidate boundaries: every pairwise score crossing inside the
        // domain (the result can only change where two scores swap order).
        let views: Vec<(f64, f64)> = self
            .dataset
            .iter()
            .map(|(_, t)| (self.query.score(t), t.get(dim)))
            .collect();
        let mut cuts: Vec<f64> = vec![lo, hi];
        for i in 0..views.len() {
            for j in (i + 1)..views.len() {
                let (si, ci) = views[i];
                let (sj, cj) = views[j];
                if ci == cj {
                    continue;
                }
                let x = (sj - si) / (ci - cj);
                if x > lo && x < hi {
                    cuts.push(x);
                }
            }
        }
        cuts.sort_by(|a, b| a.total_cmp(b));
        cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        // Evaluate the ordered result at the midpoint of every elementary
        // interval and merge equal neighbours into maximal regions.
        let mut raw: Vec<WeightRegion> = Vec::new();
        for w in cuts.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b - a <= 0.0 {
                continue;
            }
            let mid = 0.5 * (a + b);
            let result = self.topk_at(dim, mid);
            match raw.last_mut() {
                Some(prev) if Self::same(&prev.result, &result, mode) => prev.delta_hi = b,
                _ => raw.push(WeightRegion {
                    delta_lo: a,
                    delta_hi: b,
                    result,
                }),
            }
        }
        if raw.is_empty() {
            raw.push(WeightRegion {
                delta_lo: lo,
                delta_hi: hi,
                result: self.topk_at(dim, 0.0),
            });
        }

        let current = raw
            .iter()
            .position(|r| r.delta_lo <= 0.0 && 0.0 <= r.delta_hi)
            .unwrap_or(0);
        let first = current.saturating_sub(phi);
        let last = (current + phi).min(raw.len() - 1);
        let regions: Vec<WeightRegion> = raw[first..=last].to_vec();
        let current_region = current - first;
        let immutable = Interval::new(
            regions[current_region].delta_lo,
            regions[current_region].delta_hi,
        );
        OracleRegions {
            immutable,
            regions,
            current_region,
        }
    }

    fn same(a: &[TupleId], b: &[TupleId], mode: PerturbationMode) -> bool {
        match mode {
            PerturbationMode::WithReorderings => a == b,
            PerturbationMode::CompositionOnly => {
                let mut x = a.to_vec();
                let mut y = b.to_vec();
                x.sort_unstable();
                y.sort_unstable();
                x == y
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_types::Dataset;

    #[test]
    fn oracle_reproduces_running_example_regions() {
        let dataset = Dataset::running_example();
        let query = QueryVector::running_example();
        let oracle = ExhaustiveOracle::new(&dataset, query);

        let d0 = oracle.regions(DimId(0), 0, PerturbationMode::WithReorderings);
        assert!((d0.immutable.lo + 16.0 / 35.0).abs() < 1e-9);
        assert!((d0.immutable.hi - 0.1).abs() < 1e-9);

        let d1 = oracle.regions(DimId(1), 0, PerturbationMode::WithReorderings);
        assert!((d1.immutable.lo + 1.0 / 18.0).abs() < 1e-9);
        assert!((d1.immutable.hi - 0.5).abs() < 1e-9);
    }

    #[test]
    fn oracle_phi_regions_match_section_1() {
        let dataset = Dataset::running_example();
        let query = QueryVector::running_example();
        let oracle = ExhaustiveOracle::new(&dataset, query);
        let d0 = oracle.regions(DimId(0), 1, PerturbationMode::WithReorderings);
        assert_eq!(d0.regions.len(), 3);
        // Left neighbour: (-0.55, -16/35) with result [d2, d3].
        let left = &d0.regions[d0.current_region - 1];
        assert!((left.delta_lo + 0.55).abs() < 1e-9);
        assert_eq!(left.result, vec![TupleId(1), TupleId(2)]);
        // Right neighbour: (0.1, 0.2) with result [d1, d2].
        let right = &d0.regions[d0.current_region + 1];
        assert!((right.delta_hi - 0.2).abs() < 1e-9);
        assert_eq!(right.result, vec![TupleId(0), TupleId(1)]);
    }

    #[test]
    fn topk_at_zero_matches_query_result() {
        let dataset = Dataset::running_example();
        let query = QueryVector::running_example();
        let oracle = ExhaustiveOracle::new(&dataset, query);
        assert_eq!(oracle.topk_at(DimId(0), 0.0), vec![TupleId(1), TupleId(0)]);
        // Past the upper bound of IR_1 the order flips.
        assert_eq!(oracle.topk_at(DimId(0), 0.15), vec![TupleId(0), TupleId(1)]);
    }

    #[test]
    fn composition_only_regions_are_wider_or_equal() {
        let dataset = Dataset::running_example();
        let query = QueryVector::running_example();
        let oracle = ExhaustiveOracle::new(&dataset, query);
        for dim in [DimId(0), DimId(1)] {
            let strict = oracle.regions(dim, 0, PerturbationMode::WithReorderings);
            let loose = oracle.regions(dim, 0, PerturbationMode::CompositionOnly);
            assert!(loose.immutable.lo <= strict.immutable.lo + 1e-12);
            assert!(loose.immutable.hi >= strict.immutable.hi - 1e-12);
        }
    }
}
