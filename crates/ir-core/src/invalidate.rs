//! Update-driven region invalidation: deciding, from one logical update,
//! whether a cached [`RegionReport`] is still exact.
//!
//! The kinetic view of Section 4 makes this a line question. Within one
//! [`WeightRegion`](crate::region::WeightRegion) the ordered result is
//! fixed, so the k-th member's score — restricted to deviations of one
//! query dimension `j` — is a single [`ir_geometry::Line`] (intercept: its
//! score at the anchor weights; slope: its coordinate `t_j`). Every region
//! boundary in the report is an *envelope event*: some tuple's line meeting
//! the k-th line. An update to tuple `t` can only flip events that `t`'s
//! own line (old or new) participates in; if both lines stay **strictly
//! below** the k-th line across every reported region — a linear function
//! below at both endpoints is below throughout — then no reported event
//! involves `t`, no new event appears inside the reported span, and a full
//! recompute on the mutated dataset reproduces the report verbatim.
//!
//! The test is deliberately one-sided: [`UpdateImpact::Survived`] is a
//! proof, [`UpdateImpact::Punctured`] merely a refusal to prove (boundary
//! ties within [`PUNCTURE_EPS`] are treated as punctures). Callers
//! recompute on puncture, so a conservative answer costs work, never
//! correctness — the contract the `dynamic_oracle` suite checks by full
//! recomputation after every batch.

use crate::region::RegionReport;
use ir_geometry::Line;
use ir_types::{IrResult, QueryVector, SparseVector, TupleId};
use std::collections::HashMap;

/// Slack under which a tuple's line is considered to touch the k-th line —
/// touching at a region endpoint is exactly an envelope event, so it
/// punctures.
pub const PUNCTURE_EPS: f64 = 1e-9;

/// Whether a cached region report survived one update exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateImpact {
    /// The report is provably identical to a recompute on the mutated data.
    Survived,
    /// The update may flip a reported envelope event — recompute.
    Punctured,
}

impl UpdateImpact {
    /// `true` for [`UpdateImpact::Survived`].
    pub fn survived(self) -> bool {
        matches!(self, UpdateImpact::Survived)
    }
}

/// Decides whether the report anchored at `anchor` survives the update that
/// took `tuple` from `old_vector` to `new_vector` (an insert arrives with
/// an empty old vector, a delete with an empty new one).
///
/// `fetch` resolves the full vector of a result member (the k-th member of
/// each region, needed to build its line); it is only called when the
/// cheap structural checks cannot already decide, and each member is
/// fetched at most once. When a whole batch is screened, feed the updates
/// through in order and stop at the first puncture — once any update in
/// the batch touches a result member the report is punctured before any
/// fetch could observe that member's mutated vector, so the lines built
/// here are always the report-time ones.
pub fn update_impact(
    anchor: &QueryVector,
    report: &RegionReport,
    tuple: TupleId,
    old_vector: &SparseVector,
    new_vector: &SparseVector,
    mut fetch: impl FnMut(TupleId) -> IrResult<SparseVector>,
) -> IrResult<UpdateImpact> {
    // A result member's score feeds every region stack directly: any change
    // to it (even on a non-query dimension: its stored vector is part of
    // the answer a recompute would re-derive) is a puncture.
    for dim_regions in &report.dims {
        for region in &dim_regions.regions {
            if region.result.contains(&tuple) {
                return Ok(UpdateImpact::Punctured);
            }
        }
    }

    // Scores see only the query dimensions. A non-member whose coordinates
    // are unchanged on every query dimension has the exact same line in
    // every dimension's arrangement: nothing can flip.
    let unchanged_on_query_dims = anchor
        .dims()
        .all(|(dim, _)| old_vector.get(dim) == new_vector.get(dim));
    if unchanged_on_query_dims {
        return Ok(UpdateImpact::Survived);
    }

    let old_score = anchor.score(old_vector);
    let new_score = anchor.score(new_vector);
    let mut members: HashMap<TupleId, (f64, SparseVector)> = HashMap::new();
    for dim_regions in &report.dims {
        for region in &dim_regions.regions {
            let Some(&kth) = region.result.last() else {
                // A region with an empty result never certifies anything.
                return Ok(UpdateImpact::Punctured);
            };
            let (kth_score, kth_vector) = match members.get(&kth) {
                Some(entry) => entry,
                None => {
                    let vector = fetch(kth)?;
                    members
                        .entry(kth)
                        .or_insert((anchor.score(&vector), vector))
                }
            };
            let kth_line = Line::new(kth.0 as u64, *kth_score, kth_vector.get(dim_regions.dim));
            for (score, vector) in [(old_score, old_vector), (new_score, new_vector)] {
                let line = Line::new(tuple.0 as u64, score, vector.get(dim_regions.dim));
                for x in [region.delta_lo, region.delta_hi] {
                    if line.eval(x) >= kth_line.eval(x) - PUNCTURE_EPS {
                        return Ok(UpdateImpact::Punctured);
                    }
                }
            }
        }
    }
    Ok(UpdateImpact::Survived)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::RegionComputation;
    use crate::config::RegionConfig;
    use ir_storage::TopKIndex;
    use ir_types::Dataset;

    fn running_report() -> (QueryVector, RegionReport, TopKIndex) {
        let dataset = Dataset::running_example();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let query = QueryVector::running_example();
        let report = RegionComputation::new(&index, &query, RegionConfig::default())
            .unwrap()
            .compute()
            .unwrap();
        (query, report, index)
    }

    fn impact(
        query: &QueryVector,
        report: &RegionReport,
        index: &TopKIndex,
        tuple: TupleId,
        old: &SparseVector,
        new: &SparseVector,
    ) -> UpdateImpact {
        update_impact(query, report, tuple, old, new, |id| index.fetch_tuple(id)).unwrap()
    }

    #[test]
    fn touching_a_result_member_always_punctures() {
        let (query, report, index) = running_report();
        // d1 and d2 form the running example's top-2; any change to either,
        // even on a dimension the query does not weigh, punctures.
        let old = index.fetch_tuple(TupleId(0)).unwrap();
        let new = old.with_coordinate(ir_types::DimId(1), 0.99).unwrap();
        assert_eq!(
            impact(&query, &report, &index, TupleId(0), &old, &new),
            UpdateImpact::Punctured
        );
    }

    #[test]
    fn a_non_member_update_far_below_the_kth_line_survives() {
        let (query, report, index) = running_report();
        // d4 = <0.1, 0.6> scores 0.38 at the anchor, far below the k-th
        // (d1, 0.8); nudging its dim-1 coordinate down keeps both lines
        // clear of every reported boundary.
        let old = index.fetch_tuple(TupleId(3)).unwrap();
        let new = old.with_coordinate(ir_types::DimId(1), 0.55).unwrap();
        assert_eq!(
            impact(&query, &report, &index, TupleId(3), &old, &new),
            UpdateImpact::Survived
        );
    }

    #[test]
    fn a_non_member_rising_to_the_boundary_punctures() {
        let (query, report, index) = running_report();
        // Push d4's first coordinate up until it threatens the k-th score
        // somewhere in the reported span.
        let old = index.fetch_tuple(TupleId(3)).unwrap();
        let new = old.with_coordinate(ir_types::DimId(0), 0.95).unwrap();
        assert_eq!(
            impact(&query, &report, &index, TupleId(3), &old, &new),
            UpdateImpact::Punctured
        );
    }

    #[test]
    fn an_update_off_the_query_dimensions_survives_without_fetching() {
        let (query, report, _) = running_report();
        // Dimension 7 is not a query dimension of the running example, so
        // the structural check decides before `fetch` is ever needed.
        let old = SparseVector::from_pairs([(0, 0.1), (7, 0.2)]).unwrap();
        let new = old.with_coordinate(ir_types::DimId(7), 0.9).unwrap();
        let result = update_impact(&query, &report, TupleId(3), &old, &new, |_| {
            panic!("fetch must not be called for a non-query-dimension update")
        })
        .unwrap();
        assert_eq!(result, UpdateImpact::Survived);
    }

    #[test]
    fn an_insert_below_every_region_survives_and_above_punctures() {
        let (query, report, index) = running_report();
        let none = SparseVector::new();
        let low = SparseVector::from_pairs([(0, 0.05), (1, 0.05)]).unwrap();
        assert_eq!(
            impact(&query, &report, &index, TupleId(4), &none, &low),
            UpdateImpact::Survived
        );
        let high = SparseVector::from_pairs([(0, 0.99), (1, 0.99)]).unwrap();
        assert_eq!(
            impact(&query, &report, &index, TupleId(4), &none, &high),
            UpdateImpact::Punctured
        );
    }
}
