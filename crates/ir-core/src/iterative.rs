//! Iterative re-evaluation: the straightforward alternative to the one-off
//! `φ > 0` computation (the dashed lines of Figure 15).
//!
//! Instead of computing all `φ` regions per direction in a single pass, the
//! iterative approach repeatedly (i) computes a single immutable region,
//! (ii) conceptually moves the weight just past the region boundary, and
//! (iii) re-runs the whole machinery — including TA — on the shifted query.
//! It produces the same regions but repeats a large amount of work, which is
//! exactly the inefficiency Section 6 is designed to avoid.

use crate::compute::RegionComputation;
use crate::config::{Algorithm, RegionConfig};
use crate::metrics::ComputationStats;
use crate::region::WeightRegion;
use ir_storage::TopKIndex;
use ir_types::{DimId, IrResult, QueryVector};

/// How far past a region boundary the weight is nudged before re-evaluating.
const BOUNDARY_NUDGE: f64 = 1e-9;

/// The outcome of an iterative multi-region computation for one dimension.
#[derive(Clone, Debug)]
pub struct IterativeDimRegions {
    /// The dimension.
    pub dim: DimId,
    /// All regions found (up to `2φ + 1`), sorted by deviation relative to
    /// the *original* weight.
    pub regions: Vec<WeightRegion>,
    /// Index of the region containing deviation zero.
    pub current_region: usize,
}

/// Result of [`compute_iterative`]: per-dimension regions plus the total cost
/// of all the repeated single-region computations.
#[derive(Clone, Debug)]
pub struct IterativeReport {
    /// Per-dimension regions.
    pub dims: Vec<IterativeDimRegions>,
    /// Aggregated cost over every repetition (including the repeated TA
    /// runs, whose I/O is folded into `io`).
    pub stats: ComputationStats,
}

/// Computes up to `phi` regions on each side of the current weight for every
/// query dimension by iterative re-evaluation with single-region requests.
pub fn compute_iterative(
    index: &TopKIndex,
    query: &QueryVector,
    algorithm: Algorithm,
    phi: usize,
) -> IrResult<IterativeReport> {
    let flat = RegionConfig::flat(algorithm);
    let mut total = ComputationStats::default();
    let mut dims_out = Vec::new();

    // The first pass over the original query serves every dimension.
    let mut base = RegionComputation::new(index, query, flat)?;
    let base_report = base.compute()?;
    accumulate(&mut total, &base_report.stats, true);

    for dim_regions in &base_report.dims {
        let dim = dim_regions.dim;
        let mut regions: Vec<WeightRegion> = vec![WeightRegion {
            delta_lo: dim_regions.immutable.lo,
            delta_hi: dim_regions.immutable.hi,
            result: dim_regions.current_result().to_vec(),
        }];

        // Walk to the right: re-evaluate with the weight moved just past the
        // previous upper bound, φ times (or until the domain edge).
        let mut shift = dim_regions.immutable.hi;
        for _ in 0..phi {
            if shift >= 1.0 - dim_regions.weight - BOUNDARY_NUDGE {
                break;
            }
            let shifted = query.with_weight_shift(dim, shift + BOUNDARY_NUDGE)?;
            let mut rc = RegionComputation::new(index, &shifted, flat)?;
            let report = rc.compute()?;
            accumulate(&mut total, &report.stats, true);
            let Some(d) = report.for_dim(dim) else { break };
            let lo = shift;
            let hi = shift + BOUNDARY_NUDGE + d.immutable.hi;
            regions.push(WeightRegion {
                delta_lo: lo,
                delta_hi: hi,
                result: d.current_result().to_vec(),
            });
            shift = hi;
        }

        // Walk to the left symmetrically.
        let mut shift = dim_regions.immutable.lo;
        let mut left_regions = Vec::new();
        for _ in 0..phi {
            if shift <= -dim_regions.weight + BOUNDARY_NUDGE {
                break;
            }
            let shifted = query.with_weight_shift(dim, shift - BOUNDARY_NUDGE)?;
            let mut rc = RegionComputation::new(index, &shifted, flat)?;
            let report = rc.compute()?;
            accumulate(&mut total, &report.stats, true);
            let Some(d) = report.for_dim(dim) else { break };
            let hi = shift;
            let lo = shift - BOUNDARY_NUDGE + d.immutable.lo;
            left_regions.push(WeightRegion {
                delta_lo: lo,
                delta_hi: hi,
                result: d.current_result().to_vec(),
            });
            shift = lo;
        }

        left_regions.reverse();
        let current_region = left_regions.len();
        let mut all = left_regions;
        all.extend(regions);
        dims_out.push(IterativeDimRegions {
            dim,
            regions: all,
            current_region,
        });
    }

    Ok(IterativeReport {
        dims: dims_out,
        stats: total,
    })
}

fn accumulate(total: &mut ComputationStats, stats: &ComputationStats, include_topk: bool) {
    total.merge(stats);
    if include_topk {
        // The repeated TA runs are genuine extra work of the iterative
        // approach, so their I/O counts toward the total.
        total.io = total.io.plus(&stats.topk_io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_types::{Dataset, TupleId};

    #[test]
    fn iterative_regions_match_one_off_on_running_example() {
        let dataset = Dataset::running_example();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let query = QueryVector::running_example();

        let iterative = compute_iterative(&index, &query, Algorithm::Cpt, 1).unwrap();
        let dim0 = &iterative.dims[0];
        assert_eq!(dim0.dim, DimId(0));
        // Three regions: left, current, right — matching Section 1.
        assert_eq!(dim0.regions.len(), 3);
        let current = &dim0.regions[dim0.current_region];
        assert!((current.delta_lo + 16.0 / 35.0).abs() < 1e-6);
        assert!((current.delta_hi - 0.1).abs() < 1e-6);
        let right = &dim0.regions[dim0.current_region + 1];
        assert_eq!(right.result, vec![TupleId(0), TupleId(1)]);
        assert!((right.delta_hi - 0.2).abs() < 1e-6);
        let left = &dim0.regions[dim0.current_region - 1];
        assert_eq!(left.result, vec![TupleId(1), TupleId(2)]);
        assert!((left.delta_lo + 0.55).abs() < 1e-6);
    }

    #[test]
    fn iterative_cost_grows_with_phi() {
        let dataset = Dataset::running_example();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let query = QueryVector::running_example();
        index.cold_start();
        let phi1 = compute_iterative(&index, &query, Algorithm::Prune, 1).unwrap();
        index.cold_start();
        let phi3 = compute_iterative(&index, &query, Algorithm::Prune, 3).unwrap();
        assert!(
            phi3.stats.evaluated_candidates >= phi1.stats.evaluated_candidates,
            "more regions cannot require fewer evaluations"
        );
    }
}
