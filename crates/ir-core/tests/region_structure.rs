//! Structural invariants of the region reports, checked on randomized
//! inputs: regions are contiguous and ordered, the current region contains
//! deviation zero, every reported result is a valid top-k list of the right
//! length, and the composition-only regions always contain the strict-mode
//! regions. Also covers φ > 0 in composition-only mode against the oracle,
//! which no other test exercises.

use ir_core::config::PerturbationMode;
use ir_core::{Algorithm, ExhaustiveOracle, RegionComputation, RegionConfig};
use ir_storage::TopKIndex;
use ir_types::{Dataset, DatasetBuilder, QueryVector};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    let dims = 5u32;
    let tuple = proptest::collection::btree_map(0..dims, 0.01f64..1.0, 1..=dims as usize);
    proptest::collection::vec(tuple, 8..50).prop_map(move |tuples| {
        let mut builder = DatasetBuilder::new(dims);
        for t in tuples {
            builder.push_pairs(t).unwrap();
        }
        builder.build()
    })
}

fn query_strategy() -> impl Strategy<Value = QueryVector> {
    (
        proptest::collection::btree_map(0u32..5, 0.25f64..=1.0, 2..=3),
        2usize..5,
        0usize..3,
    )
        .prop_map(|(weights, k, phi)| (QueryVector::new(weights, k).unwrap(), phi))
        .prop_map(|(q, _)| q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn region_sequences_are_well_formed(
        dataset in dataset_strategy(),
        query in query_strategy(),
        phi in 0usize..3,
    ) {
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let mut computation =
            RegionComputation::new(&index, &query, RegionConfig::with_phi(Algorithm::Cpt, phi))
                .unwrap();
        let report = computation.compute().unwrap();
        let k = computation.result().len();

        prop_assert_eq!(report.dims.len(), query.qlen());
        for dim_regions in &report.dims {
            // The immutable region contains zero and lies inside the weight
            // domain.
            prop_assert!(dim_regions.immutable.lo <= 1e-12);
            prop_assert!(dim_regions.immutable.hi >= -1e-12);
            prop_assert!(dim_regions.immutable.lo >= -dim_regions.weight - 1e-9);
            prop_assert!(dim_regions.immutable.hi <= 1.0 - dim_regions.weight + 1e-9);

            // Regions are contiguous, ordered, and at most 2φ + 1 of them.
            prop_assert!(dim_regions.regions.len() <= 2 * phi + 1);
            prop_assert!(dim_regions.current_region < dim_regions.regions.len());
            for pair in dim_regions.regions.windows(2) {
                prop_assert!(pair[0].delta_hi <= pair[1].delta_lo + 1e-9);
                prop_assert!((pair[0].delta_hi - pair[1].delta_lo).abs() < 1e-9,
                    "regions must be contiguous");
            }
            let current = &dim_regions.regions[dim_regions.current_region];
            prop_assert!(current.contains(0.0));
            // Every reported result has exactly k members (the dataset is
            // large enough) and no duplicates.
            for region in &dim_regions.regions {
                prop_assert_eq!(region.result.len(), k);
                let mut ids = region.result.clone();
                ids.sort_unstable();
                ids.dedup();
                prop_assert_eq!(ids.len(), k);
            }
        }
    }

    #[test]
    fn composition_only_phi_regions_match_oracle(
        dataset in dataset_strategy(),
        query in query_strategy(),
        phi in 1usize..3,
    ) {
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let oracle = ExhaustiveOracle::new(&dataset, query.clone());
        let mut computation = RegionComputation::new(
            &index,
            &query,
            RegionConfig::with_phi(Algorithm::Cpt, phi).composition_only(),
        )
        .unwrap();
        let report = computation.compute().unwrap();
        for dim_regions in &report.dims {
            let expected = oracle.regions(dim_regions.dim, phi, PerturbationMode::CompositionOnly);
            prop_assert!(
                dim_regions.immutable.approx_eq(&expected.immutable, 1e-9),
                "dim {:?}: {:?} vs oracle {:?}",
                dim_regions.dim,
                dim_regions.immutable,
                expected.immutable
            );
            // Region *boundaries* past the immutable region must also agree
            // (compare the set of boundaries on each side, as far as both
            // report them).
            let ours: Vec<f64> = dim_regions
                .regions
                .iter()
                .map(|r| r.delta_lo)
                .chain(dim_regions.regions.iter().map(|r| r.delta_hi))
                .collect();
            let theirs: Vec<f64> = expected
                .regions
                .iter()
                .map(|r| r.delta_lo)
                .chain(expected.regions.iter().map(|r| r.delta_hi))
                .collect();
            for boundary in &theirs {
                prop_assert!(
                    ours.iter().any(|b| (b - boundary).abs() < 1e-9),
                    "oracle boundary {boundary} missing from {ours:?}"
                );
            }
        }
    }

    #[test]
    fn strict_regions_are_contained_in_composition_only_regions(
        dataset in dataset_strategy(),
        query in query_strategy(),
    ) {
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let mut strict =
            RegionComputation::new(&index, &query, RegionConfig::flat(Algorithm::Cpt)).unwrap();
        let strict_report = strict.compute().unwrap();
        let mut loose = RegionComputation::new(
            &index,
            &query,
            RegionConfig::flat(Algorithm::Cpt).composition_only(),
        )
        .unwrap();
        let loose_report = loose.compute().unwrap();
        for (s, l) in strict_report.dims.iter().zip(&loose_report.dims) {
            prop_assert!(l.immutable.lo <= s.immutable.lo + 1e-9);
            prop_assert!(l.immutable.hi >= s.immutable.hi - 1e-9);
        }
    }
}
