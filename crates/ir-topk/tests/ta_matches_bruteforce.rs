//! Property tests: TA (both probe strategies) must return exactly the
//! brute-force top-k on arbitrary sparse datasets, and the resumable scan
//! must eventually enumerate every tuple with positive query score.

use ir_storage::TopKIndex;
use ir_topk::{ProbeStrategy, TaConfig, TaRun};
use ir_types::{score_cmp, Dataset, DatasetBuilder, QueryVector, RankedTuple, TupleId};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    let dims = 6u32;
    let tuple = proptest::collection::btree_map(0..dims, 0.01f64..1.0, 1..=dims as usize);
    proptest::collection::vec(tuple, 3..60).prop_map(move |tuples| {
        let mut builder = DatasetBuilder::new(dims);
        for t in tuples {
            builder.push_pairs(t).unwrap();
        }
        builder.build()
    })
}

fn query_strategy() -> impl Strategy<Value = QueryVector> {
    (
        proptest::collection::btree_map(0u32..6, 0.1f64..=1.0, 1..=4),
        1usize..8,
    )
        .prop_map(|(weights, k)| QueryVector::new(weights, k).unwrap())
}

fn brute_force(dataset: &Dataset, query: &QueryVector) -> Vec<TupleId> {
    let mut ranked: Vec<RankedTuple> = dataset
        .iter()
        .map(|(id, t)| RankedTuple::new(id, query.score(t)))
        .filter(|r| r.score > 0.0)
        .collect();
    ranked.sort_by(score_cmp);
    ranked.into_iter().take(query.k()).map(|r| r.id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ta_returns_the_exact_topk(dataset in dataset_strategy(), query in query_strategy()) {
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let expected = brute_force(&dataset, &query);
        for strategy in [ProbeStrategy::RoundRobin, ProbeStrategy::WeightedKey] {
            let run = TaRun::execute(&index, &query, &TaConfig { probe_strategy: strategy }).unwrap();
            prop_assert_eq!(run.result().ids(), expected.clone(), "strategy {:?}", strategy);
            // Result and candidates are disjoint and every encountered tuple
            // is unique.
            let mut seen: BTreeMap<TupleId, u32> = BTreeMap::new();
            for id in run.result().ids() {
                *seen.entry(id).or_default() += 1;
            }
            for c in run.candidates().iter() {
                *seen.entry(c.id).or_default() += 1;
            }
            prop_assert!(seen.values().all(|&count| count == 1));
        }
    }

    #[test]
    fn resumption_enumerates_every_positive_score_tuple(
        dataset in dataset_strategy(),
        query in query_strategy(),
    ) {
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let mut run = TaRun::execute_default(&index, &query).unwrap();
        while run.resume_next_candidate(&index).unwrap().is_some() {}
        prop_assert!(run.exhausted());
        let enumerated = run.result().len() + run.candidates().len();
        let positive = dataset
            .iter()
            .filter(|(_, t)| query.score(t) > 0.0)
            .count();
        prop_assert_eq!(enumerated, positive);
        // After exhaustion the TA threshold is zero.
        prop_assert!(run.threshold().abs() < 1e-12);
    }

    #[test]
    fn candidate_coords_match_the_stored_tuples(
        dataset in dataset_strategy(),
        query in query_strategy(),
    ) {
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let run = TaRun::execute_default(&index, &query).unwrap();
        for entry in run.candidates().iter().chain(run.result_entries()) {
            let tuple = dataset.tuple(entry.id).unwrap();
            for (i, (dim, _)) in query.dims().enumerate() {
                prop_assert!((entry.coord(i) - tuple.get(dim)).abs() < 1e-12);
            }
            prop_assert!((entry.score - query.score(tuple)).abs() < 1e-12);
        }
    }
}
