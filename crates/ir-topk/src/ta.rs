//! The random-access Threshold Algorithm with resumable state.

use crate::candidates::{CandidateEntry, CandidateList};
use ir_storage::{InvertedListCursor, TopKIndex};
use ir_types::{score_cmp, DimId, IrResult, QueryVector, RankedTuple, TopKResult, TupleId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Which inverted list receives the next sorted access.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeStrategy {
    /// Classic round-robin over the query dimensions.
    RoundRobin,
    /// The enhancement of the paper's system model (Section 7.1, after
    /// Persin): probe the list with the largest `q_j · d_{αj}` where `d_α`
    /// is the last tuple pulled from that list.
    #[default]
    WeightedKey,
}

/// TA configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaConfig {
    /// Probing order of the inverted lists.
    pub probe_strategy: ProbeStrategy,
}

/// Access counters of a TA run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaStats {
    /// Entries popped from inverted lists.
    pub sorted_accesses: u64,
    /// Full tuples fetched from the external tuple file.
    pub random_accesses: u64,
}

/// A (possibly still resumable) TA execution: the top-k result, the candidate
/// list, and the frozen scan state needed to continue deeper into the lists.
///
/// A `TaRun` is `Clone`: the clone shares the index's buffer pool but owns
/// independent cursors, candidate list and result, so several worker threads
/// can each resume Phase 3 from the same frozen snapshot without
/// coordination — the basis of the deterministic parallel driver in
/// `ir-core`.
#[derive(Clone)]
pub struct TaRun {
    query: QueryVector,
    dims: Vec<DimId>,
    weights: Vec<f64>,
    cursors: Vec<InvertedListCursor>,
    /// Sorting key of the next unread entry per list (`t_j`), zero when the
    /// list is exhausted.
    next_values: Vec<f64>,
    /// Value of the last entry pulled per list (drives the weighted-key
    /// probing heuristic).
    last_pulled: Vec<f64>,
    rr_next: usize,
    strategy: ProbeStrategy,
    seen: HashSet<TupleId>,
    result: Vec<CandidateEntry>,
    candidates: CandidateList,
    k: usize,
    stats: TaStats,
}

impl TaRun {
    /// Runs TA to completion for `query` over `index` and returns the
    /// resumable state.
    pub fn execute(index: &TopKIndex, query: &QueryVector, config: &TaConfig) -> IrResult<Self> {
        query.validate_against(index.dimensionality())?;
        let dims: Vec<DimId> = query.dims().map(|(d, _)| d).collect();
        let weights: Vec<f64> = query.dims().map(|(_, w)| w).collect();
        let mut cursors: Vec<InvertedListCursor> = Vec::with_capacity(dims.len());
        let mut next_values = Vec::with_capacity(dims.len());
        let mut last_pulled = Vec::with_capacity(dims.len());
        for &dim in &dims {
            let cursor = index.list_cursor(dim)?;
            let head = cursor.threshold_value()?;
            next_values.push(head);
            last_pulled.push(head);
            cursors.push(cursor);
        }
        let mut run = TaRun {
            query: query.clone(),
            dims,
            weights,
            cursors,
            next_values,
            last_pulled,
            rr_next: 0,
            strategy: config.probe_strategy,
            seen: HashSet::new(),
            result: Vec::with_capacity(query.k()),
            candidates: CandidateList::new(),
            k: query.k(),
            stats: TaStats::default(),
        };
        run.run_topk(index)?;
        Ok(run)
    }

    /// Convenience: execute with the default configuration.
    pub fn execute_default(index: &TopKIndex, query: &QueryVector) -> IrResult<Self> {
        Self::execute(index, query, &TaConfig::default())
    }

    fn run_topk(&mut self, index: &TopKIndex) -> IrResult<()> {
        loop {
            if self.result.len() == self.k && self.kth_score() >= self.threshold() {
                return Ok(());
            }
            if self.all_exhausted() {
                return Ok(());
            }
            self.sorted_access_step(index)?;
        }
    }

    /// Performs one sorted access (possibly skipping nothing — a single list
    /// pop), fetching and scoring the tuple if it is new. Returns the newly
    /// scored tuple, if any.
    fn sorted_access_step(&mut self, index: &TopKIndex) -> IrResult<Option<CandidateEntry>> {
        let Some(list_idx) = self.pick_list() else {
            return Ok(None);
        };
        self.rr_next = (list_idx + 1) % self.cursors.len();
        let cursor = &mut self.cursors[list_idx];
        let Some((id, value)) = cursor.next_entry()? else {
            self.next_values[list_idx] = 0.0;
            return Ok(None);
        };
        self.stats.sorted_accesses += 1;
        self.last_pulled[list_idx] = value;
        self.next_values[list_idx] = cursor.threshold_value()?;

        if self.seen.contains(&id) {
            return Ok(None);
        }
        self.seen.insert(id);

        // Random access: fetch the full tuple and compute score + coordinates
        // in the query dimensions.
        let tuple = index.fetch_tuple(id)?;
        self.stats.random_accesses += 1;
        let coords: Vec<f64> = self.dims.iter().map(|&d| tuple.get(d)).collect();
        let score: f64 = coords.iter().zip(&self.weights).map(|(c, w)| c * w).sum();
        let entry = CandidateEntry { id, score, coords };
        self.place(entry.clone());
        Ok(Some(entry))
    }

    /// Places a scored tuple into the result (possibly displacing the current
    /// k-th member) or into the candidate list.
    fn place(&mut self, entry: CandidateEntry) {
        let ranked = entry.ranked();
        if self.result.len() < self.k {
            let pos = self
                .result
                .partition_point(|r| score_cmp(&r.ranked(), &ranked) == std::cmp::Ordering::Less);
            self.result.insert(pos, entry);
            return;
        }
        let kth = self.result.last().expect("result full").ranked();
        if score_cmp(&ranked, &kth) == std::cmp::Ordering::Less {
            // New tuple outranks the current k-th: displace it into C(q),
            // keeping its query-dimension coordinates.
            let pos = self
                .result
                .partition_point(|r| score_cmp(&r.ranked(), &ranked) == std::cmp::Ordering::Less);
            self.result.insert(pos, entry);
            let displaced = self.result.pop().expect("overfull result");
            self.candidates.insert(displaced);
        } else {
            self.candidates.insert(entry);
        }
    }

    fn pick_list(&self) -> Option<usize> {
        let live = |i: &usize| !self.cursors[*i].exhausted();
        match self.strategy {
            ProbeStrategy::RoundRobin => {
                let n = self.cursors.len();
                (0..n).map(|o| (self.rr_next + o) % n).find(live)
            }
            ProbeStrategy::WeightedKey => (0..self.cursors.len()).filter(live).max_by(|&a, &b| {
                let ka = self.weights[a] * self.last_pulled[a];
                let kb = self.weights[b] * self.last_pulled[b];
                ka.total_cmp(&kb).then_with(|| b.cmp(&a))
            }),
        }
    }

    fn all_exhausted(&self) -> bool {
        self.cursors.iter().all(|c| c.exhausted())
    }

    /// The query this run answers.
    pub fn query(&self) -> &QueryVector {
        &self.query
    }

    /// The query dimensions in weight-vector order.
    pub fn dims(&self) -> &[DimId] {
        &self.dims
    }

    /// The query weights aligned with [`TaRun::dims`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The current top-k result (may hold fewer than `k` entries when fewer
    /// tuples have positive score on the query dimensions).
    pub fn result(&self) -> TopKResult {
        TopKResult::from_entries(self.result.iter().map(CandidateEntry::ranked).collect())
    }

    /// The result members together with their query-dimension coordinates
    /// (best first). Phase 1 of the region algorithms works directly on this.
    pub fn result_entries(&self) -> &[CandidateEntry] {
        &self.result
    }

    /// Score of the current k-th result tuple (`-inf` while the result is
    /// not yet full so that the TA termination test keeps failing).
    pub fn kth_score(&self) -> f64 {
        if self.result.len() < self.k {
            f64::NEG_INFINITY
        } else {
            self.result.last().map_or(f64::NEG_INFINITY, |r| r.score)
        }
    }

    /// The k-th result tuple, if the result is non-empty.
    pub fn kth(&self) -> Option<RankedTuple> {
        self.result.last().map(CandidateEntry::ranked)
    }

    /// The k-th result tuple together with its query-dimension coordinates.
    pub fn kth_entry(&self) -> Option<&CandidateEntry> {
        self.result.last()
    }

    /// The sorting keys `t_j` of the next unread entry per query dimension
    /// (zero for exhausted lists), aligned with [`TaRun::dims`].
    pub fn threshold_values(&self) -> &[f64] {
        &self.next_values
    }

    /// The TA threshold `Σ_j q_j · t_j`.
    pub fn threshold(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.next_values)
            .map(|(w, t)| w * t)
            .sum()
    }

    /// The candidate list `C(q)` accumulated so far.
    pub fn candidates(&self) -> &CandidateList {
        &self.candidates
    }

    /// Access counters.
    pub fn stats(&self) -> TaStats {
        self.stats
    }

    /// True when every query-dimension list has been scanned to the end.
    pub fn exhausted(&self) -> bool {
        self.all_exhausted()
    }

    /// Resumes the scan (Phase 3 of Scan/CPT): performs sorted accesses until
    /// the next previously unseen tuple is found, adds it to the candidate
    /// list and returns it. Returns `None` once every list is exhausted.
    pub fn resume_next_candidate(&mut self, index: &TopKIndex) -> IrResult<Option<CandidateEntry>> {
        while !self.all_exhausted() {
            if let Some(entry) = self.sorted_access_step(index)? {
                // A tuple discovered after TA terminated cannot outrank the
                // current k-th result member at the *current* weights, so it
                // lands in the candidate list (the `place` call inside
                // `sorted_access_step` already put it there unless the result
                // was not yet full).
                return Ok(Some(entry));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_types::Dataset;

    fn running_example() -> (TopKIndex, QueryVector) {
        let dataset = Dataset::running_example();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        (index, QueryVector::running_example())
    }

    #[test]
    fn round_robin_ta_reproduces_figure_2_trace() {
        // Figure 2 of the paper traces round-robin TA: it processes d1 on L1,
        // d3 on L2, d2 on L1 and then stops with R(q) = [d2, d1] and
        // C(q) = [d3].
        let (index, query) = running_example();
        let config = TaConfig {
            probe_strategy: ProbeStrategy::RoundRobin,
        };
        let run = TaRun::execute(&index, &query, &config).unwrap();
        let result = run.result();
        assert_eq!(result.ids(), vec![TupleId(1), TupleId(0)]);
        assert!((result.at(0).unwrap().score - 0.81).abs() < 1e-12);
        assert!((result.at(1).unwrap().score - 0.80).abs() < 1e-12);
        assert!(run.candidates().contains(TupleId(2)));
        assert_eq!(run.candidates().len(), 1);
        assert!(!result.contains(TupleId(3)));
        assert!(run.kth_score() >= run.threshold());
        assert_eq!(run.stats().sorted_accesses, 3);
        assert_eq!(run.stats().random_accesses, 3);
    }

    #[test]
    fn weighted_key_strategy_finds_same_result_with_fewer_accesses() {
        // The weighted-key heuristic of Section 7.1 may probe L1 twice in a
        // row and terminate without ever touching d3; the result is the same.
        let (index, query) = running_example();
        let run = TaRun::execute_default(&index, &query).unwrap();
        assert_eq!(run.result().ids(), vec![TupleId(1), TupleId(0)]);
        assert!(run.stats().sorted_accesses <= 3);
        assert!(run.kth_score() >= run.threshold());
    }

    #[test]
    fn ta_matches_brute_force_on_dense_grid_dataset() {
        // A small deterministic dataset exercised with several k values.
        let mut builder = ir_types::DatasetBuilder::new(4);
        let vals = [0.13, 0.37, 0.59, 0.71, 0.83, 0.29, 0.47, 0.91];
        for i in 0..24u32 {
            let pairs: Vec<(u32, f64)> = (0..4u32)
                .map(|d| (d, vals[((i * 7 + d * 3) % 8) as usize]))
                .collect();
            builder.push_pairs(pairs).unwrap();
        }
        let dataset = builder.build();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        for k in [1usize, 3, 5, 10] {
            let query = QueryVector::new([(0, 0.9), (2, 0.4), (3, 0.1)], k).unwrap();
            let run = TaRun::execute_default(&index, &query).unwrap();
            // Brute force.
            let mut all: Vec<RankedTuple> = dataset
                .iter()
                .map(|(id, t)| RankedTuple::new(id, query.score(t)))
                .collect();
            all.sort_by(score_cmp);
            let expected: Vec<TupleId> = all.iter().take(k).map(|r| r.id).collect();
            assert_eq!(run.result().ids(), expected, "k = {k}");
        }
    }

    #[test]
    fn candidates_are_sorted_and_disjoint_from_result() {
        let (index, query) = running_example();
        let run = TaRun::execute_default(&index, &query).unwrap();
        let result_ids: Vec<TupleId> = run.result().ids();
        let mut last = f64::INFINITY;
        for c in run.candidates().iter() {
            assert!(c.score <= last);
            last = c.score;
            assert!(!result_ids.contains(&c.id));
        }
    }

    #[test]
    fn resume_discovers_remaining_tuples() {
        let (index, query) = running_example();
        let mut run = TaRun::execute_default(&index, &query).unwrap();
        let before = run.candidates().len();
        let mut found = Vec::new();
        while let Some(entry) = run.resume_next_candidate(&index).unwrap() {
            found.push(entry.id);
        }
        assert!(run.exhausted());
        // All four tuples are now either in the result or in C(q).
        let total = run.result().len() + run.candidates().len();
        assert_eq!(total, 4);
        assert!(run.candidates().len() >= before);
        // d4 (id 3) must have been discovered during resumption if it was not
        // seen before.
        assert!(run.candidates().contains(TupleId(3)));
        assert!(!found.is_empty());
    }

    #[test]
    fn stats_count_accesses() {
        let (index, query) = running_example();
        let run = TaRun::execute_default(&index, &query).unwrap();
        let stats = run.stats();
        assert!(stats.sorted_accesses >= 2);
        assert!(stats.random_accesses >= 2);
        assert!(stats.random_accesses <= 4);
        assert!(stats.random_accesses <= stats.sorted_accesses);
    }

    #[test]
    fn k_larger_than_positive_support_returns_fewer_entries() {
        let mut builder = ir_types::DatasetBuilder::new(2);
        builder.push_pairs([(0, 0.5)]).unwrap();
        builder.push_pairs([(1, 0.9)]).unwrap();
        let dataset = builder.build();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let query = QueryVector::new([(0, 1.0)], 5).unwrap();
        let run = TaRun::execute_default(&index, &query).unwrap();
        assert_eq!(run.result().len(), 1, "only one tuple has dim-0 support");
    }

    #[test]
    fn displaced_result_members_move_to_candidates() {
        // Craft an insertion order where an early result member is displaced:
        // with k = 1 the first fetched tuple is provisional.
        let mut builder = ir_types::DatasetBuilder::new(2);
        builder.push_pairs([(0, 0.9), (1, 0.05)]).unwrap(); // score 0.41
        builder.push_pairs([(0, 0.5), (1, 0.9)]).unwrap(); // score 0.61
        builder.push_pairs([(0, 0.2), (1, 0.95)]).unwrap(); // score 0.485
        let dataset = builder.build();
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let query = QueryVector::new([(0, 0.4), (1, 0.3)], 1).unwrap();
        let run = TaRun::execute_default(&index, &query).unwrap();
        assert_eq!(run.result().ids(), vec![TupleId(1)]);
        // The other encountered tuples are candidates.
        assert!(!run.candidates().is_empty());
        for c in run.candidates().iter() {
            assert_ne!(c.id, TupleId(1));
        }
    }
}
