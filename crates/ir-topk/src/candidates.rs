//! The candidate list `C(q)`.
//!
//! TA encounters more tuples than the `k` it reports; all encountered
//! non-result tuples are kept, in decreasing score order, because they are
//! exactly the tuples that can perturb the result under small weight changes
//! (Phase 2 of Scan/CPT works on this list). Each entry carries the tuple's
//! coordinates in the query dimensions, captured when TA had the full vector
//! in hand, so the sorted lists used by thresholding can be formed without
//! additional I/O.

use ir_types::{score_cmp, RankedTuple, TupleId};
use serde::{Deserialize, Serialize};

/// One candidate tuple: id, score, and its coordinates restricted to the
/// query dimensions (aligned with the query's dimension order).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CandidateEntry {
    /// Tuple id.
    pub id: TupleId,
    /// Score under the current query weights.
    pub score: f64,
    /// Coordinates in the query dimensions, in the same order as
    /// `QueryVector::dims()`.
    pub coords: Vec<f64>,
}

impl CandidateEntry {
    /// The candidate as a `RankedTuple`.
    pub fn ranked(&self) -> RankedTuple {
        RankedTuple::new(self.id, self.score)
    }

    /// Coordinate in the `dim_index`-th query dimension.
    #[inline]
    pub fn coord(&self, dim_index: usize) -> f64 {
        self.coords[dim_index]
    }
}

/// The candidate list `C(q)`, maintained in decreasing score order (ties by
/// increasing tuple id).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CandidateList {
    entries: Vec<CandidateEntry>,
}

impl CandidateList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a candidate, keeping the list sorted by decreasing score.
    pub fn insert(&mut self, entry: CandidateEntry) {
        let ranked = entry.ranked();
        let pos = self
            .entries
            .partition_point(|e| score_cmp(&e.ranked(), &ranked) == std::cmp::Ordering::Less);
        self.entries.insert(pos, entry);
    }

    /// The candidates in decreasing score order.
    pub fn entries(&self) -> &[CandidateEntry] {
        &self.entries
    }

    /// The entry for a given tuple id, if present.
    pub fn get(&self, id: TupleId) -> Option<&CandidateEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// True if the tuple is in the candidate list.
    pub fn contains(&self, id: TupleId) -> bool {
        self.get(id).is_some()
    }

    /// The highest-scoring candidate, if any.
    pub fn top(&self) -> Option<&CandidateEntry> {
        self.entries.first()
    }

    /// Iterates the candidates in decreasing score order.
    pub fn iter(&self) -> impl Iterator<Item = &CandidateEntry> {
        self.entries.iter()
    }

    /// Approximate memory footprint in bytes when only `(score, pointer)` is
    /// retained per candidate — the accounting the paper uses for Scan and
    /// the pruning-based methods (Section 7.2).
    pub fn footprint_score_pointer(&self) -> usize {
        self.entries.len() * (std::mem::size_of::<f64>() + std::mem::size_of::<u64>())
    }

    /// Approximate memory footprint in bytes when the query-dimension
    /// coordinates are retained as well (what the sorted lists of the
    /// thresholding methods are built from).
    pub fn footprint_with_coords(&self) -> usize {
        self.footprint_score_pointer()
            + self
                .entries
                .iter()
                .map(|e| e.coords.len() * std::mem::size_of::<f64>())
                .sum::<usize>()
    }
}

impl FromIterator<CandidateEntry> for CandidateList {
    fn from_iter<T: IntoIterator<Item = CandidateEntry>>(iter: T) -> Self {
        let mut list = CandidateList::new();
        for e in iter {
            list.insert(e);
        }
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32, score: f64, coords: &[f64]) -> CandidateEntry {
        CandidateEntry {
            id: TupleId(id),
            score,
            coords: coords.to_vec(),
        }
    }

    #[test]
    fn insert_keeps_descending_score_order() {
        let mut list = CandidateList::new();
        list.insert(entry(3, 0.48, &[0.1, 0.8]));
        list.insert(entry(4, 0.38, &[0.1, 0.6]));
        list.insert(entry(7, 0.90, &[0.9, 0.0]));
        let scores: Vec<f64> = list.iter().map(|e| e.score).collect();
        assert_eq!(scores, vec![0.90, 0.48, 0.38]);
        assert_eq!(list.top().unwrap().id, TupleId(7));
    }

    #[test]
    fn ties_are_broken_by_tuple_id() {
        let mut list = CandidateList::new();
        list.insert(entry(9, 0.5, &[]));
        list.insert(entry(2, 0.5, &[]));
        let ids: Vec<u32> = list.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![2, 9]);
    }

    #[test]
    fn lookup_and_contains() {
        let list: CandidateList = [entry(1, 0.4, &[0.2]), entry(5, 0.6, &[0.3])]
            .into_iter()
            .collect();
        assert!(list.contains(TupleId(5)));
        assert!(!list.contains(TupleId(2)));
        assert_eq!(list.get(TupleId(1)).unwrap().coord(0), 0.2);
        assert_eq!(list.len(), 2);
        assert!(!list.is_empty());
    }

    #[test]
    fn footprints_scale_with_contents() {
        let list: CandidateList = (0..10)
            .map(|i| entry(i, 0.1 * i as f64, &[0.0, 0.1, 0.2, 0.3]))
            .collect();
        let base = list.footprint_score_pointer();
        let full = list.footprint_with_coords();
        assert_eq!(base, 10 * 16);
        assert_eq!(full, base + 10 * 4 * 8);
    }
}
