//! # ir-topk
//!
//! The Threshold Algorithm (TA) of Fagin et al., in its *random access*
//! variant, running over the inverted-list storage of [`ir_storage`].
//!
//! TA probes the per-dimension inverted lists with sorted accesses; every
//! newly encountered tuple is fetched in full with a random access and
//! scored; processing stops once the k-th best score reaches the threshold
//! `Σ_j q_j · t_j`, where `t_j` is the sorting key of the next unread entry
//! of list `L_j` (Section 2 of the paper, traced on the running example in
//! Figure 2).
//!
//! Two aspects go beyond the textbook algorithm because the immutable-region
//! computation needs them:
//!
//! * every encountered non-result tuple is retained in a **candidate list**
//!   `C(q)` in decreasing score order, together with its coordinates in the
//!   query dimensions (captured while the full vector is in hand, at no
//!   extra I/O) — see [`candidates`],
//! * the TA state (cursor positions, seen set, thresholds) is kept alive in a
//!   [`TaRun`] after termination, so Phase 3 of Scan/CPT can *resume* the
//!   scan exactly where it stopped — see [`ta`].
//!
//! The probing order follows the enhancement used in the paper's
//! experimental system model (Section 7.1): the next sorted access goes to
//! the list with the largest `q_j · d_{αj}`, where `d_α` is the last tuple
//! pulled from that list. Plain round-robin is also available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod ta;

pub use candidates::{CandidateEntry, CandidateList};
pub use ta::{ProbeStrategy, TaConfig, TaRun, TaStats};
