//! Tuple-update streams: the dynamic-data workload.
//!
//! The paper evaluates a frozen dataset; a deployed server sees churn —
//! new tuples arrive, old ones are retired, and individual scores are
//! corrected in place. [`UpdateStream`] reproduces that workload
//! deterministically against a concrete [`Dataset`]:
//!
//! * **Churn mix** — [`UpdateConfig::churn`] splits the stream between
//!   membership churn (inserts and deletes, drawn evenly) and in-place
//!   [`TupleUpdate::UpdateScore`] writes; a configurable fraction of the
//!   rescores sets the coordinate to `0.0`, exercising the
//!   coordinate-removal path.
//! * **Zipf-popular targets** — deletes and rescores pick their victim
//!   with probability proportional to `1 / rank^s` over the live tuples
//!   (low ids are the hot head), the same skew the drift stream applies
//!   to subscriptions: a few hot tuples absorb most of the mutation
//!   traffic.
//! * **Live-id tracking** — the generator mirrors the dataset's dense-id
//!   discipline: inserts take the next dense id, deleted ids leave the
//!   live set and are never targeted again, and the live set never drops
//!   to zero. Every emitted stream therefore replays cleanly through
//!   [`Dataset::with_updates`], an engine's `apply_updates`, or both.
//! * **Shared seeding** — all draws come from one
//!   [`ir_types::SeededLcg`] in its `mixed` convention (the fleet
//!   scheduler's), so a `(dataset, config, seed)` triple pins the stream
//!   bit-for-bit on every platform.

use crate::zipf::ZipfSampler;
use ir_types::{Dataset, DimId, IrError, IrResult, SeededLcg, SparseVector, TupleId, TupleUpdate};
use serde::{Deserialize, Serialize};

/// Configuration of an update stream.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct UpdateConfig {
    /// Total number of updates in the stream.
    pub num_updates: usize,
    /// Fraction of updates that churn membership — split evenly between
    /// inserts and deletes — the rest rescore one coordinate in place.
    /// Must lie in `[0, 1]`.
    pub churn: f64,
    /// Zipf exponent of target-tuple popularity (0 = uniform): deletes
    /// and rescores concentrate on the hot head of the live tuples.
    pub zipf_exponent: f64,
    /// Fraction of rescores that remove the coordinate (write `0.0`)
    /// instead of assigning a fresh value. Must lie in `[0, 1]`.
    pub remove_fraction: f64,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        UpdateConfig {
            num_updates: 500,
            churn: 0.4,
            zipf_exponent: 1.0,
            remove_fraction: 0.1,
        }
    }
}

/// A deterministic, replayable sequence of [`TupleUpdate`]s against one
/// dataset. Every update in the stream is valid at its position when the
/// stream is applied in order from the generating dataset's state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UpdateStream {
    updates: Vec<TupleUpdate>,
}

impl UpdateStream {
    /// Generates an update stream against the current state of `dataset`
    /// from `config` and `seed`.
    ///
    /// Returns [`IrError::InvalidConfig`] for an empty dataset, a bad
    /// Zipf exponent, or a `churn` / `remove_fraction` outside `[0, 1]`.
    pub fn generate(dataset: &Dataset, config: &UpdateConfig, seed: u64) -> IrResult<Self> {
        for (what, value) in [
            ("churn", config.churn),
            ("remove_fraction", config.remove_fraction),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(IrError::InvalidConfig(format!(
                    "{what} must lie in [0, 1], got {value}"
                )));
            }
        }
        if dataset.cardinality() == 0 {
            return Err(IrError::InvalidConfig(
                "update stream needs a non-empty dataset".to_string(),
            ));
        }
        // One popularity table over the largest possible live set; draws
        // beyond the current live size are rejected and redrawn, which
        // keeps the head-heavy shape without rebuilding the table as the
        // live set grows and shrinks.
        let popularity = ZipfSampler::try_new(
            dataset.cardinality() + config.num_updates,
            config.zipf_exponent,
        )?;
        let dimensionality = dataset.dimensionality();

        // Coordinate density of generated inserts mirrors the dataset:
        // average non-zeros per tuple, clamped to at least one.
        let nnz_total: usize = dataset
            .tuple_ids()
            .filter_map(|id| dataset.tuple(id).ok())
            .map(|t| t.nnz())
            .sum();
        let density_millis = ((nnz_total as u64 * 1000)
            / (dataset.cardinality() as u64 * dimensionality as u64))
            .clamp(1, 1000);

        let mut rng = SeededLcg::mixed(seed);
        let mut live: Vec<TupleId> = dataset.tuple_ids().collect();
        let mut next_id = dataset.cardinality() as u32;
        let churn_millis = (config.churn * 1000.0).round() as u64;
        let remove_millis = (config.remove_fraction * 1000.0).round() as u64;

        let mut updates = Vec::with_capacity(config.num_updates);
        for _ in 0..config.num_updates {
            let membership = rng.next_below(1000) < churn_millis;
            // Deletes keep at least one tuple live, so a stream can never
            // empty the dataset out from under a serving engine.
            let delete = membership && rng.next_below(2) == 0 && live.len() > 1;
            if membership && !delete {
                let mut pairs: Vec<(u32, f64)> = Vec::new();
                for dim in 0..dimensionality {
                    if rng.next_below(1000) < density_millis {
                        pairs.push((dim, (rng.next_below(999) + 1) as f64 / 1000.0));
                    }
                }
                if pairs.is_empty() {
                    let dim = rng.next_below(dimensionality as u64) as u32;
                    pairs.push((dim, (rng.next_below(999) + 1) as f64 / 1000.0));
                }
                updates.push(TupleUpdate::Insert {
                    vector: SparseVector::from_pairs(pairs)?,
                });
                live.push(TupleId(next_id));
                next_id += 1;
                continue;
            }

            // Zipf-popular victim among the live tuples (rejection keeps
            // the draw inside the current live set).
            let rank = loop {
                let u = rng.next_mixed() as f64 / (1u64 << 53) as f64;
                let rank = popularity.sample_from_uniform(u);
                if rank < live.len() {
                    break rank;
                }
            };
            if delete {
                let tuple = live.swap_remove(rank);
                updates.push(TupleUpdate::Delete { tuple });
            } else {
                let tuple = live[rank];
                let dim = DimId(rng.next_below(dimensionality as u64) as u32);
                let value = if rng.next_below(1000) < remove_millis {
                    0.0
                } else {
                    (rng.next_below(999) + 1) as f64 / 1000.0
                };
                updates.push(TupleUpdate::UpdateScore { tuple, dim, value });
            }
        }
        Ok(UpdateStream { updates })
    }

    /// The updates, in stream order.
    pub fn updates(&self) -> &[TupleUpdate] {
        &self.updates
    }

    /// Number of updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True if the stream has no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Iterates the updates.
    pub fn iter(&self) -> impl Iterator<Item = &TupleUpdate> {
        self.updates.iter()
    }

    /// The stream cut into maintenance batches of at most `size` updates
    /// (at least 1), in order — the shape `apply_updates` consumes.
    pub fn batches(&self, size: usize) -> impl Iterator<Item = &[TupleUpdate]> {
        self.updates.chunks(size.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_types::DatasetBuilder;

    fn dataset(n: usize) -> Dataset {
        let mut builder = DatasetBuilder::new(6);
        for i in 0..n as u32 {
            let pairs: Vec<(u32, f64)> = (0..6u32)
                .filter(|d| (i + d) % 3 != 0)
                .map(|d| (d, (((i * 31 + d * 17) % 97) + 1) as f64 / 98.0))
                .collect();
            builder.push_pairs(pairs).unwrap();
        }
        builder.build()
    }

    #[test]
    fn stream_is_deterministic_and_replays_cleanly() {
        let base = dataset(120);
        let config = UpdateConfig {
            num_updates: 400,
            ..UpdateConfig::default()
        };
        let a = UpdateStream::generate(&base, &config, 9).unwrap();
        let b = UpdateStream::generate(&base, &config, 9).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, UpdateStream::generate(&base, &config, 10).unwrap());
        assert_eq!(a.len(), 400);

        // Every update validates at its position: the full stream replays
        // through the canonical Dataset semantics without error.
        let mutated = base.with_updates(a.updates()).unwrap();
        let inserts = a
            .iter()
            .filter(|u| matches!(u, TupleUpdate::Insert { .. }))
            .count();
        assert_eq!(mutated.cardinality(), base.cardinality() + inserts);

        // Batching is a pure partition of the same sequence.
        let rejoined: Vec<TupleUpdate> = a.batches(7).flatten().cloned().collect();
        assert_eq!(rejoined, a.updates());
    }

    #[test]
    fn churn_bounds_select_the_operation_mix() {
        let base = dataset(60);
        let all_churn = UpdateStream::generate(
            &base,
            &UpdateConfig {
                num_updates: 200,
                churn: 1.0,
                ..UpdateConfig::default()
            },
            4,
        )
        .unwrap();
        assert!(all_churn
            .iter()
            .all(|u| !matches!(u, TupleUpdate::UpdateScore { .. })));
        assert!(all_churn
            .iter()
            .any(|u| matches!(u, TupleUpdate::Insert { .. })));
        assert!(all_churn
            .iter()
            .any(|u| matches!(u, TupleUpdate::Delete { .. })));

        let no_churn = UpdateStream::generate(
            &base,
            &UpdateConfig {
                num_updates: 200,
                churn: 0.0,
                remove_fraction: 0.3,
                ..UpdateConfig::default()
            },
            4,
        )
        .unwrap();
        assert!(no_churn
            .iter()
            .all(|u| matches!(u, TupleUpdate::UpdateScore { .. })));
        // The removal path (value 0.0) is exercised.
        assert!(no_churn
            .iter()
            .any(|u| matches!(u, TupleUpdate::UpdateScore { value, .. } if *value == 0.0)));
    }

    #[test]
    fn deletes_never_target_a_dead_tuple_and_ids_stay_dense() {
        let base = dataset(40);
        let stream = UpdateStream::generate(
            &base,
            &UpdateConfig {
                num_updates: 600,
                churn: 0.8,
                ..UpdateConfig::default()
            },
            77,
        )
        .unwrap();
        let mut live: std::collections::BTreeSet<TupleId> = base.tuple_ids().collect();
        let mut next = base.cardinality() as u32;
        for update in stream.iter() {
            match update {
                TupleUpdate::Insert { vector } => {
                    assert!(!vector.is_empty(), "inserts carry at least one coordinate");
                    live.insert(TupleId(next));
                    next += 1;
                }
                TupleUpdate::Delete { tuple } => {
                    assert!(live.remove(tuple), "delete of a dead or unknown tuple");
                }
                TupleUpdate::UpdateScore { tuple, .. } => {
                    assert!(live.contains(tuple), "rescore of a dead tuple");
                }
            }
            assert!(!live.is_empty(), "the live set must never drain");
        }
    }

    #[test]
    fn hot_head_absorbs_most_targeted_mutations() {
        let base = dataset(200);
        let stream = UpdateStream::generate(
            &base,
            &UpdateConfig {
                num_updates: 2_000,
                churn: 0.0,
                zipf_exponent: 1.2,
                ..UpdateConfig::default()
            },
            5,
        )
        .unwrap();
        let head = stream
            .iter()
            .filter_map(|u| u.target())
            .filter(|t| t.0 < 20)
            .count();
        // 10% of the tuples absorb far more than 10% of the rescores.
        assert!(
            head * 3 > stream.len(),
            "head of 20/200 tuples got only {head}/{} rescores",
            stream.len()
        );
    }

    #[test]
    fn bad_configs_are_typed_errors() {
        let base = dataset(10);
        let empty = DatasetBuilder::new(3).build();
        let ok = UpdateConfig::default();
        assert!(matches!(
            UpdateStream::generate(&empty, &ok, 0),
            Err(IrError::InvalidConfig(_))
        ));
        for bad in [
            UpdateConfig { churn: -0.1, ..ok },
            UpdateConfig {
                churn: f64::NAN,
                ..ok
            },
            UpdateConfig {
                remove_fraction: 1.5,
                ..ok
            },
            UpdateConfig {
                zipf_exponent: -1.0,
                ..ok
            },
        ] {
            assert!(matches!(
                UpdateStream::generate(&base, &bad, 0),
                Err(IrError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn serde_roundtrip_preserves_the_stream() {
        let base = dataset(30);
        let stream = UpdateStream::generate(&base, &UpdateConfig::default(), 3).unwrap();
        let json = serde_json::to_string(&stream).unwrap();
        let back: UpdateStream = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stream);
    }
}
