//! KB-like image-feature vectors.
//!
//! The paper's second real dataset (KB, Kemelmacher & Basri) contains 28,452
//! images, each a 9,693-dimensional feature vector, with *moderate*
//! correlation between dimensions — the middle ground between the
//! uncorrelated sparse WSJ corpus and the strongly correlated dense ST data.
//! We synthesise that middle ground with a low-rank latent-factor model:
//! each image has a handful of latent factors, each feature loads on a few
//! factors, and a sparsification threshold keeps only the strong activations.
//! The result is moderately sparse, moderately correlated non-negative
//! feature vectors — so for a random query all three candidate partitions
//! (`C⁰_j`, `C^H_j`, `C^L_j`) are sizable, which is the property Figure 12
//! exercises.

use crate::DatasetGenerator;
use ir_types::{Dataset, DatasetBuilder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Configuration of the feature-vector generator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Number of images (tuples).
    pub num_images: usize,
    /// Number of features (dimensionality).
    pub num_features: u32,
    /// Number of latent factors shared across features.
    pub latent_factors: usize,
    /// Fraction of features each image activates (before thresholding).
    pub activation_rate: f64,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            num_images: 10_000,
            num_features: 2_048,
            latent_factors: 24,
            activation_rate: 0.05,
        }
    }
}

impl FeatureConfig {
    /// The cardinalities reported in Section 7.1 for KB.
    pub fn full_scale() -> Self {
        FeatureConfig {
            num_images: 28_452,
            num_features: 9_693,
            latent_factors: 32,
            activation_rate: 0.05,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        FeatureConfig {
            num_images: 400,
            num_features: 128,
            latent_factors: 8,
            activation_rate: 0.15,
        }
    }
}

/// Generator of KB-like feature-vector datasets.
#[derive(Clone, Debug, Default)]
pub struct FeatureVectorGenerator {
    config: FeatureConfig,
}

impl FeatureVectorGenerator {
    /// Creates a generator.
    pub fn new(config: FeatureConfig) -> Self {
        FeatureVectorGenerator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Generates the dataset.
    pub fn generate_dataset(&self, seed: u64) -> Dataset {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let normal: Normal<f64> = Normal::new(0.0, 1.0).expect("valid normal");

        // Feature loadings: each feature loads on two latent factors with
        // fixed random weights — this is what induces the moderate
        // correlation between features sharing a factor.
        let loadings: Vec<(usize, usize, f64, f64)> = (0..cfg.num_features)
            .map(|_| {
                let f1 = rng.gen_range(0..cfg.latent_factors);
                let f2 = rng.gen_range(0..cfg.latent_factors);
                (f1, f2, rng.gen_range(0.3..1.0), rng.gen_range(0.0..0.5))
            })
            .collect();

        let mut builder = DatasetBuilder::with_capacity(cfg.num_features, cfg.num_images);
        for _ in 0..cfg.num_images {
            // Per-image latent factor activations (non-negative).
            let factors: Vec<f64> = (0..cfg.latent_factors)
                .map(|_| normal.sample(&mut rng).abs())
                .collect();
            let mut pairs: Vec<(u32, f64)> = Vec::new();
            for (feat, &(f1, f2, w1, w2)) in loadings.iter().enumerate() {
                // Only a random subset of features is active per image.
                if rng.gen::<f64>() > cfg.activation_rate {
                    continue;
                }
                let raw = w1 * factors[f1] + w2 * factors[f2] + 0.1 * normal.sample(&mut rng).abs();
                let value = (raw / 3.0).clamp(0.0, 1.0);
                if value > 0.01 {
                    pairs.push((feat as u32, value));
                }
            }
            builder.push_pairs(pairs).expect("generated tuple is valid");
        }
        builder.build()
    }
}

impl DatasetGenerator for FeatureVectorGenerator {
    fn generate(&self, seed: u64) -> Dataset {
        self.generate_dataset(seed)
    }

    fn name(&self) -> &'static str {
        "KB-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_moderate_sparsity() {
        let gen = FeatureVectorGenerator::new(FeatureConfig::tiny());
        let dataset = gen.generate_dataset(9);
        let stats = dataset.stats();
        assert_eq!(stats.cardinality, 400);
        assert!(stats.max_value <= 1.0);
        let fill = stats.avg_nnz_per_tuple / 128.0;
        assert!(
            fill > 0.02 && fill < 0.5,
            "expected moderate sparsity, got fill rate {fill}"
        );
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let gen = FeatureVectorGenerator::new(FeatureConfig::tiny());
        let a = gen.generate_dataset(1);
        let b = gen.generate_dataset(1);
        let c = gen.generate_dataset(2);
        for (id, t) in a.iter() {
            assert_eq!(t, b.tuple(id).unwrap());
        }
        let differs = a
            .iter()
            .any(|(id, t)| c.tuple(id).map(|u| u != t).unwrap_or(true));
        assert!(differs);
    }

    #[test]
    fn name_is_kb_like() {
        assert_eq!(FeatureVectorGenerator::default().name(), "KB-like");
        assert_eq!(FeatureConfig::full_scale().num_images, 28_452);
    }
}
