//! Query workload generation.
//!
//! The paper forms queries by randomly selecting `qlen` query dimensions and
//! assigning them weights (TF-IDF-derived for WSJ, random for KB and ST).
//! Every reported number is an average over 100 queries. This module
//! reproduces that methodology: a [`QueryWorkload`] is a deterministic,
//! seeded list of [`QueryVector`]s over a given dataset.

use ir_types::{Dataset, DimId, IrResult, QueryVector};
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How query dimensions are chosen.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DimSelection {
    /// Uniformly among dimensions that have at least `min_postings` tuples —
    /// the KB/ST style.
    #[default]
    Uniform,
    /// Biased towards frequently occurring dimensions (document-frequency
    /// weighted) — the WSJ "search terms" style.
    PopularityBiased,
}

/// Configuration of a query workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of query dimensions per query (`qlen`).
    pub qlen: usize,
    /// Result size `k`.
    pub k: usize,
    /// Number of queries in the workload.
    pub num_queries: usize,
    /// Minimum number of postings a dimension needs to be eligible.
    pub min_postings: usize,
    /// Maximum number of postings a dimension may have and stay eligible —
    /// a stopword cut. The paper draws query terms uniformly from a huge
    /// vocabulary, where stopword-like terms are vanishingly unlikely; at
    /// smoke scale they must be excluded explicitly or they dominate every
    /// co-occurrence statistic. `usize::MAX` disables the cut.
    pub max_postings: usize,
    /// How dimensions are selected.
    pub selection: DimSelection,
    /// If true all weights are equal (the paper's Figure 6 study); otherwise
    /// weights are drawn uniformly from `[0.2, 1.0]`.
    pub equal_weights: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            qlen: 4,
            k: 10,
            num_queries: 100,
            min_postings: 32,
            max_postings: usize::MAX,
            selection: DimSelection::Uniform,
            equal_weights: false,
        }
    }
}

impl WorkloadConfig {
    /// Builder-style setter for `qlen`.
    pub fn with_qlen(mut self, qlen: usize) -> Self {
        self.qlen = qlen;
        self
    }

    /// Builder-style setter for `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Builder-style setter for `max_postings` (the stopword cut).
    pub fn with_max_postings(mut self, max_postings: usize) -> Self {
        self.max_postings = max_postings;
        self
    }

    /// Builder-style setter for the number of queries.
    pub fn with_num_queries(mut self, n: usize) -> Self {
        self.num_queries = n;
        self
    }

    /// Builder-style setter for the dimension-selection policy.
    pub fn with_selection(mut self, selection: DimSelection) -> Self {
        self.selection = selection;
        self
    }
}

/// A deterministic list of queries over one dataset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryWorkload {
    queries: Vec<QueryVector>,
}

impl QueryWorkload {
    /// Generates a workload over `dataset`.
    pub fn generate(dataset: &Dataset, config: &WorkloadConfig, seed: u64) -> IrResult<Self> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        // Document frequency per dimension.
        let mut df: HashMap<u32, usize> = HashMap::new();
        for (_, tuple) in dataset.iter() {
            for (dim, _) in tuple.iter() {
                *df.entry(dim.0).or_insert(0) += 1;
            }
        }
        let mut eligible: Vec<(u32, usize)> = df
            .into_iter()
            .filter(|(_, count)| *count >= config.min_postings && *count <= config.max_postings)
            .collect();
        eligible.sort_unstable();
        if eligible.len() < config.qlen {
            let stopword_cut = if config.max_postings == usize::MAX {
                String::new()
            } else {
                format!(" and at most {} (stopword cut)", config.max_postings)
            };
            return Err(ir_types::IrError::InvalidConfig(format!(
                "only {} dimensions have at least {} postings{}, need {}",
                eligible.len(),
                config.min_postings,
                stopword_cut,
                config.qlen
            )));
        }

        let mut queries = Vec::with_capacity(config.num_queries);
        for _ in 0..config.num_queries {
            let dims: Vec<u32> = match config.selection {
                DimSelection::Uniform => {
                    let mut pool: Vec<u32> = eligible.iter().map(|(d, _)| *d).collect();
                    pool.shuffle(&mut rng);
                    pool.truncate(config.qlen);
                    pool
                }
                DimSelection::PopularityBiased => {
                    // Weighted sampling without replacement by document
                    // frequency.
                    let mut pool = eligible.clone();
                    let mut picked = Vec::with_capacity(config.qlen);
                    for _ in 0..config.qlen {
                        let total: usize = pool.iter().map(|(_, c)| *c).sum();
                        let mut target = rng.gen_range(0..total.max(1));
                        let mut chosen = 0usize;
                        for (i, (_, c)) in pool.iter().enumerate() {
                            if target < *c {
                                chosen = i;
                                break;
                            }
                            target -= *c;
                        }
                        picked.push(pool.swap_remove(chosen).0);
                    }
                    picked
                }
            };
            let weights = dims.iter().map(|&d| {
                let w = if config.equal_weights {
                    1.0
                } else {
                    rng.gen_range(0.2..=1.0)
                };
                (d, w)
            });
            queries.push(QueryVector::new(weights, config.k)?);
        }
        Ok(QueryWorkload { queries })
    }

    /// The queries.
    pub fn queries(&self) -> &[QueryVector] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterates the queries.
    pub fn iter(&self) -> impl Iterator<Item = &QueryVector> {
        self.queries.iter()
    }
}

/// Convenience: dimensions of the dataset with at least `min_postings`
/// postings, useful for custom workloads.
pub fn eligible_dims(dataset: &Dataset, min_postings: usize) -> Vec<DimId> {
    let mut df: HashMap<u32, usize> = HashMap::new();
    for (_, tuple) in dataset.iter() {
        for (dim, _) in tuple.iter() {
            *df.entry(dim.0).or_insert(0) += 1;
        }
    }
    let mut dims: Vec<u32> = df
        .into_iter()
        .filter(|(_, c)| *c >= min_postings)
        .map(|(d, _)| d)
        .collect();
    dims.sort_unstable();
    dims.into_iter().map(DimId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::{TextCorpusConfig, TextCorpusGenerator};

    fn small_corpus() -> Dataset {
        TextCorpusGenerator::new(TextCorpusConfig::tiny()).generate_corpus(3)
    }

    #[test]
    fn workload_respects_configuration() {
        let dataset = small_corpus();
        let config = WorkloadConfig {
            qlen: 3,
            k: 5,
            num_queries: 20,
            min_postings: 5,
            max_postings: usize::MAX,
            selection: DimSelection::Uniform,
            equal_weights: false,
        };
        let workload = QueryWorkload::generate(&dataset, &config, 1).unwrap();
        assert_eq!(workload.len(), 20);
        for q in workload.iter() {
            assert_eq!(q.qlen(), 3);
            assert_eq!(q.k(), 5);
            for (_, w) in q.dims() {
                assert!(w > 0.0 && w <= 1.0);
            }
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let dataset = small_corpus();
        let config = WorkloadConfig::default()
            .with_qlen(2)
            .with_num_queries(5)
            .with_k(3);
        let config = WorkloadConfig {
            min_postings: 5,
            max_postings: usize::MAX,
            ..config
        };
        let a = QueryWorkload::generate(&dataset, &config, 9).unwrap();
        let b = QueryWorkload::generate(&dataset, &config, 9).unwrap();
        assert_eq!(a, b);
        let c = QueryWorkload::generate(&dataset, &config, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn popularity_bias_prefers_common_terms() {
        let dataset = small_corpus();
        let config = WorkloadConfig {
            qlen: 2,
            k: 3,
            num_queries: 50,
            min_postings: 3,
            max_postings: usize::MAX,
            selection: DimSelection::PopularityBiased,
            equal_weights: true,
        };
        let workload = QueryWorkload::generate(&dataset, &config, 4).unwrap();
        // Average document frequency of selected terms must exceed that of
        // the eligible pool (popular terms are picked more often).
        let df = |d: DimId| dataset.iter().filter(|(_, t)| t.get(d) > 0.0).count() as f64;
        let eligible = eligible_dims(&dataset, 3);
        let pool_avg: f64 = eligible.iter().map(|&d| df(d)).sum::<f64>() / eligible.len() as f64;
        let mut picked_avg = 0.0;
        let mut count = 0.0;
        for q in workload.iter() {
            for (d, _) in q.dims() {
                picked_avg += df(d);
                count += 1.0;
            }
        }
        picked_avg /= count;
        assert!(
            picked_avg > pool_avg,
            "picked avg df {picked_avg} <= pool avg {pool_avg}"
        );
    }

    #[test]
    fn impossible_configuration_is_rejected() {
        let dataset = small_corpus();
        let config = WorkloadConfig {
            qlen: 50,
            k: 3,
            num_queries: 1,
            min_postings: 100_000,
            max_postings: usize::MAX,
            selection: DimSelection::Uniform,
            equal_weights: false,
        };
        assert!(QueryWorkload::generate(&dataset, &config, 0).is_err());
    }

    #[test]
    fn equal_weights_flag_produces_unit_weights() {
        let dataset = small_corpus();
        let config = WorkloadConfig {
            qlen: 2,
            k: 3,
            num_queries: 3,
            min_postings: 5,
            max_postings: usize::MAX,
            selection: DimSelection::Uniform,
            equal_weights: true,
        };
        let workload = QueryWorkload::generate(&dataset, &config, 2).unwrap();
        for q in workload.iter() {
            for (_, w) in q.dims() {
                assert_eq!(w, 1.0);
            }
        }
    }
}
