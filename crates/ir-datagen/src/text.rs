//! WSJ-like sparse TF-IDF text corpus.
//!
//! The paper's default dataset is the Wall Street Journal corpus: 172,891
//! articles over 181,978 terms, indexed with TF-IDF weights. We cannot ship
//! the corpus itself, so this generator produces a synthetic stand-in with
//! the structural properties that drive the experiments:
//!
//! * extreme sparsity — each document touches a few dozen distinct terms out
//!   of a large vocabulary,
//! * Zipfian term popularity — a few very common terms, a long tail of rare
//!   ones (which also gives the uneven inverted-list lengths that explain the
//!   Figure 13 behaviour of Prune),
//! * TF-IDF coordinates normalised into `[0, 1]`.
//!
//! The consequence that matters for immutable regions: for a random
//! multi-term query, almost every candidate has a non-zero value in exactly
//! one query dimension — `C⁰_j` and `C^H_j` dominate and `C^L_j` is tiny,
//! exactly the situation of Figure 6(a).

use crate::DatasetGenerator;
use crate::ZipfSampler;
use ir_types::{Dataset, DatasetBuilder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the synthetic corpus.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TextCorpusConfig {
    /// Number of documents (tuples).
    pub num_docs: usize,
    /// Vocabulary size (dimensionality).
    pub vocabulary: u32,
    /// Mean of the log-normal distribution of *distinct terms per document*.
    pub mean_distinct_terms: f64,
    /// Zipf exponent of term popularity.
    pub zipf_exponent: f64,
}

impl Default for TextCorpusConfig {
    fn default() -> Self {
        // A laptop-scale default; `full_scale` reproduces the paper's sizes.
        TextCorpusConfig {
            num_docs: 20_000,
            vocabulary: 10_000,
            mean_distinct_terms: 40.0,
            zipf_exponent: 1.0,
        }
    }
}

impl TextCorpusConfig {
    /// The cardinalities reported in Section 7.1 for WSJ.
    pub fn full_scale() -> Self {
        TextCorpusConfig {
            num_docs: 172_891,
            vocabulary: 181_978,
            mean_distinct_terms: 180.0,
            zipf_exponent: 1.0,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        TextCorpusConfig {
            num_docs: 300,
            vocabulary: 200,
            mean_distinct_terms: 10.0,
            zipf_exponent: 1.0,
        }
    }
}

/// Generator of WSJ-like corpora.
#[derive(Clone, Debug, Default)]
pub struct TextCorpusGenerator {
    config: TextCorpusConfig,
}

impl TextCorpusGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: TextCorpusConfig) -> Self {
        TextCorpusGenerator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TextCorpusConfig {
        &self.config
    }

    /// Generates the corpus: term frequencies are drawn per document, then
    /// converted to TF-IDF and normalised into `[0, 1]`.
    pub fn generate_corpus(&self, seed: u64) -> Dataset {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let zipf = ZipfSampler::new(cfg.vocabulary as usize, cfg.zipf_exponent);
        let length_dist =
            LogNormal::new(cfg.mean_distinct_terms.ln(), 0.6).expect("valid log-normal parameters");

        // First pass: raw term frequencies per document + document frequency
        // per term.
        let mut docs: Vec<HashMap<u32, u32>> = Vec::with_capacity(cfg.num_docs);
        let mut doc_freq: HashMap<u32, u32> = HashMap::new();
        for _ in 0..cfg.num_docs {
            let distinct = (length_dist.sample(&mut rng).round() as usize).clamp(3, 2_000);
            let mut tf: HashMap<u32, u32> = HashMap::with_capacity(distinct);
            // Draw `distinct` terms (duplicates raise the term frequency).
            for _ in 0..(distinct * 2) {
                let term = zipf.sample(&mut rng) as u32;
                *tf.entry(term).or_insert(0) += 1;
                if tf.len() >= distinct {
                    break;
                }
            }
            for &term in tf.keys() {
                *doc_freq.entry(term).or_insert(0) += 1;
            }
            docs.push(tf);
        }

        // Second pass: TF-IDF, normalised by the global maximum so every
        // coordinate is in [0, 1].
        let n = cfg.num_docs as f64;
        let idf = |term: u32| -> f64 {
            let df = doc_freq.get(&term).copied().unwrap_or(1) as f64;
            (n / df).ln().max(0.0)
        };
        let mut max_weight = 0.0f64;
        let weighted: Vec<Vec<(u32, f64)>> = docs
            .iter()
            .map(|tf| {
                tf.iter()
                    .map(|(&term, &freq)| {
                        let w = (1.0 + (freq as f64).ln()) * idf(term);
                        if w > max_weight {
                            max_weight = w;
                        }
                        (term, w)
                    })
                    .collect()
            })
            .collect();
        let max_weight = max_weight.max(f64::MIN_POSITIVE);

        let mut builder = DatasetBuilder::with_capacity(cfg.vocabulary, cfg.num_docs);
        for doc in weighted {
            let pairs = doc
                .into_iter()
                .map(|(term, w)| (term, (w / max_weight).clamp(0.0, 1.0)))
                .filter(|(_, w)| *w > 0.0);
            builder.push_pairs(pairs).expect("generated tuple is valid");
        }
        builder.build()
    }

    /// Terms sorted by document frequency (most common first) — used by the
    /// query workload generator to mimic realistic search terms.
    pub fn popular_terms(dataset: &Dataset, limit: usize) -> Vec<u32> {
        let mut df: HashMap<u32, u32> = HashMap::new();
        for (_, tuple) in dataset.iter() {
            for (dim, _) in tuple.iter() {
                *df.entry(dim.0).or_insert(0) += 1;
            }
        }
        let mut terms: Vec<(u32, u32)> = df.into_iter().collect();
        terms.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        terms.into_iter().take(limit).map(|(t, _)| t).collect()
    }
}

impl DatasetGenerator for TextCorpusGenerator {
    fn generate(&self, seed: u64) -> Dataset {
        self.generate_corpus(seed)
    }

    fn name(&self) -> &'static str {
        "WSJ-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_sparse_and_in_range() {
        let gen = TextCorpusGenerator::new(TextCorpusConfig::tiny());
        let dataset = gen.generate_corpus(42);
        let stats = dataset.stats();
        assert_eq!(stats.cardinality, 300);
        assert!(stats.avg_nnz_per_tuple < 50.0, "documents must be sparse");
        assert!(stats.max_value <= 1.0);
        assert!(stats.total_nnz > 300, "documents must not be empty");
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = TextCorpusGenerator::new(TextCorpusConfig::tiny());
        let a = gen.generate_corpus(7);
        let b = gen.generate_corpus(7);
        for (id, tuple) in a.iter() {
            assert_eq!(tuple, b.tuple(id).unwrap());
        }
        let c = gen.generate_corpus(8);
        let differs = a
            .iter()
            .any(|(id, tuple)| c.tuple(id).map(|t| t != tuple).unwrap_or(true));
        assert!(differs, "different seeds must give different corpora");
    }

    #[test]
    fn term_popularity_is_skewed() {
        let gen = TextCorpusGenerator::new(TextCorpusConfig::tiny());
        let dataset = gen.generate_corpus(1);
        let popular = TextCorpusGenerator::popular_terms(&dataset, 10);
        assert_eq!(popular.len(), 10);
        // The most popular term must appear in far more documents than the
        // 10th most popular one.
        let df = |term: u32| {
            dataset
                .iter()
                .filter(|(_, t)| t.get(ir_types::DimId(term)) > 0.0)
                .count()
        };
        assert!(df(popular[0]) >= df(popular[9]));
        assert!(df(popular[0]) > 30, "head term should be common");
    }

    #[test]
    fn name_and_config_access() {
        let gen = TextCorpusGenerator::new(TextCorpusConfig::default());
        assert_eq!(gen.name(), "WSJ-like");
        assert_eq!(gen.config().num_docs, 20_000);
        assert_eq!(TextCorpusConfig::full_scale().num_docs, 172_891);
    }
}
