//! # ir-datagen
//!
//! Synthetic dataset and workload generators standing in for the three
//! evaluation datasets of the paper (Section 7.1):
//!
//! * [`text::TextCorpusGenerator`] — a WSJ-like sparse TF-IDF document
//!   corpus: Zipf-distributed vocabulary, log-normal document lengths, each
//!   document touching only a handful of terms. Candidates of a multi-term
//!   query overwhelmingly have a single non-zero query coordinate, the
//!   structure Figure 6(a) shows and candidate pruning exploits.
//! * [`features::FeatureVectorGenerator`] — a KB-like image-feature
//!   collection: a low-rank latent-factor model with a sparsifying threshold
//!   produces moderately correlated, moderately sparse non-negative feature
//!   vectors, so all three candidate partitions are sizable (Figure 12).
//! * [`correlated::CorrelatedGenerator`] — the ST synthetic dataset: dense
//!   multivariate-normal tuples with pairwise correlation 0.5 (the paper's
//!   `mvnrnd` construction), clustered along the main diagonal of the unit
//!   cube, where `C^L_j` dominates and thresholding is the technique that
//!   matters (Figures 6(b) and 11).
//! * [`queries`] — query workload generation for each dataset kind.
//! * [`drift`] — Zipf-popular weight-drift event streams, the workload a
//!   subscription fleet serves.
//! * [`update_stream`] — Zipf-popular tuple-update streams (inserts,
//!   deletes, rescores) against a concrete dataset, the dynamic-data
//!   workload the engine's maintenance path consumes.
//!
//! All generators are deterministic given a seed, so every experiment in the
//! harness is reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlated;
pub mod drift;
pub mod features;
pub mod queries;
pub mod text;
pub mod update_stream;
pub mod zipf;

pub use correlated::{CorrelatedConfig, CorrelatedGenerator};
pub use drift::{DriftConfig, DriftEvent, DriftStream};
pub use features::{FeatureConfig, FeatureVectorGenerator};
pub use queries::{QueryWorkload, WorkloadConfig};
pub use text::{TextCorpusConfig, TextCorpusGenerator};
pub use update_stream::{UpdateConfig, UpdateStream};
pub use zipf::ZipfSampler;

use ir_types::Dataset;

/// A uniform interface over the three generators, so the experiment harness
/// can be written against "a dataset kind" rather than a concrete generator.
pub trait DatasetGenerator {
    /// Generates the dataset deterministically from the given seed.
    fn generate(&self, seed: u64) -> Dataset;
    /// A short human-readable name ("WSJ-like", "KB-like", "ST").
    fn name(&self) -> &'static str;
}
