//! Weight-drift event streams for subscription fleets.
//!
//! A monitoring deployment of the paper's subscriptions sees a continuous
//! stream of small preference adjustments: a user nudges one weight of
//! their subscribed query, the server answers "did your top-k change?"
//! from the immutable region, and only the occasional large jump forces a
//! recompute. [`DriftStream`] reproduces that shape deterministically:
//!
//! * **Zipf-popular targets** — the subscription hit by each event is
//!   drawn from a [`ZipfSampler`] over the fleet (fleet order is
//!   popularity rank), so a hot head of subscriptions absorbs most of the
//!   traffic, exactly the skew the fleet scheduler must cope with.
//! * **Seeded per-dim deltas** — each event perturbs one of the
//!   subscription's *original* query dimensions by a small signed delta,
//!   with every `large_every`-th event on a subscription taking a large
//!   jump instead (the region-exiting minority).
//! * **Slider-sticky targeting** — small nudges keep perturbing the
//!   subscription's current *focus* dimension (the paper's model: one
//!   slider moves while the others stay); each large jump moves the
//!   focus to a freshly drawn dimension. This is what makes the stream
//!   servable from immutable regions at all: the local check answers
//!   "one deviating dimension, strictly inside its region", so drift
//!   scattered uniformly across dimensions would force a recompute on
//!   nearly every event regardless of how small the deltas are.
//!
//! The generator tracks cumulative weights per subscription and clamps
//! every target weight into `[MIN_WEIGHT, 1.0]`, so a drifted query never
//! loses a dimension and never becomes empty — a drift stream is valid to
//! replay in full against any engine.

use crate::zipf::ZipfSampler;
use ir_types::{DimId, IrError, IrResult, QueryVector};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The smallest weight a drifted dimension may reach. Keeping it strictly
/// positive guarantees `QueryVector::with_weight_shift` never drops the
/// dimension, so replaying a stream can never produce an empty query.
pub const MIN_WEIGHT: f64 = 0.01;

/// Configuration of a drift stream.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Total number of events in the stream.
    pub num_events: usize,
    /// Zipf exponent for the popularity of subscriptions (0 = uniform).
    pub zipf_exponent: f64,
    /// Magnitude bound of an ordinary nudge: deltas are drawn uniformly
    /// from `[-small_delta, small_delta]`.
    pub small_delta: f64,
    /// Magnitude bound of a large jump: deltas are drawn uniformly from
    /// `±[small_delta, large_delta]`.
    pub large_delta: f64,
    /// Every `large_every`-th event *on the same subscription* is a large
    /// jump (0 disables large jumps entirely).
    pub large_every: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            num_events: 1_000,
            zipf_exponent: 1.0,
            small_delta: 0.02,
            large_delta: 0.45,
            large_every: 8,
        }
    }
}

/// One weight-drift event: subscription `sub` shifts dimension `dim` by
/// `delta` (the exact argument to pass to `with_weight_shift`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftEvent {
    /// The targeted subscription id.
    pub sub: u64,
    /// The targeted query dimension.
    pub dim: DimId,
    /// Signed weight shift.
    pub delta: f64,
}

/// A deterministic, replayable sequence of [`DriftEvent`]s over a fleet.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftStream {
    events: Vec<DriftEvent>,
}

impl DriftStream {
    /// Generates a drift stream over `fleet` — `(subscription id, initial
    /// query)` pairs, in decreasing popularity order — from `config` and
    /// `seed`.
    ///
    /// Returns [`IrError::InvalidConfig`] for an empty fleet, a bad Zipf
    /// exponent, non-finite or non-positive delta bounds, or
    /// `large_delta < small_delta`.
    pub fn generate(
        fleet: &[(u64, QueryVector)],
        config: &DriftConfig,
        seed: u64,
    ) -> IrResult<Self> {
        let popularity = ZipfSampler::try_new(fleet.len(), config.zipf_exponent)?;
        if !config.small_delta.is_finite() || config.small_delta <= 0.0 {
            return Err(IrError::InvalidConfig(format!(
                "small_delta must be finite and positive, got {}",
                config.small_delta
            )));
        }
        if !config.large_delta.is_finite() || config.large_delta < config.small_delta {
            return Err(IrError::InvalidConfig(format!(
                "large_delta must be finite and at least small_delta ({}), got {}",
                config.small_delta, config.large_delta
            )));
        }

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Cumulative weights per fleet member: targets are always original
        // query dimensions, so positions stay stable across the stream.
        let mut weights: Vec<Vec<(DimId, f64)>> = fleet
            .iter()
            .map(|(_, q)| q.dims().collect::<Vec<_>>())
            .collect();
        let mut hits: Vec<usize> = vec![0; fleet.len()];
        // The focus slot each member's small nudges stick to; drawn lazily
        // on the member's first event, redrawn at every large jump.
        let mut focus: Vec<Option<usize>> = vec![None; fleet.len()];

        let mut events = Vec::with_capacity(config.num_events);
        for _ in 0..config.num_events {
            let member = popularity.sample(&mut rng);
            hits[member] += 1;
            let dims = &mut weights[member];

            let large = config.large_every > 0 && hits[member] % config.large_every == 0;
            let slot = if large || focus[member].is_none() {
                let slot = rng.gen_range(0..dims.len());
                focus[member] = Some(slot);
                slot
            } else {
                focus[member].expect("initialized above")
            };
            let (dim, current) = dims[slot];

            let magnitude = if large {
                rng.gen_range(config.small_delta..=config.large_delta)
            } else {
                rng.gen_range(0.0..=config.small_delta)
            };
            let raw = if rng.gen_bool(0.5) {
                magnitude
            } else {
                -magnitude
            };
            // Clamp the *target* weight so the dimension survives and the
            // query stays within the unit cube.
            let target = (current + raw).clamp(MIN_WEIGHT, 1.0);
            let delta = target - current;
            dims[slot] = (dim, target);
            events.push(DriftEvent {
                sub: fleet[member].0,
                dim,
                delta,
            });
        }
        Ok(DriftStream { events })
    }

    /// The events, in stream order.
    pub fn events(&self) -> &[DriftEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the stream has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates the events.
    pub fn iter(&self) -> impl Iterator<Item = &DriftEvent> {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<(u64, QueryVector)> {
        (0..n)
            .map(|i| {
                let q = QueryVector::new(
                    (0..4).map(|d| (d as u32 + 1, 0.3 + 0.1 * (i % 4) as f64)),
                    5,
                )
                .unwrap();
                (i as u64, q)
            })
            .collect()
    }

    #[test]
    fn stream_is_deterministic_and_replayable() {
        let fleet = fleet(16);
        let config = DriftConfig {
            num_events: 400,
            ..DriftConfig::default()
        };
        let a = DriftStream::generate(&fleet, &config, 11).unwrap();
        let b = DriftStream::generate(&fleet, &config, 11).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, DriftStream::generate(&fleet, &config, 12).unwrap());
        assert_eq!(a.len(), 400);

        // Replaying the full stream keeps every query valid: dimensions
        // are never dropped and weights stay in [MIN_WEIGHT, 1].
        let mut current: Vec<QueryVector> = fleet.iter().map(|(_, q)| q.clone()).collect();
        for ev in a.iter() {
            let q = &mut current[ev.sub as usize];
            *q = q.with_weight_shift(ev.dim, ev.delta).unwrap();
            assert_eq!(q.qlen(), 4, "drift must never drop a dimension");
            for (_, w) in q.dims() {
                assert!(
                    (MIN_WEIGHT - 1e-12..=1.0 + 1e-12).contains(&w),
                    "weight {w}"
                );
            }
        }
    }

    #[test]
    fn popular_head_absorbs_most_events() {
        let fleet = fleet(32);
        let config = DriftConfig {
            num_events: 2_000,
            zipf_exponent: 1.0,
            ..DriftConfig::default()
        };
        let stream = DriftStream::generate(&fleet, &config, 3).unwrap();
        let head = stream.iter().filter(|ev| ev.sub < 4).count();
        assert!(
            head * 3 > stream.len(),
            "head of 4/32 subs got only {head}/{} events",
            stream.len()
        );
    }

    #[test]
    fn large_jumps_appear_when_enabled() {
        let fleet = fleet(8);
        let config = DriftConfig {
            num_events: 500,
            small_delta: 0.02,
            large_delta: 0.4,
            large_every: 4,
            ..DriftConfig::default()
        };
        let stream = DriftStream::generate(&fleet, &config, 5).unwrap();
        let large = stream
            .iter()
            .filter(|ev| ev.delta.abs() > config.small_delta + 1e-12)
            .count();
        assert!(large > 0, "expected some large jumps");

        let calm = DriftConfig {
            large_every: 0,
            ..config
        };
        let stream = DriftStream::generate(&fleet, &calm, 5).unwrap();
        assert!(stream
            .iter()
            .all(|ev| ev.delta.abs() <= config.small_delta + 1e-12));
    }

    #[test]
    fn bad_configs_are_typed_errors() {
        let fleet = fleet(4);
        let empty: Vec<(u64, QueryVector)> = Vec::new();
        let ok = DriftConfig::default();
        assert!(matches!(
            DriftStream::generate(&empty, &ok, 0),
            Err(IrError::InvalidConfig(_))
        ));
        for bad in [
            DriftConfig {
                zipf_exponent: -1.0,
                ..ok
            },
            DriftConfig {
                small_delta: 0.0,
                ..ok
            },
            DriftConfig {
                small_delta: f64::NAN,
                ..ok
            },
            DriftConfig {
                large_delta: 0.001,
                ..ok
            },
        ] {
            assert!(matches!(
                DriftStream::generate(&fleet, &bad, 0),
                Err(IrError::InvalidConfig(_))
            ));
        }
    }
}
