//! A simple Zipf sampler used by the text-corpus generator.
//!
//! Term popularity in real document collections follows a power law; the
//! sampler draws term ranks with probability proportional to `1 / rank^s`
//! using inverse-CDF lookup over a precomputed table (exact, no rejection).

use ir_types::{IrError, IrResult};
use rand::Rng;

/// Zipf-distributed sampler over ranks `0..n`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `s` (`s = 1.0` is the
    /// classic Zipf law).
    ///
    /// Configuration-driven callers (the drift-stream generator, the fleet
    /// benchmark) should use [`ZipfSampler::try_new`] instead: a bad
    /// config there must surface as a typed diagnostic, not a panic.
    /// This constructor panics if `n == 0` or `s` is negative or not
    /// finite, and is kept for call sites whose inputs are statically
    /// known-good.
    pub fn new(n: usize, s: f64) -> Self {
        match Self::try_new(n, s) {
            Ok(sampler) => sampler,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`ZipfSampler::new`]: a zero rank count or a
    /// negative / non-finite exponent is reported as
    /// [`IrError::InvalidConfig`] so library callers fed from user
    /// configuration can propagate a typed error instead of panicking.
    pub fn try_new(n: usize, s: f64) -> IrResult<Self> {
        if n == 0 {
            return Err(IrError::InvalidConfig(
                "Zipf sampler needs at least one rank (n = 0)".to_string(),
            ));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(IrError::InvalidConfig(format!(
                "Zipf exponent must be finite and non-negative, got {s}"
            )));
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Ok(ZipfSampler { cumulative })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if the sampler has exactly one rank.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws a rank in `0..n` (0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample_from_uniform(rng.gen())
    }

    /// Maps one uniform draw `u ∈ [0, 1)` to a rank by inverse-CDF lookup —
    /// the deterministic core of [`ZipfSampler::sample`], exposed so
    /// callers driving their own seeded generator (the update-stream
    /// generator's [`ir_types::SeededLcg`]) share the exact same table.
    pub fn sample_from_uniform(&self, u: f64) -> usize {
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(pos) => pos,
            Err(pos) => pos.min(self.cumulative.len() - 1),
        }
    }

    /// The probability mass of a rank.
    pub fn probability(&self, rank: usize) -> f64 {
        if rank >= self.cumulative.len() {
            return 0.0;
        }
        let prev = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        self.cumulative[rank] - prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn probabilities_sum_to_one_and_decrease() {
        let z = ZipfSampler::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..100 {
            assert!(z.probability(r) <= z.probability(r - 1) + 1e-15);
        }
        assert_eq!(z.probability(500), 0.0);
        assert_eq!(z.len(), 100);
    }

    #[test]
    fn sampling_respects_the_skew() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut head = 0usize;
        let draws = 20_000;
        for _ in 0..draws {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // The 10 most popular ranks carry ~39% of the mass for s = 1, n = 1000.
        let frac = head as f64 / draws as f64;
        assert!(frac > 0.3 && frac < 0.5, "head fraction {frac}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(4, 0.0);
        for r in 0..4 {
            assert!((z.probability(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn bad_configs_surface_as_typed_errors() {
        for (n, s) in [
            (0usize, 1.0),
            (10, -0.5),
            (10, f64::NAN),
            (10, f64::INFINITY),
        ] {
            match ZipfSampler::try_new(n, s) {
                Err(IrError::InvalidConfig(msg)) => {
                    assert!(!msg.is_empty(), "diagnostic should explain the rejection")
                }
                other => panic!("n={n}, s={s} should be InvalidConfig, got {other:?}"),
            }
        }
        assert!(ZipfSampler::try_new(10, 1.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn infallible_constructor_still_panics_on_zero_ranks() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = ZipfSampler::new(50, 1.2);
        let a: Vec<usize> = {
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
