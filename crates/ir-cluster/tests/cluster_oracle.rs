//! Cluster oracle suite: the merged output of a sharded run must be
//! byte-identical to the single-engine result — at every shard count,
//! partition mode, serving backend, seeded reorder/drop schedule and
//! mid-batch churn plan — with conserved message counters and zero panics.
//!
//! Oracles, per partition mode:
//!
//! * `ByQuery` — every node runs the plain sequential solve, so the report
//!   equals [`IrEngine::query`]'s: regions *and* deterministic stats.
//! * `ByDim` — dimensions are solved from a frozen TA snapshot, the same
//!   primitive `compute_parallel` uses; regions equal the sequential
//!   oracle's and stats equal `compute_parallel(1)`'s (proved
//!   thread-count-invariant by the `parallel_agreement` suite).
//!
//! Seeded like the other property suites so failures reproduce exactly.

use immutable_regions::engine::IrEngine;
use immutable_regions::prelude::*;
use ir_cluster::{
    ChurnPlan, ClusterError, ClusterOutcome, NetworkConfig, PartitionMode, ShardedEngine,
};
use ir_storage::BackendKind;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A small random dataset with mixed sparsity, same idiom as the
/// `immutable-regions` agreement suites.
fn random_dataset(rng: &mut ChaCha8Rng, n: usize, dims: u32) -> Dataset {
    let mut builder = DatasetBuilder::new(dims);
    for _ in 0..n {
        let style: f64 = rng.gen();
        let pairs: Vec<(u32, f64)> = if style < 0.4 {
            vec![(rng.gen_range(0..dims), rng.gen_range(0.05..1.0))]
        } else if style < 0.7 {
            let a = rng.gen_range(0..dims);
            let mut b = rng.gen_range(0..dims);
            while b == a {
                b = rng.gen_range(0..dims);
            }
            vec![(a, rng.gen_range(0.05..1.0)), (b, rng.gen_range(0.05..1.0))]
        } else {
            (0..dims).map(|d| (d, rng.gen_range(0.01..1.0))).collect()
        };
        builder.push_pairs(pairs).unwrap();
    }
    builder.build()
}

fn random_batch(rng: &mut ChaCha8Rng, dims: u32, queries: usize) -> Vec<QueryVector> {
    (0..queries)
        .map(|_| {
            let qlen = rng.gen_range(2..=dims.min(4)) as usize;
            let k = rng.gen_range(1..6);
            let mut chosen = Vec::new();
            while chosen.len() < qlen {
                let d = rng.gen_range(0..dims);
                if !chosen.contains(&d) {
                    chosen.push(d);
                }
            }
            QueryVector::new(chosen.into_iter().map(|d| (d, rng.gen_range(0.2..=1.0))), k).unwrap()
        })
        .collect()
}

/// The backends a shard node can serve a snapshot through in this build.
fn serving_backends() -> Vec<BackendKind> {
    let mut kinds = vec![BackendKind::Mem, BackendKind::File];
    if cfg!(feature = "mmap") {
        kinds.push(BackendKind::Mmap);
    }
    kinds
}

/// Sequential oracle (for regions) and `compute_parallel(1)` oracle (for
/// `ByDim` merged stats), from one in-memory engine.
fn oracles(
    dataset: &Dataset,
    queries: &[QueryVector],
    config: RegionConfig,
) -> (Vec<RegionReport>, Vec<RegionReport>) {
    let engine = IrEngine::builder()
        .dataset_ref(dataset)
        .config(config)
        .build()
        .unwrap();
    let sequential: Vec<RegionReport> = queries.iter().map(|q| engine.query(q).unwrap()).collect();
    let parallel: Vec<RegionReport> = queries
        .iter()
        .map(|q| engine.computation(q).unwrap().compute_parallel(1).unwrap())
        .collect();
    (sequential, parallel)
}

/// Asserts one cluster outcome against the oracles and verifies every
/// conservation law. `context` names the configuration under test.
fn assert_matches_oracle(
    outcome: &ClusterOutcome,
    sequential: &[RegionReport],
    parallel: &[RegionReport],
    partition: PartitionMode,
    context: &str,
) {
    assert_eq!(outcome.reports.len(), sequential.len(), "{context}");
    for (qi, actual) in outcome.reports.iter().enumerate() {
        let regions_oracle = &sequential[qi];
        assert_eq!(
            actual.dims, regions_oracle.dims,
            "{context} query={qi}: merged regions must be byte-identical to the oracle"
        );
        // Deterministic stats: ByQuery reports are the sequential solve's;
        // ByDim merged stats reproduce compute_parallel(1)'s.
        let stats_oracle = match partition {
            PartitionMode::ByQuery => &sequential[qi].stats,
            PartitionMode::ByDim => &parallel[qi].stats,
        };
        assert_eq!(
            actual.stats.evaluated_per_dim, stats_oracle.evaluated_per_dim,
            "{context} query={qi}: per-dimension evaluation counts diverge"
        );
        assert_eq!(
            actual.stats.evaluated_candidates, stats_oracle.evaluated_candidates,
            "{context} query={qi}"
        );
        assert_eq!(
            actual.stats.initial_candidates, stats_oracle.initial_candidates,
            "{context} query={qi}: TA candidate lists diverge"
        );
        assert_eq!(
            actual.stats.phase3_tuples, stats_oracle.phase3_tuples,
            "{context} query={qi}"
        );
        assert_eq!(
            actual.stats.io.logical_reads, stats_oracle.io.logical_reads,
            "{context} query={qi}: logical solve reads diverge"
        );
        assert_eq!(
            actual.stats.topk_io.logical_reads, stats_oracle.topk_io.logical_reads,
            "{context} query={qi}: logical top-k reads diverge"
        );
    }
    let stats = &outcome.stats;
    assert!(
        stats.messages.conserved(0),
        "{context}: unconserved messages {:?}",
        stats.messages
    );
    assert!(
        stats.conservation_violation().is_none(),
        "{context}: {}",
        stats.conservation_violation().unwrap()
    );
}

/// Core requirement: shard counts {1, 2, 4, 8} × both partition modes ×
/// every serving backend, over a reordering network, all merge to the
/// oracle's bytes.
#[test]
fn sharded_engines_agree_with_single_engine_oracle() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC1_05_7E);
    for partition in [PartitionMode::ByDim, PartitionMode::ByQuery] {
        let dims = rng.gen_range(4..7);
        let n = rng.gen_range(50..110);
        let dataset = random_dataset(&mut rng, n, dims);
        let queries = random_batch(&mut rng, dims, 4);
        let config = RegionConfig::default();
        let (sequential, parallel) = oracles(&dataset, &queries, config);

        for shards in [1u32, 2, 4, 8] {
            for backend in serving_backends() {
                let context = format!("partition={partition} shards={shards} backend={backend}");
                let mut cluster = ShardedEngine::builder()
                    .dataset(dataset.clone())
                    .shards(shards)
                    .partition(partition)
                    .backend_kind(backend)
                    .config(config)
                    .network(NetworkConfig::reordering(0xBEEF ^ shards as u64, 5))
                    .build()
                    .unwrap_or_else(|e| panic!("{context}: {e}"));
                let outcome = cluster
                    .run(&queries)
                    .unwrap_or_else(|e| panic!("{context}: {e}"));
                assert_matches_oracle(&outcome, &sequential, &parallel, partition, &context);
                assert_eq!(
                    outcome.stats.per_shard.len(),
                    shards as usize,
                    "{context}: every shard reports traffic"
                );
                let answered: u64 = outcome.stats.units;
                let expected_units: u64 = match partition {
                    PartitionMode::ByQuery => queries.len() as u64,
                    PartitionMode::ByDim => queries.iter().map(|q| q.qlen() as u64).sum(),
                };
                assert_eq!(answered, expected_units, "{context}");
            }
        }
    }
}

/// Delivery order must be invisible: sweeping reorder windows and drop
/// rates (which force retry rounds) never changes a byte of the output.
#[test]
fn reorder_and_drop_schedules_do_not_change_output() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0D15_EA5E);
    let dims = 5;
    let dataset = random_dataset(&mut rng, 80, dims);
    let queries = random_batch(&mut rng, dims, 3);
    let config = RegionConfig::default();
    let (sequential, parallel) = oracles(&dataset, &queries, config);

    let mut saw_drops = false;
    let mut saw_retries = false;
    for partition in [PartitionMode::ByDim, PartitionMode::ByQuery] {
        for (seed, window, drop_percent) in [
            (1u64, 0u64, 0u8),
            (2, 3, 0),
            (3, 9, 0),
            (4, 5, 25),
            (5, 9, 60),
        ] {
            let context =
                format!("partition={partition} seed={seed} window={window} drop={drop_percent}%");
            let mut cluster = ShardedEngine::builder()
                .dataset(dataset.clone())
                .shards(4)
                .partition(partition)
                .config(config)
                .network(NetworkConfig::lossy(seed, window, drop_percent))
                .build()
                .unwrap();
            let outcome = cluster
                .run(&queries)
                .unwrap_or_else(|e| panic!("{context}: {e}"));
            assert_matches_oracle(&outcome, &sequential, &parallel, partition, &context);
            saw_drops |= outcome.stats.messages.dropped > 0;
            saw_retries |= outcome.stats.retry_rounds > 0;
        }
    }
    assert!(saw_drops, "a 60% lottery must actually drop messages");
    assert!(saw_retries, "dropped requests must force retry rounds");
}

/// Equal seeds replay equal runs: reports, message counters, per-shard
/// traffic — everything.
#[test]
fn equal_seeds_replay_byte_identical_runs() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_5EED);
    let dataset = random_dataset(&mut rng, 70, 4);
    let queries = random_batch(&mut rng, 4, 3);
    let run = |dataset: &Dataset| {
        let mut cluster = ShardedEngine::builder()
            .dataset(dataset.clone())
            .shards(4)
            .partition(PartitionMode::ByDim)
            .network(NetworkConfig::lossy(42, 6, 30))
            .build()
            .unwrap();
        cluster.run(&queries).unwrap()
    };
    let a = run(&dataset);
    let b = run(&dataset);
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.dims, rb.dims);
        assert_eq!(ra.stats.evaluated_per_dim, rb.stats.evaluated_per_dim);
    }
    assert_eq!(a.stats.messages, b.stats.messages);
    assert_eq!(a.stats.retry_rounds, b.stats.retry_rounds);
    assert_eq!(a.stats.resent_requests, b.stats.resent_requests);
    assert_eq!(a.stats.per_shard, b.stats.per_shard);
}

/// Mid-batch churn: a shard dies while the batch is in flight, its units
/// are redistributed (to survivors, or to a snapshot-respawned
/// replacement), and the merged output still equals the oracle's bytes.
#[test]
fn churn_mid_batch_redistributes_and_matches_oracle() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xDEAD_0001);
    let dims = 5;
    let dataset = random_dataset(&mut rng, 90, dims);
    let queries = random_batch(&mut rng, dims, 4);
    let config = RegionConfig::default();
    let (sequential, parallel) = oracles(&dataset, &queries, config);

    let mut saw_redistribution = false;
    for partition in [PartitionMode::ByDim, PartitionMode::ByQuery] {
        for respawn in [false, true] {
            // Fire early (after the map broadcasts deliver, before most
            // solves) so the dead shard still has unanswered units.
            for after in [4u64, 6, 9] {
                let plan = if respawn {
                    ChurnPlan::kill_and_respawn(1, after)
                } else {
                    ChurnPlan::kill(1, after)
                };
                let context = format!("partition={partition} respawn={respawn} after={after}");
                let mut cluster = ShardedEngine::builder()
                    .dataset(dataset.clone())
                    .shards(4)
                    .partition(partition)
                    .config(config)
                    .network(NetworkConfig::reordering(7, 4))
                    .churn(plan)
                    .build()
                    .unwrap();
                let outcome = cluster
                    .run(&queries)
                    .unwrap_or_else(|e| panic!("{context}: {e}"));
                assert_matches_oracle(&outcome, &sequential, &parallel, partition, &context);
                let churn = outcome
                    .stats
                    .churn
                    .unwrap_or_else(|| panic!("{context}: the churn plan must fire"));
                assert_eq!(churn.killed_shard, 1, "{context}");
                assert_eq!(churn.respawned, respawn, "{context}");
                saw_redistribution |= churn.redistributed_units > 0;
                // The killed slot retires one traffic entry; a respawned
                // replacement adds a live one for the same slot.
                let slot_entries = outcome
                    .stats
                    .per_shard
                    .iter()
                    .filter(|t| t.shard == 1)
                    .count();
                assert_eq!(slot_entries, if respawn { 2 } else { 1 }, "{context}");
                assert_eq!(
                    cluster.live_shards(),
                    if respawn { 4 } else { 3 },
                    "{context}"
                );
            }
        }
    }
    assert!(
        saw_redistribution,
        "at least one churn schedule must catch unanswered units"
    );
}

/// Churn composed with a lossy, reordering network — the hardest schedule
/// this suite runs — still merges to the oracle's bytes.
#[test]
fn churn_under_drops_and_reordering_matches_oracle() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xDEAD_0002);
    let dims = 4;
    let dataset = random_dataset(&mut rng, 60, dims);
    let queries = random_batch(&mut rng, dims, 3);
    let config = RegionConfig::default();
    let (sequential, parallel) = oracles(&dataset, &queries, config);

    for seed in [11u64, 12, 13] {
        let context = format!("seed={seed}");
        let mut cluster = ShardedEngine::builder()
            .dataset(dataset.clone())
            .shards(4)
            .partition(PartitionMode::ByDim)
            .config(config)
            .network(NetworkConfig::lossy(seed, 6, 35))
            .churn(ChurnPlan::kill_and_respawn(2, 5))
            .build()
            .unwrap();
        let outcome = cluster
            .run(&queries)
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        assert_matches_oracle(
            &outcome,
            &sequential,
            &parallel,
            PartitionMode::ByDim,
            &context,
        );
        assert!(outcome.stats.churn.is_some(), "{context}");
    }
}

/// Misconfigured clusters fail at build time with typed errors, never
/// panics.
#[test]
fn builder_rejects_invalid_configurations() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBAD_C0F6);
    let dataset = random_dataset(&mut rng, 30, 3);

    let err = ShardedEngine::builder()
        .shards(0)
        .build()
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, ClusterError::Config(_)), "{err}");

    let err = ShardedEngine::builder().build().map(|_| ()).unwrap_err();
    assert!(matches!(err, ClusterError::Config(_)), "no source: {err}");

    let err = ShardedEngine::builder()
        .dataset(dataset.clone())
        .shards(2)
        .churn(ChurnPlan::kill(5, 10))
        .build()
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, ClusterError::Config(_)), "bad kill: {err}");

    let err = ShardedEngine::builder()
        .dataset(dataset)
        .shards(1)
        .churn(ChurnPlan::kill(0, 10))
        .build()
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(err, ClusterError::Config(_)),
        "no survivors: {err}"
    );
}

/// A cluster can serve a caller-staged snapshot directory directly, and
/// the topology stamp reflects the build.
#[test]
fn external_snapshot_and_topology_stamp() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7090_1061);
    let dataset = random_dataset(&mut rng, 50, 4);
    let queries = random_batch(&mut rng, 4, 2);
    let engine = IrEngine::builder().dataset_ref(&dataset).build().unwrap();
    let dir = tempfile::tempdir().unwrap();
    let snap = dir.path().join("snap");
    engine.save_snapshot(&snap).unwrap();
    let oracle: Vec<RegionReport> = queries.iter().map(|q| engine.query(q).unwrap()).collect();

    let mut cluster = ShardedEngine::builder()
        .snapshot(&snap)
        .shards(2)
        .partition(PartitionMode::ByQuery)
        .network(NetworkConfig::reordering(3, 2))
        .build()
        .unwrap();
    let topology = cluster.topology();
    assert_eq!(topology.shards, 2);
    assert_eq!(topology.partition, PartitionMode::ByQuery);
    assert_eq!(topology.seed, 3);
    assert!(cluster.snapshot_peek().tuple_count > 0);

    let outcome = cluster.run(&queries).unwrap();
    for (actual, expected) in outcome.reports.iter().zip(&oracle) {
        assert_eq!(actual.dims, expected.dims);
    }
    // Shard health counters surfaced through the engine's health snapshot.
    let health = cluster.shard_health();
    assert_eq!(health.len(), 2);
    assert!(health.iter().any(|(_, h)| h.shard_solves > 0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12).with_seed(0xC105_7E57))]

    /// Permutation invariance, property-tested: any delivery order (seeded
    /// reorder window), any shard count in {1, 2, 4, 8}, any drop rate up
    /// to 40% — the merge equals the single-engine oracle.
    #[test]
    fn merge_is_permutation_invariant(
        seed in 0u64..u64::MAX,
        shard_pow in 0u32..4,
        window in 0u64..10,
        drop_percent in 0u8..40,
        by_query in 0u8..2,
    ) {
        let shards = 1u32 << shard_pow;
        let mut rng = ChaCha8Rng::seed_from_u64(0x9E37_79B9 ^ seed);
        let dims = 4;
        let dataset = random_dataset(&mut rng, 40, dims);
        let queries = random_batch(&mut rng, dims, 2);
        let config = RegionConfig::default();
        let partition = if by_query == 1 { PartitionMode::ByQuery } else { PartitionMode::ByDim };
        let (sequential, parallel) = oracles(&dataset, &queries, config);

        let mut cluster = ShardedEngine::builder()
            .dataset(dataset)
            .shards(shards)
            .partition(partition)
            .config(config)
            .network(NetworkConfig::lossy(seed, window, drop_percent))
            .build()
            .unwrap();
        let outcome = cluster.run(&queries).unwrap();
        let context = format!("seed={seed} shards={shards} window={window} drop={drop_percent}");
        assert_matches_oracle(&outcome, &sequential, &parallel, partition, &context);
    }
}
