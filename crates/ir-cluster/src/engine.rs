//! [`ShardedEngine`]: the coordinator and its deterministic merge.
//!
//! A sharded engine stages one snapshot, brings up N [`ShardNode`]s over
//! it (each with its own page store), and serves query batches by fanning
//! work units out as [`SolveDim`] messages through the [`SimNetwork`] and
//! merging the [`PartialRegion`]s that come back.
//!
//! # The determinism contract
//!
//! The merged output is **byte-identical to the single-engine oracle** at
//! every shard count, delivery order and churn schedule:
//!
//! * under [`PartitionMode::ByQuery`] each node runs the plain sequential
//!   solve, so every report equals `IrEngine::query`'s — regions *and*
//!   deterministic stats;
//! * under [`PartitionMode::ByDim`] each dimension is solved from a frozen
//!   TA snapshot (`ir_core::parallel::solve_dim_from_snapshot`) — the same
//!   primitive `compute_parallel` fans out over threads, so the regions
//!   equal the sequential oracle's and the stats equal
//!   `compute_parallel`'s, assembled in the same fixed order.
//!
//! The merge itself is fixed by **(query id, dimension index)** — a
//! `BTreeMap` keyed by that pair — never by completion or delivery order,
//! which is what makes seeded reordering, drops-with-retry and mid-batch
//! churn all invisible in the output.
//!
//! # Liveness
//!
//! Dropped messages surface as unanswered units when the event schedule
//! drains; the coordinator re-requests them, escalating the transport to
//! reliable delivery after [`LOSSY_RETRY_ROUNDS`] rounds, so every run
//! terminates with either a complete answer or a typed error — and the
//! message counters always conserve.

use crate::churn::{ChurnPlan, ChurnReport};
use crate::message::{
    Address, MergeRequest, Message, PartialPayload, PartialRegion, ShardId, ShardMap, SolveDim,
};
use crate::network::{NetworkConfig, NetworkStats, SimNetwork};
use crate::node::ShardNode;
use immutable_regions::engine::{
    ClusterTopology, EngineError, EngineHealthSnapshot, IrEngine, PartitionMode,
};
use ir_core::{ComputationStats, RegionConfig, RegionReport};
use ir_storage::{snapshot, BackendKind, IoStatsSnapshot, SnapshotPeek};
use ir_types::{Dataset, IrError, QueryVector};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Retry rounds served over the lossy transport before the coordinator
/// escalates to reliable delivery.
pub const LOSSY_RETRY_ROUNDS: u64 = 3;

/// Hard cap on retry rounds; exceeding it is a typed
/// [`ClusterError::Undeliverable`] rather than a hang.
pub const MAX_RETRY_ROUNDS: u64 = 8;

/// Errors of the cluster layer.
#[derive(Debug)]
pub enum ClusterError {
    /// The builder was misconfigured (zero shards, churn plan naming a
    /// shard that does not exist, killing the only shard with no respawn).
    Config(String),
    /// Building or snapshotting the staging engine failed.
    Engine(EngineError),
    /// Validating the staged snapshot failed before any node came up.
    Snapshot(IrError),
    /// One shard node failed to come up from the snapshot.
    BringUp {
        /// The shard slot.
        shard: u32,
        /// The underlying engine error.
        source: EngineError,
    },
    /// A shard node failed to solve a work unit.
    Solve {
        /// The shard slot.
        shard: u32,
        /// The underlying engine error.
        source: EngineError,
    },
    /// Work units stayed unanswered past [`MAX_RETRY_ROUNDS`].
    Undeliverable {
        /// Units still missing.
        pending_units: u64,
        /// Retry rounds spent.
        rounds: u64,
    },
    /// A message violated the protocol (unknown unit, query out of range).
    Protocol(String),
    /// A cross-node consistency check failed (diverging TA snapshots,
    /// unconserved counters) — the "this should never happen" class.
    Inconsistent(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Config(msg) => write!(f, "invalid cluster configuration: {msg}"),
            ClusterError::Engine(err) => write!(f, "staging engine: {err}"),
            ClusterError::Snapshot(err) => write!(f, "staged snapshot rejected: {err}"),
            ClusterError::BringUp { shard, source } => {
                write!(f, "bringing up shard-{shard}: {source}")
            }
            ClusterError::Solve { shard, source } => write!(f, "shard-{shard} solve: {source}"),
            ClusterError::Undeliverable {
                pending_units,
                rounds,
            } => write!(
                f,
                "{pending_units} work units undelivered after {rounds} retry rounds"
            ),
            ClusterError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClusterError::Inconsistent(msg) => write!(f, "consistency check failed: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Engine(err)
            | ClusterError::BringUp { source: err, .. }
            | ClusterError::Solve { source: err, .. } => Some(err),
            ClusterError::Snapshot(err) => Some(err),
            _ => None,
        }
    }
}

impl From<EngineError> for ClusterError {
    fn from(err: EngineError) -> Self {
        ClusterError::Engine(err)
    }
}

/// Result alias of the cluster layer.
pub type ClusterResult<T> = Result<T, ClusterError>;

/// Where the shared snapshot lives.
enum SnapshotHome {
    /// Staged by the builder into a scratch directory (kept alive by the
    /// guard — nodes respawn from it for as long as the engine lives).
    Staged(tempfile::TempDir),
    /// A caller-provided snapshot directory.
    External(PathBuf),
}

impl SnapshotHome {
    fn path(&self) -> &std::path::Path {
        match self {
            SnapshotHome::Staged(dir) => dir.path(),
            SnapshotHome::External(dir) => dir.as_path(),
        }
    }
}

/// Builder for [`ShardedEngine`].
#[must_use = "a sharded-engine builder does nothing until `build` is called"]
pub struct ShardedEngineBuilder {
    dataset: Option<Dataset>,
    snapshot: Option<PathBuf>,
    shards: u32,
    partition: PartitionMode,
    backend: BackendKind,
    config: RegionConfig,
    network: NetworkConfig,
    churn: Option<ChurnPlan>,
}

impl Default for ShardedEngineBuilder {
    fn default() -> Self {
        ShardedEngineBuilder {
            dataset: None,
            snapshot: None,
            shards: 1,
            partition: PartitionMode::ByDim,
            backend: BackendKind::Mem,
            config: RegionConfig::default(),
            network: NetworkConfig::default(),
            churn: None,
        }
    }
}

impl ShardedEngineBuilder {
    /// Stage a snapshot from this dataset (built once, in memory, then
    /// saved; every node opens the saved snapshot).
    pub fn dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Serve an existing snapshot directory instead of staging one.
    pub fn snapshot(mut self, dir: impl Into<PathBuf>) -> Self {
        self.snapshot = Some(dir.into());
        self
    }

    /// Number of shard nodes (≥ 1).
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// How work is partitioned across nodes.
    pub fn partition(mut self, partition: PartitionMode) -> Self {
        self.partition = partition;
        self
    }

    /// The page-store backend every node serves the snapshot through.
    pub fn backend_kind(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// The region configuration every node solves with.
    pub fn config(mut self, config: RegionConfig) -> Self {
        self.config = config;
        self
    }

    /// The simulated network (seeded delay/reordering/drop).
    pub fn network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// A churn schedule: kill a shard mid-batch and redistribute.
    pub fn churn(mut self, plan: ChurnPlan) -> Self {
        self.churn = Some(plan);
        self
    }

    /// Stages the snapshot (if a dataset was given), validates it, and
    /// brings up every shard node over it.
    pub fn build(self) -> ClusterResult<ShardedEngine> {
        if self.shards == 0 {
            return Err(ClusterError::Config(
                "a cluster needs at least one shard".to_string(),
            ));
        }
        if let Some(plan) = self.churn {
            if plan.kill_shard >= self.shards {
                return Err(ClusterError::Config(format!(
                    "churn plan kills shard {} but the cluster has {}",
                    plan.kill_shard, self.shards
                )));
            }
            if !plan.respawn && self.shards == 1 {
                return Err(ClusterError::Config(
                    "killing the only shard with no respawn leaves no survivors".to_string(),
                ));
            }
        }
        let home = match (self.dataset, self.snapshot) {
            (Some(_), Some(_)) => {
                return Err(ClusterError::Config(
                    "give a dataset or a snapshot directory, not both".to_string(),
                ))
            }
            (None, None) => {
                return Err(ClusterError::Config(
                    "a cluster needs a dataset or a snapshot directory".to_string(),
                ))
            }
            (None, Some(dir)) => SnapshotHome::External(dir),
            (Some(dataset), None) => {
                // Stage once: build in memory, save, and from here on every
                // node (initial or respawned) serves the same bytes.
                let staging = IrEngine::builder().dataset(dataset).build()?;
                let dir =
                    tempfile::tempdir().map_err(|e| ClusterError::Snapshot(IrError::Io(e)))?;
                staging.save_snapshot(dir.path())?;
                SnapshotHome::Staged(dir)
            }
        };
        // One preflight before N bring-ups: a bad snapshot fails here with
        // one typed error instead of once per node.
        let peek = snapshot::peek(home.path()).map_err(ClusterError::Snapshot)?;
        let nodes = (0..self.shards)
            .map(|slot| {
                ShardNode::bring_up(ShardId(slot), home.path(), self.backend, self.config).map(Some)
            })
            .collect::<ClusterResult<Vec<_>>>()?;
        Ok(ShardedEngine {
            nodes,
            partition: self.partition,
            backend: self.backend,
            config: self.config,
            network_config: self.network,
            churn: self.churn,
            home,
            peek,
            map_version: 0,
        })
    }
}

/// One work unit: a whole query ([`PartitionMode::ByQuery`]) or one
/// dimension of one query ([`PartitionMode::ByDim`]).
#[derive(Clone, Copy, Debug)]
struct Unit {
    query: usize,
    /// Position of the dimension within the query (`None` = whole query).
    dim_index: Option<usize>,
    /// The global dimension id driving `ByDim` list-sharded ownership.
    dim_id: u32,
}

/// Per-shard traffic totals of one [`ShardedEngine::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardTraffic {
    /// The shard slot.
    pub shard: u32,
    /// `false` for a node the churn schedule killed mid-run.
    pub alive: bool,
    /// [`SolveDim`] requests the node received.
    pub requests_received: u64,
    /// Work units the node solved (retries re-solve, so this can exceed
    /// the units it uniquely answered).
    pub solves: u64,
    /// [`PartialRegion`] messages the node sent.
    pub partials_sent: u64,
    /// Logical page reads the node's store served.
    pub logical_reads: u64,
    /// Physical page reads the node's store served.
    pub physical_reads: u64,
}

/// Everything one [`ShardedEngine::run`] did besides the reports.
#[derive(Clone, Debug, Default)]
pub struct ClusterRunStats {
    /// Work units the batch decomposed into.
    pub units: u64,
    /// Message-conservation counters of the simulated network.
    pub messages: NetworkStats,
    /// Partials that arrived for already-answered units.
    pub duplicate_partials: u64,
    /// Retry rounds the coordinator ran after drains with missing units.
    pub retry_rounds: u64,
    /// Requests re-sent by those rounds (and by churn redistribution).
    pub resent_requests: u64,
    /// What churn did, if the schedule fired.
    pub churn: Option<ChurnReport>,
    /// Per-shard traffic, shards ascending; a killed slot contributes a
    /// retired (`alive: false`) entry before its replacement's, so respawn
    /// runs list the slot twice.
    pub per_shard: Vec<ShardTraffic>,
}

impl ClusterRunStats {
    /// Verifies the conservation laws: every sent message delivered,
    /// dropped or discarded; every node's solves equal its partials.
    /// Returns the first violated law.
    pub fn conservation_violation(&self) -> Option<String> {
        if !self.messages.conserved(0) {
            return Some(format!(
                "messages not conserved: {:?} (nothing should remain in flight)",
                self.messages
            ));
        }
        for traffic in &self.per_shard {
            if traffic.solves != traffic.partials_sent {
                return Some(format!(
                    "shard-{} solved {} units but sent {} partials",
                    traffic.shard, traffic.solves, traffic.partials_sent
                ));
            }
        }
        None
    }
}

/// The finished batch: merged reports plus the run's bookkeeping.
#[derive(Clone, Debug)]
pub struct ClusterOutcome {
    /// One report per input query, in input order — byte-identical to the
    /// single-engine oracle's (see the [module docs](self)).
    pub reports: Vec<RegionReport>,
    /// Counters and conservation facts.
    pub stats: ClusterRunStats,
}

/// Mutable bookkeeping of one run (kept off `ShardedEngine` so borrows of
/// the nodes and the network stay disentangled).
struct RunState {
    units: Vec<Unit>,
    owners: Vec<ShardId>,
    answered: Vec<bool>,
    /// Arrived partials keyed by `(query, dim position)` — the fixed merge
    /// order. `ByQuery` payloads key at dim position 0.
    partials: BTreeMap<(usize, usize), PartialPayload>,
    units_per_query: Vec<usize>,
    answers_per_query: Vec<usize>,
    merge_sent: Vec<bool>,
    reports: Vec<Option<RegionReport>>,
    requests_received: Vec<u64>,
    duplicate_partials: u64,
    resent_requests: u64,
    retired: Vec<ShardTraffic>,
}

impl RunState {
    fn pending_units(&self) -> Vec<usize> {
        (0..self.units.len())
            .filter(|&u| !self.answered[u])
            .collect()
    }
}

/// A sharded serving engine over N snapshot-backed nodes and a simulated
/// network. See the [module docs](self) for the determinism contract.
pub struct ShardedEngine {
    nodes: Vec<Option<ShardNode>>,
    partition: PartitionMode,
    backend: BackendKind,
    config: RegionConfig,
    network_config: NetworkConfig,
    churn: Option<ChurnPlan>,
    home: SnapshotHome,
    peek: SnapshotPeek,
    map_version: u64,
}

impl ShardedEngine {
    /// Starts building a sharded engine.
    pub fn builder() -> ShardedEngineBuilder {
        ShardedEngineBuilder::default()
    }

    /// Shard slots (dead ones included).
    pub fn shards(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Live shard nodes.
    pub fn live_shards(&self) -> u32 {
        self.nodes.iter().flatten().count() as u32
    }

    /// The partition mode.
    pub fn partition(&self) -> PartitionMode {
        self.partition
    }

    /// The backend every node serves through.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend
    }

    /// The topology stamp for policies and `BENCH_*.json` metadata.
    pub fn topology(&self) -> ClusterTopology {
        ClusterTopology {
            shards: self.shards(),
            partition: self.partition,
            seed: self.network_config.seed,
        }
    }

    /// Layout facts of the staged snapshot (validated at build).
    pub fn snapshot_peek(&self) -> SnapshotPeek {
        self.peek
    }

    /// Health counters of every live node, shards ascending.
    pub fn shard_health(&self) -> Vec<(u32, EngineHealthSnapshot)> {
        self.nodes
            .iter()
            .flatten()
            .map(|node| (node.id().0, node.engine().health()))
            .collect()
    }

    /// Serves a batch: fans units out over the simulated network, merges
    /// the partials in (query, dim) order, retries losses, survives churn.
    pub fn run(&mut self, queries: &[QueryVector]) -> ClusterResult<ClusterOutcome> {
        let mut network = SimNetwork::new(self.network_config);
        let mut state = self.fan_out(queries, &mut network)?;
        let mut churn_pending = self.churn;
        let mut churn_report: Option<ChurnReport> = None;
        let mut deliveries = 0u64;
        let mut retry_rounds = 0u64;

        loop {
            while let Some(event) = network.deliver_next() {
                self.dispatch(event.payload, queries, &mut state, &mut network)?;
                deliveries += 1;
                if let Some(plan) = churn_pending {
                    if deliveries >= plan.after_deliveries {
                        churn_pending = None;
                        churn_report =
                            Some(self.fire_churn(plan, deliveries, &mut state, &mut network)?);
                    }
                }
            }
            let pending = state.pending_units();
            if pending.is_empty() {
                break;
            }
            retry_rounds += 1;
            if retry_rounds > MAX_RETRY_ROUNDS {
                return Err(ClusterError::Undeliverable {
                    pending_units: pending.len() as u64,
                    rounds: retry_rounds - 1,
                });
            }
            if retry_rounds >= LOSSY_RETRY_ROUNDS {
                network.escalate_reliable();
            }
            for unit in pending {
                self.send_solve(unit, &state, &mut network);
                state.resent_requests += 1;
            }
        }

        self.finish(state, network, retry_rounds, churn_report)
    }

    /// Builds the unit list and initial assignment, broadcasts the shard
    /// map and sends every solve request.
    fn fan_out(
        &mut self,
        queries: &[QueryVector],
        network: &mut SimNetwork,
    ) -> ClusterResult<RunState> {
        for node in self.nodes.iter_mut().flatten() {
            node.reset_batch();
        }
        let live: Vec<ShardId> = self.nodes.iter().flatten().map(|node| node.id()).collect();
        if live.is_empty() {
            return Err(ClusterError::Config(
                "every shard of this cluster is dead".to_string(),
            ));
        }
        let mut units = Vec::new();
        let mut units_per_query = vec![0usize; queries.len()];
        for (qi, query) in queries.iter().enumerate() {
            match self.partition {
                PartitionMode::ByQuery => {
                    units.push(Unit {
                        query: qi,
                        dim_index: None,
                        dim_id: 0,
                    });
                    units_per_query[qi] = 1;
                }
                PartitionMode::ByDim => {
                    for (pos, (dim, _)) in query.dims().enumerate() {
                        units.push(Unit {
                            query: qi,
                            dim_index: Some(pos),
                            dim_id: dim.0,
                        });
                    }
                    units_per_query[qi] = query.qlen();
                }
            }
        }
        let owners: Vec<ShardId> = units
            .iter()
            .enumerate()
            .map(|(u, unit)| match self.partition {
                // List sharding: the node owning inverted list `d` solves
                // every query dimension over `d`.
                PartitionMode::ByDim => live[unit.dim_id as usize % live.len()],
                PartitionMode::ByQuery => live[u % live.len()],
            })
            .collect();
        let state = RunState {
            answered: vec![false; units.len()],
            partials: BTreeMap::new(),
            answers_per_query: vec![0; queries.len()],
            merge_sent: vec![false; queries.len()],
            reports: vec![None; queries.len()],
            requests_received: vec![0; self.nodes.len()],
            duplicate_partials: 0,
            resent_requests: 0,
            retired: Vec::new(),
            units,
            owners,
            units_per_query,
        };
        self.broadcast_map(&state, network);
        for unit in 0..state.units.len() {
            self.send_solve(unit, &state, network);
        }
        Ok(state)
    }

    /// Broadcasts the current assignment to every live node.
    fn broadcast_map(&mut self, state: &RunState, network: &mut SimNetwork) {
        self.map_version += 1;
        let map = ShardMap {
            version: self.map_version,
            shards: self.shards(),
            partition: self.partition,
            owners: state.owners.clone(),
        };
        for node in self.nodes.iter().flatten() {
            network.send(
                Address::Coordinator,
                Address::Shard(node.id()),
                Message::ShardMap(map.clone()),
            );
        }
    }

    /// Sends the solve request for one unit to its current owner.
    fn send_solve(&self, unit: usize, state: &RunState, network: &mut SimNetwork) {
        let u = state.units[unit];
        network.send(
            Address::Coordinator,
            Address::Shard(state.owners[unit]),
            Message::SolveDim(SolveDim {
                unit,
                query: u.query,
                dim_index: u.dim_index,
                map_version: self.map_version,
            }),
        );
    }

    /// Handles one delivered event.
    fn dispatch(
        &mut self,
        envelope: crate::message::MessageEnvelope,
        queries: &[QueryVector],
        state: &mut RunState,
        network: &mut SimNetwork,
    ) -> ClusterResult<()> {
        match (envelope.to, envelope.message) {
            (Address::Shard(id), Message::ShardMap(map)) => {
                if let Some(node) = self.node_mut(id) {
                    node.install_map(map);
                }
            }
            (Address::Shard(id), Message::SolveDim(request)) => {
                state.requests_received[id.0 as usize] += 1;
                let Some(node) = self.node_mut(id) else {
                    // The owner died after this request was scheduled; the
                    // retry loop re-homes the unit.
                    return Ok(());
                };
                let partial = node.solve(&request, queries)?;
                network.send(
                    Address::Shard(id),
                    Address::Coordinator,
                    Message::PartialRegion(Box::new(partial)),
                );
            }
            (Address::Coordinator, Message::PartialRegion(partial)) => {
                self.accept_partial(*partial, state, network)?;
            }
            (Address::Coordinator, Message::Merge(MergeRequest { query })) => {
                if state.reports[query].is_none() {
                    state.reports[query] = Some(self.merge_query(query, state)?);
                }
            }
            (to, message) => {
                return Err(ClusterError::Protocol(format!(
                    "{} message addressed to {to}",
                    message.kind()
                )))
            }
        }
        Ok(())
    }

    /// Records an arrived partial; once a query is complete, schedules its
    /// merge as an event of its own.
    fn accept_partial(
        &mut self,
        partial: PartialRegion,
        state: &mut RunState,
        network: &mut SimNetwork,
    ) -> ClusterResult<()> {
        if partial.unit >= state.units.len() {
            return Err(ClusterError::Protocol(format!(
                "partial for unknown unit {} (batch has {})",
                partial.unit,
                state.units.len()
            )));
        }
        if state.answered[partial.unit] {
            // A retry raced the original answer; identical by construction,
            // so counting it is all that is left to do.
            state.duplicate_partials += 1;
            return Ok(());
        }
        state.answered[partial.unit] = true;
        let unit = state.units[partial.unit];
        let dim_pos = unit.dim_index.unwrap_or(0);
        state
            .partials
            .insert((unit.query, dim_pos), partial.payload);
        state.answers_per_query[unit.query] += 1;
        if state.answers_per_query[unit.query] == state.units_per_query[unit.query]
            && !state.merge_sent[unit.query]
        {
            state.merge_sent[unit.query] = true;
            network.send(
                Address::Coordinator,
                Address::Coordinator,
                Message::Merge(MergeRequest { query: unit.query }),
            );
        }
        Ok(())
    }

    /// Merges one query's partials in fixed (query, dim position) order.
    fn merge_query(&self, query: usize, state: &RunState) -> ClusterResult<RegionReport> {
        let parts: Vec<(&(usize, usize), &PartialPayload)> = state
            .partials
            .range((query, 0)..=(query, usize::MAX))
            .collect();
        match self.partition {
            PartitionMode::ByQuery => match parts.as_slice() {
                [(_, PartialPayload::Query { report })] => Ok(report.as_ref().clone()),
                other => Err(ClusterError::Inconsistent(format!(
                    "query {query} should have exactly one whole-query partial, got {}",
                    other.len()
                ))),
            },
            PartitionMode::ByDim => {
                let mut dims = Vec::with_capacity(parts.len());
                let mut evaluated_per_dim = Vec::with_capacity(parts.len());
                let mut evaluated_total = 0u64;
                let mut phase3_total = 0u64;
                let mut footprint = 0usize;
                let mut io = IoStatsSnapshot::default();
                let mut first_ta: Option<(usize, IoStatsSnapshot)> = None;
                for (key, payload) in parts {
                    let PartialPayload::Dim(part) = payload else {
                        return Err(ClusterError::Inconsistent(format!(
                            "query {query} mixes whole-query and per-dim partials"
                        )));
                    };
                    if key.1 != part.dim_index {
                        return Err(ClusterError::Inconsistent(format!(
                            "partial keyed at dim {} carries dim {}",
                            key.1, part.dim_index
                        )));
                    }
                    // Every node ran TA over the same snapshot bytes; their
                    // candidate lists must agree or the shards have
                    // diverged.
                    match &first_ta {
                        None => first_ta = Some((part.initial_candidates, part.topk_io)),
                        Some((expected, _)) if *expected != part.initial_candidates => {
                            return Err(ClusterError::Inconsistent(format!(
                                "query {query}: shards disagree on the TA candidate list \
                                 ({expected} vs {})",
                                part.initial_candidates
                            )));
                        }
                        Some(_) => {}
                    }
                    evaluated_per_dim.push(part.evaluated);
                    evaluated_total += part.evaluated;
                    phase3_total += part.phase3_tuples;
                    footprint = footprint.max(part.footprint_bytes);
                    io = io.plus(&part.io);
                    dims.push(part.regions.clone());
                }
                let (initial_candidates, topk_io) = first_ta.ok_or_else(|| {
                    ClusterError::Inconsistent(format!("query {query} merged with no partials"))
                })?;
                Ok(RegionReport {
                    dims,
                    stats: ComputationStats {
                        evaluated_candidates: evaluated_total,
                        evaluated_per_dim,
                        phase3_tuples: phase3_total,
                        initial_candidates,
                        io,
                        topk_io,
                        // Virtual time only — the simulation never consults
                        // a wall clock.
                        cpu_time: Duration::ZERO,
                        memory_footprint_bytes: footprint,
                    },
                })
            }
        }
    }

    /// Kills the planned shard: retires its node, discards its in-flight
    /// traffic, re-homes its unanswered units (to a snapshot-respawned
    /// replacement or across survivors) and re-broadcasts the map.
    fn fire_churn(
        &mut self,
        plan: ChurnPlan,
        fired_at: u64,
        state: &mut RunState,
        network: &mut SimNetwork,
    ) -> ClusterResult<ChurnReport> {
        let slot = plan.kill_shard as usize;
        let Some(node) = self.nodes[slot].take() else {
            return Err(ClusterError::Config(format!(
                "churn plan kills shard {} twice",
                plan.kill_shard
            )));
        };
        state
            .retired
            .push(traffic_of(&node, false, state.requests_received[slot]));
        drop(node);
        let discarded = network.discard_involving(ShardId(plan.kill_shard));

        if plan.respawn {
            // Snapshot-based recovery: the replacement opens the same
            // snapshot the dead node did, trailer-only, and inherits its
            // slot (requests_received restarts with it).
            state.requests_received[slot] = 0;
            self.nodes[slot] = Some(ShardNode::bring_up(
                ShardId(plan.kill_shard),
                self.home.path(),
                self.backend,
                self.config,
            )?);
        }

        let survivors: Vec<ShardId> = self.nodes.iter().flatten().map(|node| node.id()).collect();
        debug_assert!(!survivors.is_empty(), "builder forbids zero survivors");
        let dead = ShardId(plan.kill_shard);
        let mut rehomed = Vec::new();
        for unit in 0..state.units.len() {
            if !state.answered[unit] && state.owners[unit] == dead {
                rehomed.push(unit);
            }
        }
        for (i, &unit) in rehomed.iter().enumerate() {
            state.owners[unit] = survivors[i % survivors.len()];
        }
        self.broadcast_map(state, network);
        for &unit in &rehomed {
            self.send_solve(unit, state, network);
            state.resent_requests += 1;
        }
        Ok(ChurnReport {
            killed_shard: plan.kill_shard,
            fired_at_delivery: fired_at,
            respawned: plan.respawn,
            redistributed_units: rehomed.len() as u64,
            discarded_messages: discarded,
        })
    }

    /// Assembles the outcome and verifies every conservation law.
    fn finish(
        &self,
        state: RunState,
        network: SimNetwork,
        retry_rounds: u64,
        churn: Option<ChurnReport>,
    ) -> ClusterResult<ClusterOutcome> {
        let mut reports = Vec::with_capacity(state.reports.len());
        for (qi, report) in state.reports.into_iter().enumerate() {
            reports.push(report.ok_or_else(|| {
                ClusterError::Inconsistent(format!(
                    "query {qi} was never merged despite a drained schedule"
                ))
            })?);
        }
        let mut per_shard = state.retired;
        for node in self.nodes.iter().flatten() {
            per_shard.push(traffic_of(
                node,
                true,
                state.requests_received[node.id().0 as usize],
            ));
        }
        per_shard.sort_by_key(|t| (t.shard, t.alive));
        let stats = ClusterRunStats {
            units: state.units.len() as u64,
            messages: network.stats(),
            duplicate_partials: state.duplicate_partials,
            retry_rounds,
            resent_requests: state.resent_requests,
            churn,
            per_shard,
        };
        if network.in_flight() != 0 {
            return Err(ClusterError::Inconsistent(format!(
                "{} messages still in flight after the run finished",
                network.in_flight()
            )));
        }
        if let Some(violation) = stats.conservation_violation() {
            return Err(ClusterError::Inconsistent(violation));
        }
        Ok(ClusterOutcome { reports, stats })
    }

    fn node_mut(&mut self, id: ShardId) -> Option<&mut ShardNode> {
        self.nodes.get_mut(id.0 as usize)?.as_mut()
    }
}

/// Reads one node's cumulative traffic counters.
fn traffic_of(node: &ShardNode, alive: bool, requests_received: u64) -> ShardTraffic {
    let health = node.engine().health();
    let io = node.engine().index().io_snapshot();
    ShardTraffic {
        shard: node.id().0,
        alive,
        requests_received,
        solves: health.shard_solves,
        partials_sent: health.shard_partials,
        logical_reads: io.logical_reads,
        physical_reads: io.physical_reads,
    }
}
