//! # ir-cluster — sharded serving under a deterministic simulation
//!
//! This crate partitions the immutable-region workload of the paper
//! (Mouratidis & Pang, *Computing Immutable Regions for Subspace Top-k
//! Queries*, PVLDB 2013) across N in-process shard nodes, each a full
//! [`IrEngine`](immutable_regions::engine::IrEngine) over its own page
//! store brought up from one shared snapshot, and drives them through a
//! **deterministic discrete-event simulation**: a virtual-time
//! [`EventSchedule`](event_schedule::EventSchedule), a seeded
//! [`SimNetwork`] that delays, reorders and drops
//! messages reproducibly, and a [`ChurnPlan`] that kills
//! shards mid-batch.
//!
//! Two partitioning strategies are supported
//! ([`PartitionMode`]):
//!
//! * **`ByDim`** — list sharding: the node owning inverted list *d* solves
//!   every query dimension over *d* (one [`SolveDim`](message::SolveDim)
//!   unit per query dimension);
//! * **`ByQuery`** — batch partitioning: whole queries round-robin across
//!   nodes.
//!
//! The headline guarantee, proved by the oracle test-suite: the merged
//! output is **byte-identical to the single-engine result** at every shard
//! count, partition mode, delivery order, drop schedule and churn plan —
//! because the merge is fixed by (query id, dimension index), never by
//! arrival order. See [`engine`] for the full contract.

pub mod churn;
pub mod engine;
pub mod event_schedule;
pub mod message;
pub mod network;
pub mod node;

pub use churn::{ChurnPlan, ChurnReport};
pub use engine::{
    ClusterError, ClusterOutcome, ClusterResult, ClusterRunStats, ShardTraffic, ShardedEngine,
    ShardedEngineBuilder,
};
pub use message::{Address, Message, MessageEnvelope, ShardId, ShardMap};
pub use network::{NetworkConfig, NetworkStats, SimNetwork};
pub use node::ShardNode;

// The topology types live in `immutable-regions` (they are stamped into
// `EnginePolicy`); re-exported here so cluster users need one import path.
pub use immutable_regions::engine::{ClusterTopology, PartitionMode};
