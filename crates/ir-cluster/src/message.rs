//! The typed messages shard nodes and the coordinator exchange.
//!
//! Everything that crosses the simulated network is one of four
//! [`Message`] variants, wrapped in a [`MessageEnvelope`] that records the
//! route and a global send counter. The variants mirror the protocol:
//!
//! * [`ShardMap`] — coordinator → every node: the current work assignment
//!   (broadcast at batch start and again after churn redistributes work),
//! * [`SolveDim`] — coordinator → owning node: solve one work unit (a
//!   single query dimension under [`PartitionMode::ByDim`], a whole query
//!   under [`PartitionMode::ByQuery`]),
//! * [`PartialRegion`] — node → coordinator: the solved partial plus the
//!   deterministic counters the merge needs,
//! * [`Merge`](Message::Merge) — coordinator → coordinator: all partials of
//!   one query have arrived; perform the deterministic merge. Modeled as a
//!   message so merging is itself an event in the schedule, subject to the
//!   same reordering as everything else — which the determinism suite then
//!   proves harmless.

use immutable_regions::engine::PartitionMode;
use ir_core::{DimRegions, RegionReport};
use ir_storage::IoStatsSnapshot;
use std::fmt;

/// Identity of one shard node (dense, `0..shards`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

/// A deliverable endpoint on the simulated network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Address {
    /// The coordinator (merge + routing side).
    Coordinator,
    /// One shard node.
    Shard(ShardId),
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Address::Coordinator => f.write_str("coordinator"),
            Address::Shard(id) => id.fmt(f),
        }
    }
}

/// One message in flight: route, global send counter, payload.
#[derive(Clone, Debug)]
pub struct MessageEnvelope {
    /// Sender.
    pub from: Address,
    /// Recipient.
    pub to: Address,
    /// Global per-run send counter — the deterministic "op id" that ties a
    /// message to the network's drop/delay draws.
    pub send_op: u64,
    /// The payload.
    pub message: Message,
}

/// The protocol.
#[derive(Clone, Debug)]
pub enum Message {
    /// Current work assignment, broadcast to every live node.
    ShardMap(ShardMap),
    /// A work-unit request routed to its owning node.
    SolveDim(SolveDim),
    /// A solved partial on its way back to the coordinator (boxed: the
    /// payload dwarfs the other variants).
    PartialRegion(Box<PartialRegion>),
    /// Coordinator self-message: merge the named query now.
    Merge(MergeRequest),
}

impl Message {
    /// Short label for logs and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::ShardMap(_) => "shard-map",
            Message::SolveDim(_) => "solve-dim",
            Message::PartialRegion(_) => "partial-region",
            Message::Merge(_) => "merge",
        }
    }
}

/// The coordinator's current assignment of work units to shard nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Bumped every time the assignment changes (churn redistribution);
    /// lets nodes and logs distinguish stale routing from fresh.
    pub version: u64,
    /// Number of shard slots (dead slots included).
    pub shards: u32,
    /// How work is split.
    pub partition: PartitionMode,
    /// `owners[unit]` is the shard currently responsible for that unit.
    pub owners: Vec<ShardId>,
}

/// Request to solve one work unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolveDim {
    /// Index into the run's unit list.
    pub unit: usize,
    /// Index of the query in the batch.
    pub query: usize,
    /// Position of the dimension within the query's dims
    /// ([`PartitionMode::ByDim`]); `None` means the whole query
    /// ([`PartitionMode::ByQuery`]).
    pub dim_index: Option<usize>,
    /// The [`ShardMap::version`] this request was routed under.
    pub map_version: u64,
}

/// A solved partial region heading back to the coordinator.
#[derive(Clone, Debug)]
pub struct PartialRegion {
    /// The unit this answers.
    pub unit: usize,
    /// The query it belongs to.
    pub query: usize,
    /// The node that solved it.
    pub shard: ShardId,
    /// The payload, shaped by the partition mode.
    pub payload: PartialPayload,
}

/// What a [`PartialRegion`] carries.
#[derive(Clone, Debug)]
pub enum PartialPayload {
    /// One dimension's regions plus the per-dimension counters the
    /// coordinator needs to assemble [`ir_core::ComputationStats`] exactly
    /// the way `RegionComputation::compute_parallel` does (boxed: two I/O
    /// snapshots make it large relative to the other variant).
    Dim(Box<DimPartial>),
    /// A whole query solved sequentially on one node — the report is the
    /// finished article, byte-identical to the single-engine solve.
    Query {
        /// The full report (boxed: a report is large relative to the
        /// envelope).
        report: Box<RegionReport>,
    },
}

/// The per-dimension partial of [`PartialPayload::Dim`].
#[derive(Clone, Debug)]
pub struct DimPartial {
    /// Position of the dimension within the query's dims.
    pub dim_index: usize,
    /// The solved regions.
    pub regions: DimRegions,
    /// Candidates evaluated for this dimension.
    pub evaluated: u64,
    /// Tuples newly discovered by the resumed TA of Phase 3.
    pub phase3_tuples: u64,
    /// Candidate-bookkeeping bytes this dimension required.
    pub footprint_bytes: usize,
    /// Candidate-list size of the node's initial TA run. Identical on
    /// every node (same snapshot bytes) — the coordinator asserts so.
    pub initial_candidates: usize,
    /// I/O of the node's initial top-k phase for this query.
    pub topk_io: IoStatsSnapshot,
    /// I/O of this dimension's solve on the node.
    pub io: IoStatsSnapshot,
}

/// Coordinator self-message: every partial of `query` has arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergeRequest {
    /// The query to merge.
    pub query: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_kinds_are_stable_labels() {
        let map = Message::ShardMap(ShardMap {
            version: 1,
            shards: 2,
            partition: PartitionMode::ByDim,
            owners: vec![ShardId(0), ShardId(1)],
        });
        assert_eq!(map.kind(), "shard-map");
        assert_eq!(Message::Merge(MergeRequest { query: 0 }).kind(), "merge");
        assert_eq!(format!("{}", Address::Shard(ShardId(3))), "shard-3");
        assert_eq!(format!("{}", Address::Coordinator), "coordinator");
    }
}
