//! A shard node: one [`IrEngine`] brought up from the shared snapshot.
//!
//! Every node owns its page store — the mem backend materializes the
//! snapshot's page file into its own [`ir_storage::MemPageStore`], the
//! file/mmap backends open the file with their own handles — so nodes share
//! *bytes* (the snapshot) but no runtime state, exactly like separate
//! processes would. Bring-up goes through the zero-copy snapshot path
//! ([`IrEngineBuilder::open_snapshot`](immutable_regions::engine::IrEngineBuilder::open_snapshot)): only the trailer is read before
//! the first solve.
//!
//! Nodes are deliberately dumb: they install the latest
//! [`ShardMap`], solve the
//! [`SolveDim`] requests addressed to them, and
//! send back [`PartialRegion`]s. All routing
//! intelligence (retries, churn, merging) lives in the coordinator.

use crate::engine::{ClusterError, ClusterResult};
use crate::message::{DimPartial, PartialPayload, PartialRegion, ShardId, ShardMap, SolveDim};
use immutable_regions::engine::IrEngine;
use ir_core::{OwnedRegionComputation, RegionConfig};
use ir_storage::{BackendKind, StorageBackend};
use ir_types::QueryVector;
use std::collections::HashMap;
use std::path::Path;

/// One in-process shard node.
pub struct ShardNode {
    id: ShardId,
    engine: IrEngine,
    /// TA runs cached per query (`ByDim` mode solves several dimensions of
    /// the same query on one node; the top-k phase runs once).
    computations: HashMap<usize, OwnedRegionComputation>,
    map: Option<ShardMap>,
}

impl ShardNode {
    /// Brings a node up from `snapshot_dir`, serving it through `backend`
    /// with `config` as the solving configuration.
    pub fn bring_up(
        id: ShardId,
        snapshot_dir: &Path,
        backend: BackendKind,
        config: RegionConfig,
    ) -> ClusterResult<ShardNode> {
        let storage = match backend {
            BackendKind::Mem => StorageBackend::Memory,
            // The path inside the variant is ignored when opening a
            // snapshot (the file to serve is the snapshot's); the kind is
            // what selects positioned reads vs a read-only mapping.
            BackendKind::File => StorageBackend::Disk(snapshot_dir.to_path_buf()),
            BackendKind::Mmap => StorageBackend::Mmap(snapshot_dir.to_path_buf()),
        };
        let engine = IrEngine::builder()
            .open_snapshot(snapshot_dir)
            .backend(storage)
            .config(config)
            .build()
            .map_err(|source| ClusterError::BringUp {
                shard: id.0,
                source,
            })?;
        Ok(ShardNode {
            id,
            engine,
            computations: HashMap::new(),
            map: None,
        })
    }

    /// The node's identity.
    pub fn id(&self) -> ShardId {
        self.id
    }

    /// The node's engine (health counters, I/O accounting).
    pub fn engine(&self) -> &IrEngine {
        &self.engine
    }

    /// Installs a (newer) work assignment; stale broadcasts — delivered out
    /// of order by the simulated network — are ignored.
    pub fn install_map(&mut self, map: ShardMap) {
        if self.map.as_ref().map_or(true, |m| m.version < map.version) {
            self.map = Some(map);
        }
    }

    /// The assignment version the node last installed (0 before any).
    pub fn map_version(&self) -> u64 {
        self.map.as_ref().map_or(0, |m| m.version)
    }

    /// Clears per-batch state (cached TA runs) before a new batch.
    pub fn reset_batch(&mut self) {
        self.computations.clear();
    }

    /// Serves one work-unit request, returning the partial to send back.
    ///
    /// The result is a pure function of (snapshot bytes, query, request),
    /// so serving a duplicate request — a retry whose original answer was
    /// dropped — reproduces the identical partial.
    pub fn solve(
        &mut self,
        request: &SolveDim,
        queries: &[QueryVector],
    ) -> ClusterResult<PartialRegion> {
        let query = queries.get(request.query).ok_or_else(|| {
            ClusterError::Protocol(format!(
                "{} received a request for query {} but the batch holds {}",
                self.id,
                request.query,
                queries.len()
            ))
        })?;
        let payload = match request.dim_index {
            None => {
                // ByQuery: the plain sequential solve — the report is
                // byte-identical to the single-engine one.
                let report = self
                    .engine
                    .query(query)
                    .map_err(|source| ClusterError::Solve {
                        shard: self.id.0,
                        source,
                    })?;
                PartialPayload::Query {
                    report: Box::new(report),
                }
            }
            Some(dim_index) => {
                // ByDim: run TA once per query (cached), then solve this
                // dimension from the frozen snapshot — the same primitive
                // `compute_parallel` fans out over threads, here fanned out
                // over nodes.
                let config = self.engine.config();
                if !self.computations.contains_key(&request.query) {
                    let computation =
                        self.engine
                            .computation(query)
                            .map_err(|source| ClusterError::Solve {
                                shard: self.id.0,
                                source,
                            })?;
                    self.computations.insert(request.query, computation);
                }
                let computation = &self.computations[&request.query];
                let index = self.engine.index();
                let before = index.thread_io_snapshot();
                let (regions, info) = ir_core::parallel::solve_dim_from_snapshot(
                    index,
                    computation.ta(),
                    dim_index,
                    &config,
                )
                .map_err(|source| ClusterError::Solve {
                    shard: self.id.0,
                    source: source.into(),
                })?;
                let io = index.thread_io_snapshot().since(&before);
                PartialPayload::Dim(Box::new(DimPartial {
                    dim_index,
                    regions,
                    evaluated: info.evaluated,
                    phase3_tuples: info.phase3_tuples,
                    footprint_bytes: info.footprint_bytes,
                    initial_candidates: computation.initial_candidates(),
                    topk_io: computation.topk_io(),
                    io,
                }))
            }
        };
        self.engine.note_shard_traffic(1, 1);
        Ok(PartialRegion {
            unit: request.unit,
            query: request.query,
            shard: self.id,
            payload,
        })
    }
}
