//! The simulated message fabric: seeded delay, reordering and drops.
//!
//! [`SimNetwork`] moves [`MessageEnvelope`]s between the coordinator and
//! the shard nodes through an [`EventSchedule`]. Per send it draws, from
//! one [`SeededLcg`] stream fixed by [`NetworkConfig::seed`]:
//!
//! 1. a **drop lottery** (`drop_percent` of coordinator↔shard messages are
//!    lost; coordinator self-messages model local computation and never
//!    drop), and
//! 2. a **delivery delay** in `[1, 1 + reorder_window]` virtual ticks — a
//!    window wider than one tick lets later sends overtake earlier ones,
//!    which is exactly the reordering the merge must be invariant to.
//!
//! Both draws happen for every send *in send order*, so the whole delivery
//! schedule is a pure function of `(seed, sequence of sends)` — replay the
//! sends and the network replays bit-for-bit. Dropped messages model an
//! at-most-once transport; the coordinator detects missing partials when
//! the schedule drains and re-requests them. After
//! [`SimNetwork::escalate_reliable`] the drop lottery is bypassed (the
//! transport "upgrades" to reliable delivery), which bounds every run: a
//! finite number of lossy retry rounds, then guaranteed completion.

use crate::event_schedule::{EventSchedule, ScheduledEvent};
use crate::message::{Address, Message, MessageEnvelope, ShardId};
use ir_types::SeededLcg;

/// Shape of the simulated network, stamped (via its seed) into the run's
/// [`ClusterTopology`](immutable_regions::engine::ClusterTopology).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Seed of the delay/drop stream. Equal seeds replay equal schedules.
    pub seed: u64,
    /// Maximum extra delivery delay in virtual ticks (0 = strict FIFO; the
    /// determinism suite sweeps this because the merge must not care).
    pub reorder_window: u64,
    /// Percent (0–100) of coordinator↔shard messages dropped while the
    /// transport is in its lossy phase.
    pub drop_percent: u8,
}

impl Default for NetworkConfig {
    /// A perfectly behaved network: FIFO, lossless.
    fn default() -> Self {
        NetworkConfig {
            seed: 0,
            reorder_window: 0,
            drop_percent: 0,
        }
    }
}

impl NetworkConfig {
    /// A lossless network that reorders within `window` ticks.
    pub fn reordering(seed: u64, window: u64) -> Self {
        NetworkConfig {
            seed,
            reorder_window: window,
            drop_percent: 0,
        }
    }

    /// A reordering network that also drops `drop_percent`% of messages.
    pub fn lossy(seed: u64, window: u64, drop_percent: u8) -> Self {
        NetworkConfig {
            seed,
            reorder_window: window,
            drop_percent: drop_percent.min(100),
        }
    }
}

/// Message-conservation counters: every send ends in exactly one bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Envelopes handed to [`SimNetwork::send`].
    pub sent: u64,
    /// Envelopes popped by [`SimNetwork::deliver_next`].
    pub delivered: u64,
    /// Envelopes lost to the drop lottery.
    pub dropped: u64,
    /// Envelopes discarded because an endpoint died
    /// ([`SimNetwork::discard_involving`]).
    pub discarded: u64,
}

impl NetworkStats {
    /// `true` when every sent message is accounted for given `in_flight`
    /// messages still queued — the conservation law the cluster run asserts
    /// at exit (with `in_flight` 0).
    pub fn conserved(&self, in_flight: u64) -> bool {
        self.sent == self.delivered + self.dropped + self.discarded + in_flight
    }
}

/// The simulated network fabric.
pub struct SimNetwork {
    schedule: EventSchedule<MessageEnvelope>,
    rng: SeededLcg,
    config: NetworkConfig,
    reliable: bool,
    stats: NetworkStats,
    next_send_op: u64,
}

impl SimNetwork {
    /// A fresh network with its RNG stream positioned at the seed.
    pub fn new(config: NetworkConfig) -> Self {
        SimNetwork {
            schedule: EventSchedule::new(),
            rng: SeededLcg::mixed(config.seed),
            config,
            reliable: false,
            stats: NetworkStats::default(),
            next_send_op: 0,
        }
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Conservation counters so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.schedule.len() as u64
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.schedule.now()
    }

    /// Bypasses the drop lottery for every subsequent send — the reliable
    /// escalation that bounds retry loops.
    pub fn escalate_reliable(&mut self) {
        self.reliable = true;
    }

    /// Sends a message, drawing its drop verdict and delivery delay from
    /// the seeded stream. Returns `true` if the message was scheduled,
    /// `false` if the lottery dropped it.
    ///
    /// Both draws are consumed unconditionally so the stream position — and
    /// with it every later verdict — depends only on the send sequence,
    /// never on which earlier messages happened to drop.
    pub fn send(&mut self, from: Address, to: Address, message: Message) -> bool {
        let send_op = self.next_send_op;
        self.next_send_op += 1;
        self.stats.sent += 1;

        let drop_draw = self.rng.next_below(100);
        let delay = self.rng.next_below(self.config.reorder_window + 1);

        // Only coordinator↔shard traffic crosses the lossy fabric;
        // coordinator self-messages (merges) are local computation.
        let local = from == Address::Coordinator && to == Address::Coordinator;
        let lossy = !local && !self.reliable;
        if lossy && drop_draw < self.config.drop_percent as u64 {
            self.stats.dropped += 1;
            return false;
        }

        let at = self.schedule.now() + 1 + delay;
        self.schedule.schedule_at(
            at,
            MessageEnvelope {
                from,
                to,
                send_op,
                message,
            },
        );
        true
    }

    /// Delivers the next event in deterministic `(time, seq)` order.
    pub fn deliver_next(&mut self) -> Option<ScheduledEvent<MessageEnvelope>> {
        let event = self.schedule.pop()?;
        self.stats.delivered += 1;
        Some(event)
    }

    /// Discards every in-flight message to or from `shard` (its process
    /// died), returning how many were lost.
    pub fn discard_involving(&mut self, shard: ShardId) -> u64 {
        let address = Address::Shard(shard);
        let removed = self
            .schedule
            .retain(|envelope| envelope.from != address && envelope.to != address);
        self.stats.discarded += removed;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MergeRequest;

    fn probe(query: usize) -> Message {
        Message::Merge(MergeRequest { query })
    }

    fn run_delivery_order(config: NetworkConfig, sends: usize) -> Vec<u64> {
        let mut network = SimNetwork::new(config);
        for i in 0..sends {
            network.send(Address::Coordinator, Address::Shard(ShardId(0)), probe(i));
        }
        std::iter::from_fn(move || network.deliver_next())
            .map(|e| e.payload.send_op)
            .collect()
    }

    #[test]
    fn fifo_network_delivers_in_send_order() {
        let order = run_delivery_order(NetworkConfig::default(), 16);
        assert_eq!(order, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn reordering_is_seeded_and_reproducible() {
        let a = run_delivery_order(NetworkConfig::reordering(7, 9), 64);
        let b = run_delivery_order(NetworkConfig::reordering(7, 9), 64);
        let c = run_delivery_order(NetworkConfig::reordering(8, 9), 64);
        assert_eq!(a, b, "same seed must replay the same delivery order");
        assert_ne!(a, c, "different seeds should reorder differently");
        assert_ne!(
            a,
            (0..64).collect::<Vec<u64>>(),
            "a 9-tick window should actually reorder something"
        );
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u64>>(), "nothing lost");
    }

    #[test]
    fn drops_are_counted_and_conserved() {
        let config = NetworkConfig::lossy(3, 4, 50);
        let mut network = SimNetwork::new(config);
        for i in 0..100 {
            network.send(Address::Coordinator, Address::Shard(ShardId(0)), probe(i));
        }
        let stats = network.stats();
        assert!(stats.dropped > 10, "a 50% lottery should drop: {stats:?}");
        assert!(stats.conserved(network.in_flight()), "{stats:?}");
        while network.deliver_next().is_some() {}
        assert!(network.stats().conserved(0), "{:?}", network.stats());
    }

    #[test]
    fn merges_never_drop_and_reliable_escalation_stops_losses() {
        let mut network = SimNetwork::new(NetworkConfig::lossy(1, 0, 100));
        assert!(
            network.send(Address::Coordinator, Address::Coordinator, probe(0)),
            "coordinator self-messages bypass the lottery"
        );
        assert!(!network.send(Address::Coordinator, Address::Shard(ShardId(0)), probe(1)));
        network.escalate_reliable();
        assert!(network.send(Address::Coordinator, Address::Shard(ShardId(0)), probe(2)));
    }

    #[test]
    fn discard_involving_removes_both_directions() {
        let mut network = SimNetwork::new(NetworkConfig::default());
        network.send(Address::Coordinator, Address::Shard(ShardId(0)), probe(0));
        network.send(Address::Shard(ShardId(0)), Address::Coordinator, probe(1));
        network.send(Address::Coordinator, Address::Shard(ShardId(1)), probe(2));
        assert_eq!(network.discard_involving(ShardId(0)), 2);
        let left: Vec<u64> = std::iter::from_fn(|| network.deliver_next())
            .map(|e| e.payload.send_op)
            .collect();
        assert_eq!(left, [2]);
        assert!(network.stats().conserved(0), "{:?}", network.stats());
    }
}
