//! Shard-death schedules and what redistribution reports back.
//!
//! A [`ChurnPlan`] kills one shard node after a fixed number of delivered
//! events — mid-batch, deterministically, at the same point of every
//! replay. The coordinator then:
//!
//! 1. discards the dead shard's in-flight traffic (requests it will never
//!    serve, partials that died with it),
//! 2. re-homes its unanswered work units — onto a **replacement node
//!    brought up from the same snapshot** when [`ChurnPlan::respawn`] is
//!    set, or round-robin across the survivors otherwise (both paths are
//!    snapshot-served: every node, replacement or survivor, opened the same
//!    snapshot at bring-up),
//! 3. broadcasts a fresh [`ShardMap`](crate::message::ShardMap) and
//!    re-sends the re-homed requests.
//!
//! Because the kill point, the redistribution and the re-sends are all
//! deterministic, a churned run is as replayable as a calm one — and the
//! oracle suite asserts its merged output is *byte-identical* to the
//! single-engine result.

/// When to kill which shard, and how to re-home its work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnPlan {
    /// The shard slot to kill.
    pub kill_shard: u32,
    /// Fire after this many events have been delivered (0 kills the shard
    /// before it serves anything).
    pub after_deliveries: u64,
    /// `true`: bring a replacement node up from the snapshot into the same
    /// slot. `false`: redistribute the dead shard's units across survivors.
    pub respawn: bool,
}

impl ChurnPlan {
    /// Kill `shard` after `after_deliveries` events, redistributing to
    /// survivors.
    pub fn kill(shard: u32, after_deliveries: u64) -> Self {
        ChurnPlan {
            kill_shard: shard,
            after_deliveries,
            respawn: false,
        }
    }

    /// Kill `shard` after `after_deliveries` events, then respawn it from
    /// the snapshot.
    pub fn kill_and_respawn(shard: u32, after_deliveries: u64) -> Self {
        ChurnPlan {
            kill_shard: shard,
            after_deliveries,
            respawn: true,
        }
    }
}

/// What a fired churn event did — part of
/// [`ClusterRunStats`](crate::engine::ClusterRunStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// The shard slot that was killed.
    pub killed_shard: u32,
    /// Delivered-event count at which the kill fired.
    pub fired_at_delivery: u64,
    /// Whether a replacement node was brought up from the snapshot.
    pub respawned: bool,
    /// Work units re-homed and re-sent.
    pub redistributed_units: u64,
    /// In-flight messages that died with the shard.
    pub discarded_messages: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_the_obvious_fields() {
        let kill = ChurnPlan::kill(2, 40);
        assert_eq!(kill.kill_shard, 2);
        assert_eq!(kill.after_deliveries, 40);
        assert!(!kill.respawn);
        let respawn = ChurnPlan::kill_and_respawn(1, 7);
        assert!(respawn.respawn);
    }
}
