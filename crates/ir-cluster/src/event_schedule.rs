//! The deterministic event queue at the heart of the cluster simulation.
//!
//! Every in-flight message is an event with a virtual delivery time. Events
//! pop in `(time, sequence)` order: the sequence number — assigned at
//! scheduling, never reused — breaks ties, so two events due at the same
//! virtual instant always deliver in the order they were scheduled. That
//! total order is what makes whole simulated runs replayable: same seeds,
//! same schedule, same byte-identical outcome, on any machine.
//!
//! There is no wall clock anywhere. "Time" is a `u64` the network advances
//! as it assigns delivery delays, and [`EventSchedule::pop`] moves `now` to
//! each delivered event's timestamp.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: when it delivers, its tie-break sequence, payload.
#[derive(Clone, Debug)]
pub struct ScheduledEvent<T> {
    /// Virtual delivery time.
    pub at: u64,
    /// Scheduling sequence number (global, monotonic) — the deterministic
    /// tie-break for events due at the same instant.
    pub seq: u64,
    /// The event itself.
    pub payload: T,
}

/// Internal heap entry ordered so the `BinaryHeap` (a max-heap) pops the
/// *smallest* `(at, seq)` first.
struct HeapEntry<T>(ScheduledEvent<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.0.at, self.0.seq) == (other.0.at, other.0.seq)
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smallest (at, seq) is the heap maximum.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// A deterministic discrete-event schedule.
#[derive(Default)]
pub struct EventSchedule<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_seq: u64,
    now: u64,
}

impl<T> EventSchedule<T> {
    /// An empty schedule at virtual time zero.
    pub fn new() -> Self {
        EventSchedule {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `payload` for delivery at virtual time `at` (clamped to
    /// never fire in the past) and returns its sequence number.
    pub fn schedule_at(&mut self, at: u64, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(ScheduledEvent {
            at: at.max(self.now),
            seq,
            payload,
        }));
        seq
    }

    /// Pops the next event in `(at, seq)` order, advancing `now` to its
    /// timestamp. `None` when the schedule has drained.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        let event = self.heap.pop()?.0;
        self.now = event.at;
        Some(event)
    }

    /// Number of events still queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every queued event failing `keep`, returning how many were
    /// removed — how churn discards a dead shard's in-flight traffic.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) -> u64 {
        let before = self.heap.len();
        let kept: Vec<HeapEntry<T>> = self
            .heap
            .drain()
            .filter(|entry| keep(&entry.0.payload))
            .collect();
        let removed = before - kept.len();
        self.heap = kept.into_iter().collect();
        removed as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_sequence_order() {
        let mut schedule = EventSchedule::new();
        schedule.schedule_at(5, "late");
        schedule.schedule_at(1, "first-at-1");
        schedule.schedule_at(1, "second-at-1");
        schedule.schedule_at(3, "middle");
        let order: Vec<&str> = std::iter::from_fn(|| schedule.pop())
            .map(|e| e.payload)
            .collect();
        assert_eq!(order, ["first-at-1", "second-at-1", "middle", "late"]);
    }

    #[test]
    fn now_advances_and_past_schedules_clamp() {
        let mut schedule = EventSchedule::new();
        schedule.schedule_at(10, "a");
        assert_eq!(schedule.pop().unwrap().at, 10);
        assert_eq!(schedule.now(), 10);
        // Scheduling "in the past" clamps to now — time never runs backwards.
        schedule.schedule_at(2, "b");
        let event = schedule.pop().unwrap();
        assert_eq!(event.at, 10);
        assert_eq!(schedule.now(), 10);
    }

    #[test]
    fn retain_discards_and_counts() {
        let mut schedule = EventSchedule::new();
        for i in 0..6u64 {
            schedule.schedule_at(i, i);
        }
        let removed = schedule.retain(|&v| v % 2 == 0);
        assert_eq!(removed, 3);
        let left: Vec<u64> = std::iter::from_fn(|| schedule.pop())
            .map(|e| e.payload)
            .collect();
        assert_eq!(left, [0, 2, 4]);
    }

    #[test]
    fn identical_schedules_replay_identically() {
        let run = || {
            let mut schedule = EventSchedule::new();
            for i in 0..32u64 {
                schedule.schedule_at(i * 7 % 13, i);
            }
            std::iter::from_fn(move || schedule.pop())
                .map(|e| (e.at, e.seq, e.payload))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
