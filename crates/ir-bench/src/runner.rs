//! Running a method over a workload and printing paper-style tables.

use crate::metrics::MethodMeasurement;
use immutable_regions::engine::{EngineResult, IrEngine};
use ir_core::iterative::compute_iterative;
use ir_core::parallel::run_queries;
use ir_core::{Algorithm, ComputationStats, RegionConfig};
use ir_datagen::QueryWorkload;
use ir_storage::TopKIndex;
use ir_types::IrResult;

fn accumulate_stats(total: &mut MethodMeasurement, index: &TopKIndex, stats: &ComputationStats) {
    total.evaluated_per_dim += stats.evaluated_per_dim_avg();
    total.cpu_time_ms += stats.cpu_time.as_secs_f64() * 1e3;
    total.io_time_ms += index.io_config().simulated_io_time(&stats.io).as_secs_f64() * 1e3;
    total.memory_kbytes += stats.memory_footprint_bytes as f64 / 1024.0;
    total.logical_reads += stats.io.logical_reads as f64;
    total.physical_reads += stats.io.physical_reads as f64;
}

/// Measures one algorithm/configuration over a workload on the sequential
/// path (per-query cold starts), averaging over the queries (the paper
/// averages over 100 queries per point).
pub fn measure_method(
    engine: &IrEngine,
    workload: &QueryWorkload,
    algorithm: Algorithm,
    config: RegionConfig,
    x: f64,
) -> EngineResult<MethodMeasurement> {
    let mut total = MethodMeasurement::new(algorithm, x);
    for query in workload.iter() {
        engine.cold_start();
        let report = engine.query_with(query, config)?;
        accumulate_stats(&mut total, engine.index(), &report.stats);
    }
    Ok(total.averaged_over(workload.len()))
}

/// Like [`measure_method`], but honouring the engine's worker count: with
/// more than one worker the whole workload is fanned out over the engine's
/// batch pool ([`IrEngine::query_batch_detailed`]) sharing one warm buffer
/// pool. The candidate/logical-read metrics are unchanged either way (they
/// are scheduling independent) while wall-clock time drops on a multi-core
/// host.
pub fn measure_method_threaded(
    engine: &IrEngine,
    workload: &QueryWorkload,
    algorithm: Algorithm,
    config: RegionConfig,
    x: f64,
) -> EngineResult<MethodMeasurement> {
    if engine.threads() <= 1 {
        return measure_method(engine, workload, algorithm, config, x);
    }
    engine.cold_start();
    let outcome = engine
        .with_config(config)
        .query_batch_detailed(workload.queries())?;
    let mut total = MethodMeasurement::new(algorithm, x);
    for report in &outcome.reports {
        accumulate_stats(&mut total, engine.index(), &report.stats);
    }
    Ok(total.averaged_over(workload.len()))
}

/// Measures the iterative re-evaluation baseline for `φ > 0` (Figure 15),
/// fanning the per-query re-evaluations out over the engine's workers (each
/// query's iterative chain stays sequential — it is inherently so — but
/// distinct queries run concurrently).
pub fn measure_iterative(
    engine: &IrEngine,
    workload: &QueryWorkload,
    algorithm: Algorithm,
    phi: usize,
    x: f64,
) -> EngineResult<MethodMeasurement> {
    let mut total = MethodMeasurement::new(algorithm, x);
    total.algorithm = format!("{algorithm}-iter");
    let index = engine.index();
    let queries = workload.queries();
    let reports = if engine.threads() <= 1 {
        let mut reports = Vec::with_capacity(queries.len());
        for query in workload.iter() {
            engine.cold_start();
            reports.push(compute_iterative(index, query, algorithm, phi)?);
        }
        reports
    } else {
        engine.cold_start();
        let (results, _worker_io) =
            run_queries(index, engine.threads(), queries.len(), "query", |qi| {
                compute_iterative(index, &queries[qi], algorithm, phi)
            });
        results.into_iter().collect::<IrResult<Vec<_>>>()?
    };
    for report in &reports {
        let stats = &report.stats;
        let dims = stats.evaluated_per_dim.len().max(1) as f64;
        total.evaluated_per_dim += stats.evaluated_candidates as f64 / dims;
        total.cpu_time_ms += stats.cpu_time.as_secs_f64() * 1e3;
        total.io_time_ms += index.io_config().simulated_io_time(&stats.io).as_secs_f64() * 1e3;
        total.memory_kbytes += stats.memory_footprint_bytes as f64 / 1024.0;
        total.logical_reads += stats.io.logical_reads as f64;
        total.physical_reads += stats.io.physical_reads as f64;
    }
    Ok(total.averaged_over(workload.len()))
}

/// A printable experiment table: one row per (method, x) pair.
#[derive(Clone, Debug, Default)]
pub struct ExperimentTable {
    /// Table title (figure id + setting).
    pub title: String,
    /// Label of the x-axis (e.g. "qlen", "k", "phi").
    pub x_label: String,
    /// The measurements.
    pub rows: Vec<MethodMeasurement>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>) -> Self {
        ExperimentTable {
            title: title.into(),
            x_label: x_label.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a measurement.
    pub fn push(&mut self, row: MethodMeasurement) {
        self.rows.push(row);
    }

    /// Renders the table in the layout used by `EXPERIMENTS.md`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n", self.title));
        out.push_str(&format!(
            "{:<12} {:>6} {:>16} {:>12} {:>12} {:>12} {:>14}\n",
            "method",
            self.x_label,
            "eval-cands/dim",
            "io-time-ms",
            "cpu-ms",
            "mem-KiB",
            "logical-reads"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>6} {:>16.2} {:>12.2} {:>12.3} {:>12.2} {:>14.1}\n",
                row.algorithm,
                format_x(row.x),
                row.evaluated_per_dim,
                row.io_time_ms,
                row.cpu_time_ms,
                row.memory_kbytes,
                row.logical_reads,
            ));
        }
        out
    }
}

fn format_x(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

/// Prints a rendered table to stdout.
pub fn print_table(table: &ExperimentTable) {
    println!("{}", table.render());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{BenchDataset, Scale};

    #[test]
    fn measure_method_produces_sane_averages() {
        let (engine, workload) = BenchDataset::Wsj
            .prepare_engine(Scale::Smoke, 2, 5, 2, 1, ir_storage::BackendKind::Mem)
            .unwrap();
        let scan = measure_method(
            &engine,
            &workload,
            Algorithm::Scan,
            RegionConfig::flat(Algorithm::Scan),
            2.0,
        )
        .unwrap();
        let cpt = measure_method(
            &engine,
            &workload,
            Algorithm::Cpt,
            RegionConfig::flat(Algorithm::Cpt),
            2.0,
        )
        .unwrap();
        assert!(scan.evaluated_per_dim >= cpt.evaluated_per_dim);
        assert!(scan.cpu_time_ms > 0.0);
        assert!(scan.logical_reads > 0.0);
    }

    #[test]
    fn threaded_measurements_are_worker_count_invariant() {
        let (engine, workload) = BenchDataset::St
            .prepare_engine(Scale::Smoke, 2, 5, 3, 2, ir_storage::BackendKind::Mem)
            .unwrap();
        let two = measure_method_threaded(
            &engine,
            &workload,
            Algorithm::Cpt,
            RegionConfig::flat(Algorithm::Cpt),
            2.0,
        )
        .unwrap();
        let four = measure_method_threaded(
            &engine.with_threads(4),
            &workload,
            Algorithm::Cpt,
            RegionConfig::flat(Algorithm::Cpt),
            2.0,
        )
        .unwrap();
        // The deterministic series are identical for every worker count —
        // this is what lets CI diff emitted JSON against a baseline.
        assert_eq!(two.evaluated_per_dim, four.evaluated_per_dim);
        assert_eq!(two.logical_reads, four.logical_reads);
        assert_eq!(two.memory_kbytes, four.memory_kbytes);
        assert!(two.evaluated_per_dim > 0.0);
        assert!(two.logical_reads > 0.0);
    }

    #[test]
    fn table_renders_all_rows() {
        let mut table = ExperimentTable::new("Figure X", "qlen");
        let mut row = MethodMeasurement::new(Algorithm::Cpt, 4.0);
        row.evaluated_per_dim = 3.5;
        table.push(row);
        let rendered = table.render();
        assert!(rendered.contains("Figure X"));
        assert!(rendered.contains("CPT"));
        assert!(rendered.contains("3.50"));
    }
}
