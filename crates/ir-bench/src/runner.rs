//! Running a method over a workload and printing paper-style tables.

use crate::metrics::MethodMeasurement;
use ir_core::iterative::compute_iterative;
use ir_core::{Algorithm, RegionComputation, RegionConfig};
use ir_datagen::QueryWorkload;
use ir_storage::TopKIndex;
use ir_types::IrResult;

/// Measures one algorithm/configuration over a workload, averaging over the
/// queries (the paper averages over 100 queries per point).
pub fn measure_method(
    index: &TopKIndex,
    workload: &QueryWorkload,
    algorithm: Algorithm,
    config: RegionConfig,
    x: f64,
) -> IrResult<MethodMeasurement> {
    let mut total = MethodMeasurement::new(algorithm, x);
    for query in workload.iter() {
        index.cold_start();
        let mut computation = RegionComputation::new(index, query, config)?;
        let report = computation.compute()?;
        let stats = &report.stats;
        total.evaluated_per_dim += stats.evaluated_per_dim_avg();
        total.cpu_time_ms += stats.cpu_time.as_secs_f64() * 1e3;
        total.io_time_ms += index.io_config().simulated_io_time(&stats.io).as_secs_f64() * 1e3;
        total.memory_kbytes += stats.memory_footprint_bytes as f64 / 1024.0;
        total.logical_reads += stats.io.logical_reads as f64;
        total.physical_reads += stats.io.physical_reads as f64;
    }
    Ok(total.averaged_over(workload.len()))
}

/// Measures the iterative re-evaluation baseline for `φ > 0` (Figure 15).
pub fn measure_iterative(
    index: &TopKIndex,
    workload: &QueryWorkload,
    algorithm: Algorithm,
    phi: usize,
    x: f64,
) -> IrResult<MethodMeasurement> {
    let mut total = MethodMeasurement::new(algorithm, x);
    total.algorithm = format!("{}-iter", algorithm.name());
    for query in workload.iter() {
        index.cold_start();
        let report = compute_iterative(index, query, algorithm, phi)?;
        let stats = &report.stats;
        let dims = stats.evaluated_per_dim.len().max(1) as f64;
        total.evaluated_per_dim += stats.evaluated_candidates as f64 / dims;
        total.cpu_time_ms += stats.cpu_time.as_secs_f64() * 1e3;
        total.io_time_ms += index.io_config().simulated_io_time(&stats.io).as_secs_f64() * 1e3;
        total.memory_kbytes += stats.memory_footprint_bytes as f64 / 1024.0;
        total.logical_reads += stats.io.logical_reads as f64;
        total.physical_reads += stats.io.physical_reads as f64;
    }
    Ok(total.averaged_over(workload.len()))
}

/// A printable experiment table: one row per (method, x) pair.
#[derive(Clone, Debug, Default)]
pub struct ExperimentTable {
    /// Table title (figure id + setting).
    pub title: String,
    /// Label of the x-axis (e.g. "qlen", "k", "phi").
    pub x_label: String,
    /// The measurements.
    pub rows: Vec<MethodMeasurement>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>) -> Self {
        ExperimentTable {
            title: title.into(),
            x_label: x_label.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a measurement.
    pub fn push(&mut self, row: MethodMeasurement) {
        self.rows.push(row);
    }

    /// Renders the table in the layout used by `EXPERIMENTS.md`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n", self.title));
        out.push_str(&format!(
            "{:<12} {:>6} {:>16} {:>12} {:>12} {:>12} {:>14}\n",
            "method",
            self.x_label,
            "eval-cands/dim",
            "io-time-ms",
            "cpu-ms",
            "mem-KiB",
            "logical-reads"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>6} {:>16.2} {:>12.2} {:>12.3} {:>12.2} {:>14.1}\n",
                row.algorithm,
                format_x(row.x),
                row.evaluated_per_dim,
                row.io_time_ms,
                row.cpu_time_ms,
                row.memory_kbytes,
                row.logical_reads,
            ));
        }
        out
    }
}

fn format_x(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

/// Prints a rendered table to stdout.
pub fn print_table(table: &ExperimentTable) {
    println!("{}", table.render());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{BenchDataset, Scale};

    #[test]
    fn measure_method_produces_sane_averages() {
        let (index, workload) = BenchDataset::Wsj.prepare(Scale::Smoke, 2, 5, 2).unwrap();
        let scan = measure_method(
            &index,
            &workload,
            Algorithm::Scan,
            RegionConfig::flat(Algorithm::Scan),
            2.0,
        )
        .unwrap();
        let cpt = measure_method(
            &index,
            &workload,
            Algorithm::Cpt,
            RegionConfig::flat(Algorithm::Cpt),
            2.0,
        )
        .unwrap();
        assert!(scan.evaluated_per_dim >= cpt.evaluated_per_dim);
        assert!(scan.cpu_time_ms > 0.0);
        assert!(scan.logical_reads > 0.0);
    }

    #[test]
    fn table_renders_all_rows() {
        let mut table = ExperimentTable::new("Figure X", "qlen");
        let mut row = MethodMeasurement::new(Algorithm::Cpt, 4.0);
        row.evaluated_per_dim = 3.5;
        table.push(row);
        let rendered = table.render();
        assert!(rendered.contains("Figure X"));
        assert!(rendered.contains("CPT"));
        assert!(rendered.contains("3.50"));
    }
}
