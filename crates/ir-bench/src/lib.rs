//! # ir-bench
//!
//! The experiment harness reproducing the evaluation section of the paper
//! (Figures 6 and 10–16). Each figure has a runner binary in `src/bin/` that
//! prints the same series the paper plots (method × x-axis value → metric);
//! `benches/` contains Criterion micro-benchmarks over the same workloads.
//!
//! The scale of the generated datasets is controlled by the
//! `IR_BENCH_SCALE` environment variable: `smoke` (seconds, CI-friendly),
//! `default` (minutes, laptop-scale — the scale used for the numbers in
//! `EXPERIMENTS.md`), or `full` (the paper's cardinalities).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod runner;
pub mod workloads;

pub use metrics::{MethodMeasurement, MethodSeries};
pub use runner::{measure_iterative, measure_method, print_table, ExperimentTable};
pub use workloads::{BenchDataset, Scale};
