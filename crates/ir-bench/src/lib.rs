//! # ir-bench
//!
//! The experiment harness reproducing the evaluation section of the paper
//! (Figures 6 and 10–16). Each figure has a runner binary in `src/bin/` that
//! prints the same series the paper plots (method × x-axis value → metric);
//! `benches/` contains Criterion micro-benchmarks over the same workloads.
//!
//! The scale of the generated datasets is controlled by the
//! `IR_BENCH_SCALE` environment variable: `smoke` (seconds, CI-friendly),
//! `default` (minutes, laptop-scale — the scale used for the numbers in
//! `EXPERIMENTS.md`), or `full` (the paper's cardinalities).
//!
//! Every runner additionally accepts `--threads N` (fan the workload out
//! over N workers of the parallel execution layer; the measured candidate
//! and logical-read series are identical for every N),
//! `--backend {mem,file,mmap}` (which page store backs the index — the
//! series are byte-identical across backends, mmap needs `--features
//! mmap`), `--emit-json DIR` (write each table as `BENCH_<figure>.json`
//! for the CI baseline diff performed by the `bench_diff` binary) and
//! `--snapshot-dir DIR` (serve the figure from a persisted index snapshot
//! reopened zero-copy instead of a freshly built index; deterministic
//! output is identical, and the emitted policy's `cold_start` stamp
//! records the provenance). See [`cli`] and [`emit`]. The `cold_start`
//! runner compares the deterministic bring-up work (pages touched, bytes
//! decoded) of the built and snapshot paths per backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod emit;
pub mod metrics;
pub mod runner;
pub mod workloads;

pub use cli::{materialize_backend, note_cluster_topology, note_cold_start, BenchArgs};
pub use emit::{
    compare_figures, compare_figures_with_tolerance, read_figure, table_to_series, write_figure,
    FigureSeries,
};
pub use metrics::{MethodMeasurement, MethodSeries};
pub use runner::{
    measure_iterative, measure_method, measure_method_threaded, print_table, ExperimentTable,
};
pub use workloads::{BenchDataset, Scale, StagedSnapshotDir};
