//! Cold start — deterministic bring-up cost of a built index vs a
//! reopened snapshot, per storage backend.
//!
//! For every available backend the runner brings the ST index up twice —
//! once built from the raw dataset, once reopened from a persisted
//! snapshot — and reports the [`ir_storage::ColdStartInfo`] work metrics:
//! pages touched and bytes decoded. Both are deterministic (never
//! wall-clock), so the emitted `BENCH_coldstart.json` is byte-stable
//! across machines.
//!
//! The runner is self-checking and exits non-zero unless the snapshot
//! wins where the format guarantees it must:
//!
//! * bytes decoded: snapshot < built on *every* backend (the open parses
//!   only the fixed-width trailer, never a posting or tuple), and
//! * pages touched: snapshot < built on the file and mmap backends, where
//!   the open reads only the trailer pages and serves data pages in
//!   place. The mem backend is exempt — it has no file to serve from, so
//!   the open materializes every page once and the page counts tie at
//!   best.

use immutable_regions::engine::{EngineResult, IrEngine};
use ir_bench::{note_cold_start, print_table, BenchArgs, BenchDataset, ExperimentTable, Scale};
use ir_storage::{BackendKind, ColdStartInfo, ColdStartSource, StorageBackend};
use std::path::Path;
use std::time::Instant;

/// Brings the index up from the raw dataset on `kind` and reports the work.
fn built_info(dataset: &ir_types::Dataset, kind: BackendKind) -> EngineResult<ColdStartInfo> {
    let (storage, scratch) = ir_bench::materialize_backend(kind)?;
    let engine = IrEngine::builder()
        .dataset_ref(dataset)
        .backend(storage)
        .build()?;
    drop(scratch);
    let info = engine.cold_start_info();
    note_cold_start(info);
    Ok(info)
}

/// Reopens the saved snapshot on `kind` and reports the work.
fn snapshot_info(staged: &Path, kind: BackendKind) -> EngineResult<ColdStartInfo> {
    let storage = match kind {
        BackendKind::Mem => StorageBackend::Memory,
        BackendKind::File => StorageBackend::Disk(staged.to_path_buf()),
        BackendKind::Mmap => StorageBackend::Mmap(staged.to_path_buf()),
    };
    let engine = IrEngine::builder()
        .open_snapshot(staged)
        .backend(storage)
        .build()?;
    let info = engine.cold_start_info();
    note_cold_start(info);
    Ok(info)
}

/// A table row carrying the cold-start work metrics: pages touched in the
/// `logical_reads` column, bytes decoded (as KiB) in `memory_kbytes`.
fn row(
    source: ColdStartSource,
    backend_index: usize,
    info: ColdStartInfo,
) -> ir_bench::MethodMeasurement {
    ir_bench::MethodMeasurement {
        algorithm: source.to_string(),
        x: backend_index as f64,
        evaluated_per_dim: 0.0,
        io_time_ms: 0.0,
        cpu_time_ms: 0.0,
        memory_kbytes: info.bytes as f64 / 1024.0,
        logical_reads: info.pages as f64,
        physical_reads: 0.0,
    }
}

fn main() -> EngineResult<()> {
    let args = BenchArgs::parse();
    let started = Instant::now();
    let scale = Scale::from_env();
    let dataset = BenchDataset::St.generate(scale);

    // One snapshot serves every backend: save it from a pristine
    // in-memory build into a scratch (or the user-provided) staging root.
    let scratch = tempfile::tempdir()
        .map_err(|e| ir_types::IrError::Storage(format!("creating snapshot scratch dir: {e}")))?;
    let root = args
        .snapshot_dir
        .clone()
        .unwrap_or_else(|| scratch.path().to_path_buf());
    // The guard removes the staged dir when the runner exits (success or
    // error), so repeated runs never accrete snapshots under the user's
    // `--snapshot-dir`.
    let staged_guard = ir_bench::StagedSnapshotDir::unique(&root);
    let staged = staged_guard.path().to_path_buf();
    let builder_engine = IrEngine::builder().dataset_ref(&dataset).build()?;
    let summary = builder_engine.save_snapshot(&staged)?;
    drop(builder_engine);
    println!(
        "snapshot: {} data + {} trailer pages, {} bytes on disk",
        summary.data_pages, summary.trailer_pages, summary.file_bytes
    );

    let mut backends = vec![BackendKind::Mem, BackendKind::File];
    if cfg!(feature = "mmap") {
        backends.push(BackendKind::Mmap);
    }

    let mut table = ExperimentTable::new(
        "Cold start — bring-up work per backend (pages = logical reads column, KiB decoded = memory column)",
        "backend#",
    );
    let mut violations = Vec::new();
    for (i, kind) in backends.iter().copied().enumerate() {
        let built = built_info(&dataset, kind)?;
        let snap = snapshot_info(&staged, kind)?;
        assert_eq!(built.source, ColdStartSource::Built);
        assert_eq!(snap.source, ColdStartSource::Snapshot);
        table.push(row(built.source, i, built));
        table.push(row(snap.source, i, snap));
        println!(
            "{kind}: built {{pages: {}, bytes: {}}} vs snapshot {{pages: {}, bytes: {}}}",
            built.pages, built.bytes, snap.pages, snap.bytes
        );
        if snap.bytes >= built.bytes {
            violations.push(format!(
                "{kind}: snapshot decoded {} bytes, built decoded {} — the open must never parse more",
                snap.bytes, built.bytes
            ));
        }
        if kind != BackendKind::Mem && snap.pages >= built.pages {
            violations.push(format!(
                "{kind}: snapshot touched {} pages, built touched {} — the open must serve data pages in place",
                snap.pages, built.pages
            ));
        }
    }

    print_table(&table);
    args.emit("coldstart", &table)?;
    args.report_wall_clock(started);

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("cold-start violation: {v}");
        }
        std::process::exit(1);
    }
    Ok(())
}
