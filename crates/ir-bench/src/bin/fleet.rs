//! Fleet service benchmark: a `SubscriptionManager` under an open-loop
//! drift stream, at growing fleet sizes.
//!
//! For every fleet size N the runner admits N subscriptions over the ST
//! workload queries, generates a deterministic Zipf-popular drift stream
//! (`ir_datagen::drift`), ingests it through the manager, and reports
//! **deterministic counter distributions** — never wall-clock — so the
//! emitted `BENCH_fleet.json` is byte-stable across machines and CI can
//! diff it exactly:
//!
//! * `CheckCost` — per-answer recompute cost (evaluated candidates; 0 for
//!   a local answer): p50 in the `evaluated_per_dim` column, p99 in
//!   `logical_reads`, mean in `memory_kbytes`.
//! * `Service` — hit ratio in `evaluated_per_dim`, locally served events
//!   in `logical_reads`, batched recomputes in `memory_kbytes`.
//! * `Batches` — flushed batches in `evaluated_per_dim`, largest batch in
//!   `logical_reads`, mean batch size in `memory_kbytes`.
//!
//! The runner is self-checking and exits non-zero unless the fleet
//! economics hold: every event answered exactly once, the in-region
//! majority served locally, batches bounded by the configured maximum,
//! and the manager's statistics in agreement with the engine's shared
//! fleet health counters.

use immutable_regions::engine::EngineResult;
use immutable_regions::fleet::{FleetConfig, SubscriptionManager};
use ir_bench::{print_table, BenchArgs, BenchDataset, ExperimentTable, MethodMeasurement, Scale};
use ir_datagen::{DriftConfig, DriftStream};
use ir_types::QueryVector;
use std::time::Instant;

/// Fleet sizes per scale (the x-axis).
fn fleet_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![8, 16, 32],
        Scale::Default => vec![64, 128, 256],
        Scale::Full => vec![512, 2_048, 8_192],
    }
}

/// Drift events per subscription at each scale.
fn events_per_sub(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 25,
        Scale::Default => 50,
        Scale::Full => 100,
    }
}

/// A packed table row (see the module docs for the column mapping).
fn row(series: &str, x: f64, a: f64, b: f64, c: f64) -> MethodMeasurement {
    MethodMeasurement {
        algorithm: series.to_string(),
        x,
        evaluated_per_dim: a,
        io_time_ms: 0.0,
        cpu_time_ms: 0.0,
        memory_kbytes: c,
        logical_reads: b,
        physical_reads: 0.0,
    }
}

/// The `q`-quantile of a sorted counter distribution (nearest-rank).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() -> EngineResult<()> {
    let args = BenchArgs::parse();
    let started = Instant::now();
    let scale = Scale::from_env();
    let mut table = ExperimentTable::new(
        "Fleet service — drift-stream serving cost per fleet size (p50/p99/mean of evaluated candidates; hit ratio; batch shape)",
        "fleet size",
    );
    let mut violations = Vec::new();

    for n in fleet_sizes(scale) {
        let (engine, workload) = BenchDataset::St.prepare_engine_for(scale, 3, 10, n, &args)?;
        let fleet: Vec<(u64, QueryVector)> = workload
            .queries()
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, q)| (i as u64, q))
            .collect();
        let mut manager = SubscriptionManager::new(
            &engine,
            FleetConfig {
                max_batch: 16,
                ..FleetConfig::default()
            },
        )?;
        manager.admit_all(fleet.clone())?;

        // Nudges sized for the ST workload's region widths: the stream
        // must be dominated by in-region drift (that is the paper's
        // premise), with a steady minority of region-exiting jumps.
        let drift = DriftConfig {
            num_events: n * events_per_sub(scale),
            small_delta: 0.004,
            large_delta: 0.3,
            large_every: 10,
            ..DriftConfig::default()
        };
        let stream = DriftStream::generate(&fleet, &drift, 0xD21F7)?;
        let answers = manager.ingest(stream.events())?;
        let stats = manager.stats();

        let mut costs: Vec<u64> = answers.iter().map(|a| a.evaluated_candidates).collect();
        costs.sort_unstable();
        let mean = costs.iter().sum::<u64>() as f64 / costs.len().max(1) as f64;
        let mean_batch = if stats.batches == 0 {
            0.0
        } else {
            stats.recomputes as f64 / stats.batches as f64
        };

        println!(
            "fleet {n}: {} events, hit ratio {:.3}, {} batches (largest {}), check cost p50 {} p99 {}",
            stats.events,
            stats.hit_ratio(),
            stats.batches,
            stats.largest_batch,
            quantile(&costs, 0.50),
            quantile(&costs, 0.99),
        );

        table.push(row(
            "CheckCost",
            n as f64,
            quantile(&costs, 0.50) as f64,
            quantile(&costs, 0.99) as f64,
            mean,
        ));
        table.push(row(
            "Service",
            n as f64,
            stats.hit_ratio(),
            stats.local_answers as f64,
            stats.recomputes as f64,
        ));
        table.push(row(
            "Batches",
            n as f64,
            stats.batches as f64,
            stats.largest_batch as f64,
            mean_batch,
        ));

        // Self checks: the economics the fleet exists for.
        if answers.len() != stream.len() {
            violations.push(format!(
                "fleet {n}: {} answers for {} events",
                answers.len(),
                stream.len()
            ));
        }
        if stats.local_answers + stats.recomputes != stats.events {
            violations.push(format!(
                "fleet {n}: local {} + recomputed {} != events {}",
                stats.local_answers, stats.recomputes, stats.events
            ));
        }
        if stats.hit_ratio() <= 0.5 {
            violations.push(format!(
                "fleet {n}: hit ratio {:.3} — the in-region majority must be served locally",
                stats.hit_ratio()
            ));
        }
        if stats.largest_batch > manager.config().max_batch as u64 {
            violations.push(format!(
                "fleet {n}: batch of {} exceeds max_batch {}",
                stats.largest_batch,
                manager.config().max_batch
            ));
        }
        let health = engine.health();
        if health.fleet_local_answers != stats.local_answers
            || health.fleet_recomputes != stats.recomputes
            || health.fleet_batches != stats.batches
        {
            violations.push(format!(
                "fleet {n}: engine health counters disagree with manager stats ({health:?} vs {stats:?})"
            ));
        }
    }

    print_table(&table);
    args.emit("fleet", &table)?;
    args.report_wall_clock(started);

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("fleet violation: {v}");
        }
        std::process::exit(1);
    }
    Ok(())
}
