//! Figure 14: WSJ, k = 10, qlen = 4, varying φ ∈ {0, 10, 20, 30, 40}.

use ir_bench::{measure_method, print_table, BenchDataset, ExperimentTable, Scale};
use ir_core::{Algorithm, RegionConfig};
use ir_types::IrResult;

fn main() -> IrResult<()> {
    let scale = Scale::from_env();
    let queries = BenchDataset::queries_per_point(scale);
    let phis: &[usize] = match scale {
        Scale::Smoke => &[0, 5, 10],
        _ => &[0, 10, 20, 30, 40],
    };
    let (index, workload) = BenchDataset::Wsj.prepare(scale, 4, 10, queries)?;
    let mut table = ExperimentTable::new(
        "Figure 14 — WSJ-like corpus, k = 10, qlen = 4, varying φ (one-off)",
        "phi",
    );
    for &phi in phis {
        for algorithm in Algorithm::ALL {
            let row = measure_method(
                &index,
                &workload,
                algorithm,
                RegionConfig::with_phi(algorithm, phi),
                phi as f64,
            )?;
            table.push(row);
        }
    }
    print_table(&table);
    Ok(())
}
