//! Figure 14: WSJ, k = 10, qlen = 4, varying φ ∈ {0, 10, 20, 30, 40}.

use immutable_regions::engine::EngineResult;
use ir_bench::{
    measure_method_threaded, print_table, BenchArgs, BenchDataset, ExperimentTable, Scale,
};
use ir_core::{Algorithm, RegionConfig};
use std::time::Instant;

fn main() -> EngineResult<()> {
    let args = BenchArgs::parse();
    let started = Instant::now();
    let scale = Scale::from_env();
    let queries = BenchDataset::queries_per_point(scale);
    let phis: &[usize] = match scale {
        Scale::Smoke => &[0, 5, 10],
        _ => &[0, 10, 20, 30, 40],
    };
    let (engine, workload) = BenchDataset::Wsj.prepare_engine_for(scale, 4, 10, queries, &args)?;
    let mut table = ExperimentTable::new(
        "Figure 14 — WSJ-like corpus, k = 10, qlen = 4, varying φ (one-off)",
        "phi",
    );
    for &phi in phis {
        for algorithm in Algorithm::ALL {
            let row = measure_method_threaded(
                &engine,
                &workload,
                algorithm,
                RegionConfig::with_phi(algorithm, phi),
                phi as f64,
            )?;
            table.push(row);
        }
    }
    print_table(&table);
    args.emit("figure14_vary_phi", &table)?;
    args.report_wall_clock(started);
    Ok(())
}
