//! Diffs freshly emitted `BENCH_<figure>.json` series against a committed
//! baseline directory.
//!
//! Usage: `bench_diff [--update-baseline] [--exact] <baseline_dir> <candidate_dir>`
//!
//! Every `BENCH_*.json` in the baseline must exist in the candidate and
//! pass [`ir_bench::compare_figures`]: same methods, same x grids, the
//! deterministic metrics (evaluated candidates, logical reads, memory)
//! within 1%, and the cross-method dominance shape intact. Wall-clock and
//! physical-read metrics are never compared.
//!
//! Exit status distinguishes the failure class: **1** for metric
//! mismatches (or unreadable files) — a regression in committed coverage —
//! and **2** when the only violations are *missing series* (a candidate
//! emission with no committed baseline, or a baseline the run no longer
//! emits): coverage drift that is fixed by committing or pruning a
//! baseline, not by chasing a metric. Mixed failures exit 1, the severer
//! class. The CI regression gate treats both as failures but the message
//! (and status) tell the operator which playbook applies.
//!
//! With `--exact`, the deterministic metrics must match with zero
//! tolerance — the mode the CI backend matrix uses to prove that a mem-
//! backend emission and an mmap-backend emission of the same workload are
//! interchangeable (timing/physical-read metrics stay exempt: those are
//! the io counters that legitimately differ).
//!
//! With `--update-baseline`, an intentional change is accepted instead:
//! every candidate `BENCH_*.json` is copied over the baseline directory
//! (commit the result) and the exit code is 0.

use ir_bench::{compare_figures, compare_figures_with_tolerance, read_figure};
use std::path::Path;
use std::process::ExitCode;

fn bench_files(dir: &str) -> Result<Vec<String>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot read dir {dir}: {e}"))?;
    let mut files: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    files.sort();
    Ok(files)
}

fn update_baseline(baseline_dir: &str, candidate_dir: &str) -> ExitCode {
    let candidate_files = match bench_files(candidate_dir) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    if candidate_files.is_empty() {
        eprintln!("bench_diff: no BENCH_*.json files in {candidate_dir} to adopt");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::create_dir_all(baseline_dir) {
        eprintln!("bench_diff: cannot create {baseline_dir}: {e}");
        return ExitCode::FAILURE;
    }
    for name in &candidate_files {
        let from = Path::new(candidate_dir).join(name);
        let to = Path::new(baseline_dir).join(name);
        if let Err(e) = std::fs::copy(&from, &to) {
            eprintln!("bench_diff: copying {name}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench_diff: refreshed {}", to.display());
    }
    // Prune series the candidate run no longer emits (renamed or removed
    // figures) — otherwise the refreshed baseline keeps failing with
    // "missing from candidate run".
    if let Ok(baseline_files) = bench_files(baseline_dir) {
        for stale in baseline_files
            .iter()
            .filter(|name| !candidate_files.contains(name))
        {
            let path = Path::new(baseline_dir).join(stale);
            if let Err(e) = std::fs::remove_file(&path) {
                eprintln!("bench_diff: removing stale {stale}: {e}");
                return ExitCode::FAILURE;
            }
            println!("bench_diff: removed stale {}", path.display());
        }
    }
    println!(
        "bench_diff: baseline updated from {} series — review and commit {baseline_dir}",
        candidate_files.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut update = false;
    let mut exact = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--update-baseline" {
            update = true;
        } else if arg == "--exact" {
            exact = true;
        } else {
            positional.push(arg);
        }
    }
    let [baseline_dir, candidate_dir] = positional.as_slice() else {
        eprintln!("usage: bench_diff [--update-baseline] [--exact] <baseline_dir> <candidate_dir>");
        return ExitCode::FAILURE;
    };

    if update {
        return update_baseline(baseline_dir, candidate_dir);
    }

    let baseline_files = match bench_files(baseline_dir) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    if baseline_files.is_empty() {
        eprintln!("no BENCH_*.json files in {baseline_dir}");
        return ExitCode::FAILURE;
    }

    // Violations grouped per series file, so the offender is named up
    // front. Missing-series violations (coverage drift) are tracked apart
    // from metric mismatches (regressions) — they exit with different
    // status codes.
    let mut missing: Vec<(String, String)> = Vec::new();
    let mut mismatches: Vec<(String, Vec<String>)> = Vec::new();
    let mut compared = 0usize;

    // Candidate emissions with no committed baseline would otherwise get
    // zero regression coverage forever — flag them.
    if let Ok(candidate_files) = bench_files(candidate_dir) {
        for name in candidate_files {
            if !baseline_files.contains(&name) {
                missing.push((
                    name.clone(),
                    format!("emitted but not in the baseline — commit it to {baseline_dir}"),
                ));
            }
        }
    }

    for name in &baseline_files {
        let mut file_violations: Vec<String> = Vec::new();
        match read_figure(&Path::new(baseline_dir).join(name)) {
            Ok(baseline) => {
                let candidate_path = Path::new(candidate_dir).join(name);
                if !candidate_path.exists() {
                    missing.push((
                        name.clone(),
                        "in the baseline but missing from the candidate run".to_string(),
                    ));
                } else {
                    match read_figure(&candidate_path) {
                        Ok(candidate) => {
                            file_violations.extend(if exact {
                                compare_figures_with_tolerance(&baseline, &candidate, 0.0)
                            } else {
                                compare_figures(&baseline, &candidate)
                            });
                            compared += 1;
                        }
                        Err(e) => file_violations.push(format!("candidate unreadable: {e}")),
                    }
                }
            }
            Err(e) => file_violations.push(format!("baseline unreadable: {e}")),
        }
        if !file_violations.is_empty() {
            mismatches.push((name.clone(), file_violations));
        }
    }

    if missing.is_empty() && mismatches.is_empty() {
        println!("bench_diff: {compared} figure series match the baseline");
        return ExitCode::SUCCESS;
    }

    if !mismatches.is_empty() {
        let total: usize = mismatches.iter().map(|(_, v)| v.len()).sum();
        eprintln!(
            "bench_diff: {total} metric violation(s) in {} series file(s):",
            mismatches.len()
        );
        for (name, file_violations) in &mismatches {
            eprintln!("  {name}:");
            for v in file_violations {
                eprintln!("    - {v}");
            }
        }
    }
    if !missing.is_empty() {
        eprintln!(
            "bench_diff: {} missing series (coverage drift, no metric compared):",
            missing.len()
        );
        for (name, reason) in &missing {
            eprintln!("  {name}: {reason}");
        }
    }
    eprintln!(
        "\nIf this change is intentional (new series, expected metric shift), refresh the \
         committed baseline with:\n  bench_diff --update-baseline {baseline_dir} {candidate_dir}\n\
         then review and commit the updated {baseline_dir}/BENCH_*.json files."
    );
    // Metric mismatch (or unreadable file): exit 1. Pure coverage drift
    // (series missing on one side only): exit 2, so callers can tell a
    // regression from an uncommitted baseline without parsing stderr.
    if mismatches.is_empty() {
        ExitCode::from(2)
    } else {
        ExitCode::FAILURE
    }
}
