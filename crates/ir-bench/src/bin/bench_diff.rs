//! Diffs freshly emitted `BENCH_<figure>.json` series against a committed
//! baseline directory.
//!
//! Usage: `bench_diff <baseline_dir> <candidate_dir>`
//!
//! Every `BENCH_*.json` in the baseline must exist in the candidate and
//! pass [`ir_bench::compare_figures`]: same methods, same x grids, the
//! deterministic metrics (evaluated candidates, logical reads, memory)
//! within 1%, and the cross-method dominance shape intact. Wall-clock and
//! physical-read metrics are never compared. Exit code 1 on any violation —
//! the CI regression gate.

use ir_bench::{compare_figures, read_figure};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_dir, candidate_dir] = args.as_slice() else {
        eprintln!("usage: bench_diff <baseline_dir> <candidate_dir>");
        return ExitCode::FAILURE;
    };

    let mut baseline_files: Vec<_> = match std::fs::read_dir(baseline_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read baseline dir {baseline_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    baseline_files.sort();
    if baseline_files.is_empty() {
        eprintln!("no BENCH_*.json files in {baseline_dir}");
        return ExitCode::FAILURE;
    }

    let mut violations: Vec<String> = Vec::new();
    let mut compared = 0usize;

    // Candidate emissions with no committed baseline would otherwise get
    // zero regression coverage forever — flag them.
    if let Ok(entries) = std::fs::read_dir(candidate_dir) {
        for name in entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        {
            if !baseline_files.contains(&name) {
                violations.push(format!(
                    "{name}: emitted but not in the baseline — commit it to {baseline_dir}"
                ));
            }
        }
    }

    for name in &baseline_files {
        let baseline = match read_figure(&Path::new(baseline_dir).join(name)) {
            Ok(series) => series,
            Err(e) => {
                violations.push(format!("baseline {name}: {e}"));
                continue;
            }
        };
        let candidate_path = Path::new(candidate_dir).join(name);
        if !candidate_path.exists() {
            violations.push(format!("{name}: missing from candidate run"));
            continue;
        }
        match read_figure(&candidate_path) {
            Ok(candidate) => {
                violations.extend(compare_figures(&baseline, &candidate));
                compared += 1;
            }
            Err(e) => violations.push(format!("candidate {name}: {e}")),
        }
    }

    if violations.is_empty() {
        println!("bench_diff: {compared} figure series match the baseline");
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_diff: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        ExitCode::FAILURE
    }
}
