//! Figure 15: one-off φ > 0 computation versus iterative re-evaluation of
//! single-region requests, for Prune and CPT.

use immutable_regions::engine::EngineResult;
use ir_bench::{
    measure_iterative, measure_method_threaded, print_table, BenchArgs, BenchDataset,
    ExperimentTable, Scale,
};
use ir_core::{Algorithm, RegionConfig};
use std::time::Instant;

fn main() -> EngineResult<()> {
    let args = BenchArgs::parse();
    let started = Instant::now();
    let scale = Scale::from_env();
    let queries = BenchDataset::queries_per_point(scale).min(10);
    let phis: &[usize] = match scale {
        Scale::Smoke => &[1, 3, 5],
        _ => &[1, 5, 10, 20, 40],
    };
    let (engine, workload) = BenchDataset::Wsj.prepare_engine_for(scale, 4, 10, queries, &args)?;
    let mut table = ExperimentTable::new(
        "Figure 15 — one-off vs iterative processing, WSJ-like, k = 10, qlen = 4",
        "phi",
    );
    for &phi in phis {
        for algorithm in [Algorithm::Prune, Algorithm::Cpt] {
            table.push(measure_method_threaded(
                &engine,
                &workload,
                algorithm,
                RegionConfig::with_phi(algorithm, phi),
                phi as f64,
            )?);
            table.push(measure_iterative(
                &engine, &workload, algorithm, phi, phi as f64,
            )?);
        }
    }
    print_table(&table);
    args.emit("figure15_oneoff_vs_iterative", &table)?;
    args.report_wall_clock(started);
    Ok(())
}
