//! Ablation study over the design choices called out in DESIGN.md:
//!
//! 1. **TA probe strategy** — the weighted-key heuristic of Section 7.1
//!    versus plain round-robin: sorted/random accesses and candidate-list
//!    size per query.
//! 2. **Buffer-pool size** — how the physical-I/O gap between Scan and CPT
//!    opens up as the pool shrinks (the disk-resident regime of the paper)
//!    and closes when everything fits in memory (its Section 7.5,
//!    conclusion 4).
//! 3. **Pruning and thresholding in isolation** — the per-dimension pool
//!    sizes each technique leaves for Phase 2 on each dataset kind.
//!
//! Run with `cargo run --release -p ir-bench --bin ablation_design_choices`.

use immutable_regions::engine::{EngineResult, IrEngine};
use ir_bench::{BenchArgs, BenchDataset, Scale};
use ir_core::{Algorithm, RegionConfig, RegionReport};
use ir_storage::IoConfig;
use ir_topk::{ProbeStrategy, TaConfig, TaRun};
use ir_types::QueryVector;
use std::time::Instant;

fn main() -> EngineResult<()> {
    let args = BenchArgs::parse();
    let started = Instant::now();
    let scale = Scale::from_env();
    probe_strategy_ablation(scale, &args)?;
    pool_size_ablation(scale, &args)?;
    phase2_pool_ablation(scale, &args)?;
    args.report_wall_clock(started);
    Ok(())
}

/// Measures on the sequential path — the printed ablation numbers are
/// identical for every `--threads` value. With more than one worker, a
/// second computation then exercises the per-dimension parallel driver and
/// its regions are checked against the sequential ones; it runs *after*
/// measurement so the measured cache behaviour is untouched.
fn measure_and_check(
    engine: &IrEngine,
    query: &QueryVector,
    config: RegionConfig,
) -> EngineResult<RegionReport> {
    let mut computation = engine.computation_with(query, config)?;
    let report = computation.compute()?;
    if engine.threads() > 1 {
        let check = engine.computation_with(query, config)?;
        let parallel = check.compute_parallel(engine.threads())?;
        assert_eq!(
            report.dims, parallel.dims,
            "parallel regions diverged from sequential"
        );
    }
    Ok(report)
}

fn probe_strategy_ablation(scale: Scale, args: &BenchArgs) -> EngineResult<()> {
    println!("=== Ablation 1: TA probe strategy (k = 10, qlen = 4) ===");
    println!(
        "{:<10} {:<14} {:>16} {:>16} {:>12}",
        "dataset", "strategy", "sorted accesses", "random accesses", "|C(q)|"
    );
    for dataset in [BenchDataset::Wsj, BenchDataset::Kb, BenchDataset::St] {
        let (engine, workload) = dataset.prepare_engine_for(scale, 4, 10, 5, args)?;
        for (name, strategy) in [
            ("round-robin", ProbeStrategy::RoundRobin),
            ("weighted-key", ProbeStrategy::WeightedKey),
        ] {
            let mut sorted = 0u64;
            let mut random = 0u64;
            let mut candidates = 0usize;
            for query in workload.iter() {
                let run = TaRun::execute(
                    engine.index(),
                    query,
                    &TaConfig {
                        probe_strategy: strategy,
                    },
                )?;
                sorted += run.stats().sorted_accesses;
                random += run.stats().random_accesses;
                candidates += run.candidates().len();
            }
            let n = workload.len() as f64;
            println!(
                "{:<10} {:<14} {:>16.1} {:>16.1} {:>12.1}",
                dataset.name(),
                name,
                sorted as f64 / n,
                random as f64 / n,
                candidates as f64 / n
            );
        }
    }
    println!();
    Ok(())
}

fn pool_size_ablation(scale: Scale, args: &BenchArgs) -> EngineResult<()> {
    println!("=== Ablation 2: buffer-pool size (WSJ-like, k = 10, qlen = 4) ===");
    println!(
        "{:<12} {:<8} {:>16} {:>16} {:>14}",
        "pool pages", "method", "logical reads", "physical reads", "sim. I/O (ms)"
    );
    let dataset = BenchDataset::Wsj.generate(scale);
    let workload = {
        let (_, workload) = BenchDataset::Wsj.prepare(scale, 4, 10, 5)?;
        workload
    };
    for pool_pages in [16usize, 128, 1024, 8192] {
        // A fresh engine per pool budget: the pool size is a build-time
        // storage choice, exactly what the engine builder exposes. The
        // dataset is borrowed, not cloned — only the index is rebuilt.
        let (storage, scratch) = args.storage_backend()?;
        let engine = IrEngine::builder()
            .dataset_ref(&dataset)
            .backend(storage)
            .pool_capacity(pool_pages)
            .io_config(IoConfig::default())
            .threads(args.threads)
            .build()?;
        drop(scratch);
        for algorithm in [Algorithm::Scan, Algorithm::Cpt] {
            let mut logical = 0u64;
            let mut physical = 0u64;
            for query in workload.iter() {
                engine.cold_start();
                let report = measure_and_check(&engine, query, RegionConfig::flat(algorithm))?;
                logical += report.stats.io.logical_reads;
                physical += report.stats.io.physical_reads;
            }
            let n = workload.len() as f64;
            let io_ms =
                engine.index().io_config().page_read_latency.as_secs_f64() * 1e3 * physical as f64
                    / n;
            println!(
                "{:<12} {:<8} {:>16.1} {:>16.1} {:>14.2}",
                pool_pages,
                algorithm,
                logical as f64 / n,
                physical as f64 / n,
                io_ms
            );
        }
    }
    println!();
    Ok(())
}

fn phase2_pool_ablation(scale: Scale, args: &BenchArgs) -> EngineResult<()> {
    println!("=== Ablation 3: evaluated candidates per technique (k = 10, qlen = 4) ===");
    println!(
        "{:<10} {:<8} {:>20} {:>16}",
        "dataset", "method", "evaluated cands/dim", "initial |C(q)|"
    );
    for dataset in [BenchDataset::Wsj, BenchDataset::Kb, BenchDataset::St] {
        let (engine, workload) = dataset.prepare_engine_for(scale, 4, 10, 5, args)?;
        for algorithm in Algorithm::ALL {
            let mut evaluated = 0.0;
            let mut initial = 0usize;
            for query in workload.iter() {
                let report = measure_and_check(&engine, query, RegionConfig::flat(algorithm))?;
                evaluated += report.stats.evaluated_per_dim_avg();
                initial += report.stats.initial_candidates;
            }
            let n = workload.len() as f64;
            println!(
                "{:<10} {:<8} {:>20.2} {:>16.1}",
                dataset.name(),
                algorithm,
                evaluated / n,
                initial as f64 / n
            );
        }
    }
    Ok(())
}
