//! Dynamic-data benchmark: a subscription fleet under tuple churn.
//!
//! For every churn rate the runner builds the WSJ-like engine, admits a
//! fleet of subscriptions, generates a deterministic Zipf-popular
//! [`UpdateStream`] and applies it in maintenance batches through
//! [`SubscriptionManager::apply_updates`]. It reports **deterministic
//! counter series** — never wall-clock — so the emitted
//! `BENCH_dynamic.json` is byte-stable across machines, backends and
//! worker counts, and CI can diff it exactly:
//!
//! * `Survival` — region survival ratio in `evaluated_per_dim`, regions
//!   survived in `logical_reads`, regions punctured in `memory_kbytes`.
//! * `Maintenance` — maintenance logical page reads in
//!   `evaluated_per_dim`, maintenance pages written in `logical_reads`,
//!   inverted-list rewrites in `memory_kbytes`.
//! * `RebuildIO` — pages written / bytes encoded by ONE full index
//!   rebuild on the mutated dataset in `evaluated_per_dim` /
//!   `logical_reads`, maintenance batches applied in `memory_kbytes`.
//!
//! The economics claim under test: in-place maintenance replaces the
//! rebuild-per-batch strategy (rebuilding the index after every update
//! batch is the only other way to keep serving fresh results), so the
//! runner exits non-zero unless the *entire* maintenance I/O bill for the
//! stream is strictly below `batches × one-rebuild I/O` — the bill the
//! rebuild strategy would pay for the same freshness.
//!
//! It also enforces the oracle law at serving level: after the stream,
//! every incremental query answer and every fleet member's region report
//! must be byte-identical to a freshly built engine on the mutated
//! dataset, and the manager/engine health counters must agree.

use immutable_regions::engine::{EngineResult, IrEngine};
use immutable_regions::fleet::{FleetConfig, SubscriptionManager};
use ir_bench::{print_table, BenchArgs, BenchDataset, ExperimentTable, MethodMeasurement, Scale};
use ir_datagen::{UpdateConfig, UpdateStream};
use ir_types::QueryVector;
use std::time::Instant;

/// Churn rates (fraction of updates that are inserts/deletes) — the x-axis,
/// in percent.
const CHURN_PERCENTS: [u64; 3] = [10, 40, 80];

/// Updates per churn level at each scale.
fn updates_for(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 120,
        Scale::Default => 600,
        Scale::Full => 3_000,
    }
}

/// Fleet size at each scale.
fn fleet_size(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 8,
        Scale::Default => 32,
        Scale::Full => 128,
    }
}

/// A packed table row (see the module docs for the column mapping).
fn row(series: &str, x: f64, a: f64, b: f64, c: f64) -> MethodMeasurement {
    MethodMeasurement {
        algorithm: series.to_string(),
        x,
        evaluated_per_dim: a,
        io_time_ms: 0.0,
        cpu_time_ms: 0.0,
        memory_kbytes: c,
        logical_reads: b,
        physical_reads: 0.0,
    }
}

fn main() -> EngineResult<()> {
    let args = BenchArgs::parse();
    let started = Instant::now();
    let scale = Scale::from_env();
    let mut table = ExperimentTable::new(
        "Dynamic data — region survival and maintenance I/O vs full-rebuild I/O per churn rate",
        "churn %",
    );
    let mut violations = Vec::new();

    let dataset = BenchDataset::Wsj.generate(scale);
    let num_subs = fleet_size(scale);
    let workload = BenchDataset::Wsj.workload_for(&dataset, 3, 10, num_subs)?;
    let fleet: Vec<(u64, QueryVector)> = workload
        .queries()
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, q)| (i as u64, q))
        .collect();

    for churn_pct in CHURN_PERCENTS {
        let (engine, _) = BenchDataset::Wsj.prepare_engine_for(scale, 3, 10, num_subs, &args)?;
        let mut manager = SubscriptionManager::new(
            &engine,
            FleetConfig {
                max_batch: 16,
                ..FleetConfig::default()
            },
        )?;
        manager.admit_all(fleet.clone())?;

        let stream = UpdateStream::generate(
            &dataset,
            &UpdateConfig {
                num_updates: updates_for(scale),
                churn: churn_pct as f64 / 100.0,
                zipf_exponent: 1.0,
                remove_fraction: 0.1,
            },
            0xD1DA ^ churn_pct,
        )?;
        let mut batches = 0u64;
        for batch in stream.batches(16) {
            manager.apply_updates(batch)?;
            batches += 1;
        }
        let maint = engine.maintenance_stats();
        let stats = manager.stats();
        let screened = stats.regions_survived + stats.regions_punctured;
        let survival = if screened == 0 {
            1.0
        } else {
            stats.regions_survived as f64 / screened as f64
        };

        // The alternative strategy: one full rebuild on the mutated
        // dataset (per batch, were it to stay fresh). Its build I/O is
        // read before any query touches the fresh engine.
        let mutated = dataset.with_updates(stream.updates())?;
        let (storage, scratch) = args.storage_backend()?;
        let rebuilt = IrEngine::builder()
            .dataset_ref(&mutated)
            .backend(storage)
            .threads(args.threads)
            .build()?;
        let rebuild = rebuilt.cold_start_info();
        drop(scratch);

        let maint_io = maint.logical_reads + maint.pages_written;
        let rebuild_cost = batches * rebuild.pages;
        println!(
            "churn {churn_pct}%: {} updates in {batches} batches, survival {survival:.3} \
             ({} survived / {} punctured), maintenance I/O {maint_io} vs rebuild-per-batch \
             {rebuild_cost} ({batches} × {})",
            stats.updates_applied, stats.regions_survived, stats.regions_punctured, rebuild.pages,
        );

        table.push(row(
            "Survival",
            churn_pct as f64,
            survival,
            stats.regions_survived as f64,
            stats.regions_punctured as f64,
        ));
        table.push(row(
            "Maintenance",
            churn_pct as f64,
            maint.logical_reads as f64,
            maint.pages_written as f64,
            maint.lists_rewritten as f64,
        ));
        table.push(row(
            "RebuildIO",
            churn_pct as f64,
            rebuild.pages as f64,
            rebuild.bytes as f64,
            batches as f64,
        ));

        // Self-checks: the economics and the oracle law the update model
        // exists for.
        if stats.updates_applied != stream.len() as u64 {
            violations.push(format!(
                "churn {churn_pct}%: {} updates applied for a stream of {}",
                stats.updates_applied,
                stream.len()
            ));
        }
        if maint.batches != batches || maint.updates_applied != stream.len() as u64 {
            violations.push(format!(
                "churn {churn_pct}%: index maintenance counters ({} batches, {} updates) \
                 disagree with the stream ({batches} batches, {} updates)",
                maint.batches,
                maint.updates_applied,
                stream.len()
            ));
        }
        if screened != num_subs as u64 * batches {
            violations.push(format!(
                "churn {churn_pct}%: {screened} regions screened, expected {} members × {batches} batches",
                num_subs
            ));
        }
        if survival <= 0.5 {
            violations.push(format!(
                "churn {churn_pct}%: survival ratio {survival:.3} — most regions must survive \
                 most update batches, that is the premise of incremental maintenance"
            ));
        }
        if maint_io >= rebuild_cost {
            violations.push(format!(
                "churn {churn_pct}%: maintenance I/O {maint_io} is not strictly below the \
                 full-rebuild I/O {rebuild_cost} ({batches} batches × {} pages per rebuild)",
                rebuild.pages
            ));
        }
        let health = engine.health();
        if health.updates_applied != stats.updates_applied
            || health.regions_survived != stats.regions_survived
            || health.regions_punctured != stats.regions_punctured
        {
            violations.push(format!(
                "churn {churn_pct}%: engine health counters disagree with manager stats \
                 ({health:?} vs {stats:?})"
            ));
        }
        for member in manager.members() {
            if member.is_stale() {
                violations.push(format!(
                    "churn {churn_pct}%: member {} is still stale after its invalidation flush",
                    member.id()
                ));
            }
            let oracle = rebuilt.query(member.current())?;
            if member.report().dims != oracle.dims {
                violations.push(format!(
                    "churn {churn_pct}%: member {}'s maintained region report differs from the \
                     full recompute on the mutated dataset",
                    member.id()
                ));
            }
        }
        for query in workload.queries() {
            if engine.query(query)?.dims != rebuilt.query(query)?.dims {
                violations.push(format!(
                    "churn {churn_pct}%: incremental query answer differs from the rebuilt \
                     engine on the mutated dataset"
                ));
                break;
            }
        }
    }

    print_table(&table);
    args.emit("dynamic", &table)?;
    args.report_wall_clock(started);

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("dynamic violation: {v}");
        }
        std::process::exit(1);
    }
    Ok(())
}
