//! Figure 13: WSJ and ST, qlen = 4, varying k ∈ {10, 20, 40, 60, 80}.

use immutable_regions::engine::EngineResult;
use ir_bench::{
    measure_method_threaded, print_table, BenchArgs, BenchDataset, ExperimentTable, Scale,
};
use ir_core::{Algorithm, RegionConfig};
use std::time::Instant;

fn main() -> EngineResult<()> {
    let args = BenchArgs::parse();
    let started = Instant::now();
    let scale = Scale::from_env();
    let queries = BenchDataset::queries_per_point(scale);
    let ks: &[usize] = match scale {
        Scale::Smoke => &[10, 40, 80],
        _ => &[10, 20, 40, 60, 80],
    };
    for dataset in [BenchDataset::Wsj, BenchDataset::St] {
        let mut table = ExperimentTable::new(
            format!("Figure 13 — {} data, qlen = 4, varying k", dataset.name()),
            "k",
        );
        for &k in ks {
            let (engine, workload) = dataset.prepare_engine_for(scale, 4, k, queries, &args)?;
            for algorithm in Algorithm::ALL {
                let row = measure_method_threaded(
                    &engine,
                    &workload,
                    algorithm,
                    RegionConfig::flat(algorithm),
                    k as f64,
                )?;
                table.push(row);
            }
        }
        print_table(&table);
        let figure_id = match dataset {
            BenchDataset::Wsj => "figure13_vary_k_wsj",
            _ => "figure13_vary_k_st",
        };
        args.emit(figure_id, &table)?;
    }
    args.report_wall_clock(started);
    Ok(())
}
