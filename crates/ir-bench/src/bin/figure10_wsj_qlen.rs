//! Figure 10: WSJ corpus, k = 10, varying qlen ∈ {2, 4, 6, 8, 10}.
//!
//! Prints, per method and query length, the average number of evaluated
//! candidates per dimension, the I/O time, the CPU time and the memory
//! footprint — the four panels of Figure 10.

use immutable_regions::engine::EngineResult;
use ir_bench::{
    measure_method_threaded, print_table, BenchArgs, BenchDataset, ExperimentTable, Scale,
};
use ir_core::{Algorithm, RegionConfig};
use std::time::Instant;

fn main() -> EngineResult<()> {
    let args = BenchArgs::parse();
    let started = Instant::now();
    let scale = Scale::from_env();
    let queries = BenchDataset::queries_per_point(scale);
    let mut table =
        ExperimentTable::new("Figure 10 — WSJ-like corpus, k = 10, varying qlen", "qlen");
    for qlen in [2usize, 4, 6, 8, 10] {
        let (engine, workload) =
            BenchDataset::Wsj.prepare_engine_for(scale, qlen, 10, queries, &args)?;
        for algorithm in Algorithm::ALL {
            let row = measure_method_threaded(
                &engine,
                &workload,
                algorithm,
                RegionConfig::flat(algorithm),
                qlen as f64,
            )?;
            table.push(row);
        }
    }
    print_table(&table);
    args.emit("figure10_wsj_qlen", &table)?;
    args.report_wall_clock(started);
    Ok(())
}
