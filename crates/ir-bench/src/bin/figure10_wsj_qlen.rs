//! Figure 10: WSJ corpus, k = 10, varying qlen ∈ {2, 4, 6, 8, 10}.
//!
//! Prints, per method and query length, the average number of evaluated
//! candidates per dimension, the I/O time, the CPU time and the memory
//! footprint — the four panels of Figure 10.

use ir_bench::{measure_method, print_table, BenchDataset, ExperimentTable, Scale};
use ir_core::{Algorithm, RegionConfig};
use ir_types::IrResult;

fn main() -> IrResult<()> {
    let scale = Scale::from_env();
    let queries = BenchDataset::queries_per_point(scale);
    let mut table =
        ExperimentTable::new("Figure 10 — WSJ-like corpus, k = 10, varying qlen", "qlen");
    for qlen in [2usize, 4, 6, 8, 10] {
        let (index, workload) = BenchDataset::Wsj.prepare(scale, qlen, 10, queries)?;
        for algorithm in Algorithm::ALL {
            let row = measure_method(
                &index,
                &workload,
                algorithm,
                RegionConfig::flat(algorithm),
                qlen as f64,
            )?;
            table.push(row);
        }
    }
    print_table(&table);
    Ok(())
}
