//! Figure 16: WSJ, disregarding reorderings within R(q), φ = 0, k = 10,
//! varying qlen — only changes of the result composition count as
//! perturbations.

use ir_bench::{measure_method, print_table, BenchDataset, ExperimentTable, Scale};
use ir_core::{Algorithm, RegionConfig};
use ir_types::IrResult;

fn main() -> IrResult<()> {
    let scale = Scale::from_env();
    let queries = BenchDataset::queries_per_point(scale);
    let mut table = ExperimentTable::new(
        "Figure 16 — WSJ-like corpus, composition-only perturbations, k = 10, varying qlen",
        "qlen",
    );
    for qlen in [2usize, 4, 6, 8, 10] {
        let (index, workload) = BenchDataset::Wsj.prepare(scale, qlen, 10, queries)?;
        for algorithm in Algorithm::ALL {
            let row = measure_method(
                &index,
                &workload,
                algorithm,
                RegionConfig::flat(algorithm).composition_only(),
                qlen as f64,
            )?;
            table.push(row);
        }
    }
    print_table(&table);
    Ok(())
}
