//! Cluster benchmark: the sharded engine against the single-engine oracle
//! at growing shard counts.
//!
//! For every shard count N the runner stages one snapshot, brings up an
//! N-shard [`ShardedEngine`] in both partition modes (`by-dim` list
//! sharding and `by-query` batch partitioning) over a seeded reordering
//! network, serves the standard ST workload, and reports **deterministic
//! counter distributions** — never wall-clock — so the emitted
//! `BENCH_cluster.json` is byte-stable across machines, backends and
//! reorder seeds, and CI can diff it exactly:
//!
//! * `Oracle` — the unsharded engine's totals (evaluated candidates in
//!   `evaluated_per_dim`, logical reads in `logical_reads`, query count in
//!   `memory_kbytes`); constant across the x-axis by construction.
//! * `ByDim` / `ByQuery` — the merged totals of the sharded run (same
//!   columns, except `memory_kbytes` carries the work-unit count).
//! * `ByDimMsgs` / `ByQueryMsgs` — message conservation: sent in
//!   `evaluated_per_dim`, delivered in `logical_reads`, dropped+discarded
//!   in `memory_kbytes` (all zero on the lossless bench network).
//! * `ByDimShardLoad` / `ByQueryShardLoad` — the per-shard solve-count
//!   distribution: min / max / mean.
//! * `ByDimShardIo` / `ByQueryShardIo` — the per-shard logical-read
//!   distribution: min / max / mean.
//!
//! The reorder seed comes from `IR_BENCH_CLUSTER_SEED` (default `0xC105`);
//! the CI cluster stage runs two seeds and exact-diffs both emissions
//! against one committed baseline, proving delivery order never leaks into
//! the counters.
//!
//! The runner is self-checking and exits non-zero unless the determinism
//! contract holds: merged regions byte-identical to the sequential oracle
//! at every shard count and partition mode, merged deterministic stats
//! equal to the matching oracle (`query` for by-query, single-threaded
//! `compute_parallel` for by-dim), a 1-shard by-query run identical to the
//! unsharded engine's answers, and conserved message counters.

use immutable_regions::engine::{EngineResult, IrEngine};
use ir_bench::{
    note_cluster_topology, print_table, BenchArgs, BenchDataset, ExperimentTable,
    MethodMeasurement, Scale,
};
use ir_cluster::{ClusterOutcome, NetworkConfig, PartitionMode, ShardedEngine};
use ir_core::RegionReport;
use std::time::Instant;

/// Shard counts per scale (the x-axis).
fn shard_counts(scale: Scale) -> Vec<u32> {
    match scale {
        Scale::Smoke => vec![1, 2, 4],
        Scale::Default | Scale::Full => vec![1, 2, 4, 8],
    }
}

/// A packed table row (see the module docs for the column mapping).
fn row(series: &str, x: f64, a: f64, b: f64, c: f64) -> MethodMeasurement {
    MethodMeasurement {
        algorithm: series.to_string(),
        x,
        evaluated_per_dim: a,
        io_time_ms: 0.0,
        cpu_time_ms: 0.0,
        memory_kbytes: c,
        logical_reads: b,
        physical_reads: 0.0,
    }
}

/// Sum of evaluated candidates and logical solve reads over a report set.
fn totals(reports: &[RegionReport]) -> (u64, u64) {
    reports.iter().fold((0, 0), |(ev, io), r| {
        (
            ev + r.stats.evaluated_candidates,
            io + r.stats.io.logical_reads,
        )
    })
}

/// (min, max, mean) of a counter distribution.
fn distribution(values: &[u64]) -> (u64, u64, f64) {
    let min = values.iter().min().copied().unwrap_or(0);
    let max = values.iter().max().copied().unwrap_or(0);
    let mean = values.iter().sum::<u64>() as f64 / values.len().max(1) as f64;
    (min, max, mean)
}

/// Checks one sharded outcome against the oracles, pushing any violation.
fn check_outcome(
    context: &str,
    outcome: &ClusterOutcome,
    regions_oracle: &[RegionReport],
    stats_oracle: &[RegionReport],
    violations: &mut Vec<String>,
) {
    for (qi, (actual, expected)) in outcome.reports.iter().zip(regions_oracle).enumerate() {
        if actual.dims != expected.dims {
            violations.push(format!(
                "{context} query {qi}: merged regions diverge from the sequential oracle"
            ));
        }
    }
    for (qi, (actual, expected)) in outcome.reports.iter().zip(stats_oracle).enumerate() {
        if actual.stats.evaluated_per_dim != expected.stats.evaluated_per_dim
            || actual.stats.io.logical_reads != expected.stats.io.logical_reads
            || actual.stats.initial_candidates != expected.stats.initial_candidates
        {
            violations.push(format!(
                "{context} query {qi}: merged deterministic stats diverge from the oracle"
            ));
        }
    }
    if let Some(violation) = outcome.stats.conservation_violation() {
        violations.push(format!("{context}: {violation}"));
    }
}

fn main() -> EngineResult<()> {
    let args = BenchArgs::parse();
    let started = Instant::now();
    let scale = Scale::from_env();
    let seed = std::env::var("IR_BENCH_CLUSTER_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0xC105);
    let mut table = ExperimentTable::new(
        "Cluster serving — sharded engine vs single-engine oracle per shard count (merged totals; message conservation; per-shard load and I/O distributions)",
        "shards",
    );
    let mut violations = Vec::new();

    let dataset = BenchDataset::St.generate(scale);
    let queries = BenchDataset::St
        .workload_for(&dataset, 3, 10, BenchDataset::queries_per_point(scale))?
        .queries()
        .to_vec();

    // One oracle engine doubles as the snapshot stager: every cluster below
    // serves the exact bytes this engine saved.
    let oracle_engine = IrEngine::builder().dataset_ref(&dataset).build()?;
    let staged = tempfile::tempdir().map_err(|e| {
        immutable_regions::engine::EngineError::Policy(format!("staging snapshot dir: {e}"))
    })?;
    let snap = staged.path().join("snap");
    oracle_engine.save_snapshot(&snap)?;
    let sequential: Vec<RegionReport> = queries
        .iter()
        .map(|q| oracle_engine.query(q))
        .collect::<EngineResult<_>>()?;
    let parallel: Vec<RegionReport> = queries
        .iter()
        .map(|q| Ok(oracle_engine.computation(q)?.compute_parallel(1)?))
        .collect::<EngineResult<_>>()?;
    let (oracle_evaluated, oracle_reads) = totals(&sequential);

    let mut last_topology = None;
    for shards in shard_counts(scale) {
        table.push(row(
            "Oracle",
            shards as f64,
            oracle_evaluated as f64,
            oracle_reads as f64,
            queries.len() as f64,
        ));
        for partition in [PartitionMode::ByDim, PartitionMode::ByQuery] {
            let context = format!("shards={shards} partition={partition}");
            let mut cluster = ShardedEngine::builder()
                .snapshot(&snap)
                .shards(shards)
                .partition(partition)
                .backend_kind(args.backend)
                .network(NetworkConfig::reordering(seed, 5))
                .build()
                .map_err(|e| {
                    immutable_regions::engine::EngineError::Policy(format!("{context}: {e}"))
                })?;
            last_topology = Some(cluster.topology());
            let outcome = cluster.run(&queries).map_err(|e| {
                immutable_regions::engine::EngineError::Policy(format!("{context}: {e}"))
            })?;

            let stats_oracle = match partition {
                PartitionMode::ByQuery => &sequential,
                PartitionMode::ByDim => &parallel,
            };
            check_outcome(
                &context,
                &outcome,
                &sequential,
                stats_oracle,
                &mut violations,
            );
            if shards == 1 && partition == PartitionMode::ByQuery {
                // The 1-shard cluster must be indistinguishable from the
                // unsharded engine — the identity the CI stage pins.
                let (evaluated, reads) = totals(&outcome.reports);
                if (evaluated, reads) != (oracle_evaluated, oracle_reads) {
                    violations.push(format!(
                        "{context}: 1-shard totals ({evaluated}, {reads}) != unsharded \
                         ({oracle_evaluated}, {oracle_reads})"
                    ));
                }
            }

            let (evaluated, reads) = totals(&outcome.reports);
            let run = &outcome.stats;
            let solves: Vec<u64> = run.per_shard.iter().map(|t| t.solves).collect();
            let shard_reads: Vec<u64> = run.per_shard.iter().map(|t| t.logical_reads).collect();
            let (solve_min, solve_max, solve_mean) = distribution(&solves);
            let (io_min, io_max, io_mean) = distribution(&shard_reads);

            println!(
                "{context}: {} units, {} messages ({} delivered), solves/shard {}..{} (mean {:.2})",
                run.units,
                run.messages.sent,
                run.messages.delivered,
                solve_min,
                solve_max,
                solve_mean,
            );

            let mode = partition.to_string();
            let series = match mode.as_str() {
                "by-dim" => "ByDim",
                _ => "ByQuery",
            };
            table.push(row(
                series,
                shards as f64,
                evaluated as f64,
                reads as f64,
                run.units as f64,
            ));
            table.push(row(
                &format!("{series}Msgs"),
                shards as f64,
                run.messages.sent as f64,
                run.messages.delivered as f64,
                (run.messages.dropped + run.messages.discarded) as f64,
            ));
            table.push(row(
                &format!("{series}ShardLoad"),
                shards as f64,
                solve_min as f64,
                solve_max as f64,
                solve_mean,
            ));
            table.push(row(
                &format!("{series}ShardIo"),
                shards as f64,
                io_min as f64,
                io_max as f64,
                io_mean,
            ));
        }
    }

    note_cluster_topology(last_topology);
    print_table(&table);
    args.emit("cluster", &table)?;
    args.report_wall_clock(started);

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("cluster violation: {v}");
        }
        std::process::exit(1);
    }
    Ok(())
}
