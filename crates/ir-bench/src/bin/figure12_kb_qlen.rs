//! Figure 12: KB image features, k = 10, varying qlen ∈ {2, 12, 24, 36, 48}.

use immutable_regions::engine::EngineResult;
use ir_bench::{
    measure_method_threaded, print_table, BenchArgs, BenchDataset, ExperimentTable, Scale,
};
use ir_core::{Algorithm, RegionConfig};
use std::time::Instant;

fn main() -> EngineResult<()> {
    let args = BenchArgs::parse();
    let started = Instant::now();
    let scale = Scale::from_env();
    let queries = BenchDataset::queries_per_point(scale);
    let mut table = ExperimentTable::new(
        "Figure 12 — KB-like image features, k = 10, varying qlen",
        "qlen",
    );
    let qlens: &[usize] = match scale {
        Scale::Smoke => &[2, 6, 12],
        _ => &[2, 12, 24, 36, 48],
    };
    for &qlen in qlens {
        let (engine, workload) =
            BenchDataset::Kb.prepare_engine_for(scale, qlen, 10, queries, &args)?;
        for algorithm in Algorithm::ALL {
            let row = measure_method_threaded(
                &engine,
                &workload,
                algorithm,
                RegionConfig::flat(algorithm),
                qlen as f64,
            )?;
            table.push(row);
        }
    }
    print_table(&table);
    args.emit("figure12_kb_qlen", &table)?;
    args.report_wall_clock(started);
    Ok(())
}
