//! Figure 6: the candidate-partition structure per dataset.
//!
//! For one equal-weight 4-term query on the WSJ-like and ST datasets, prints
//! the sizes of the `C⁰_j` / `C^H_j` / `C^L_j` partitions of `C(q)` plus a
//! score-vs-coordinate dump of result and candidate tuples (the scatter the
//! paper plots).

use immutable_regions::engine::{EngineResult, IrEngine};
use ir_bench::{BenchArgs, BenchDataset, Scale};
use ir_core::partition::Partition;
use ir_datagen::{QueryWorkload, WorkloadConfig};
use std::time::Instant;

fn main() -> EngineResult<()> {
    let args = BenchArgs::parse();
    let started = Instant::now();
    let scale = Scale::from_env();
    for dataset_kind in [BenchDataset::Wsj, BenchDataset::St] {
        let dataset = dataset_kind.generate(scale);
        let workload = QueryWorkload::generate(
            &dataset,
            &WorkloadConfig {
                qlen: 4,
                k: 10,
                num_queries: 1,
                min_postings: 30,
                // Stopword cut (see `WorkloadConfig::max_postings`): only
                // meaningful for the sparse WSJ-like corpus — every dimension
                // of the dense St dataset has ~cardinality postings and would
                // be cut.
                max_postings: match dataset_kind {
                    BenchDataset::Wsj => dataset.cardinality() / 10,
                    _ => usize::MAX,
                },
                selection: dataset_kind.selection(),
                equal_weights: true,
            },
            6,
        )?;
        let (storage, scratch) = args.storage_backend()?;
        let engine = IrEngine::builder()
            .dataset(dataset)
            .backend(storage)
            .threads(args.threads)
            .build()?;
        drop(scratch);
        let query = &workload.queries()[0];
        let computation = engine.computation(query)?;
        let candidates = computation.ta().candidates().entries().to_vec();
        println!(
            "=== Figure 6 — {} (qlen=4, k=10, equal weights) ===",
            dataset_kind.name()
        );
        println!(
            "result size {}  candidate list size {}",
            computation.result().len(),
            candidates.len()
        );
        for (dim_index, (dim, _)) in query.dims().enumerate() {
            let sizes = Partition::classify(&candidates, dim_index).sizes();
            println!(
                "  query dim {:>6}: |C0| = {:>4}  |CH| = {:>4}  |CL| = {:>4}",
                dim.0, sizes.zero, sizes.high, sizes.low
            );
        }
        // Scatter dump (first query dimension): rank, score, coordinate.
        println!("  scatter (dim 1): kind score coord");
        for entry in computation.ta().result_entries() {
            println!("    R {:.4} {:.4}", entry.score, entry.coord(0));
        }
        for entry in candidates.iter().take(30) {
            println!("    C {:.4} {:.4}", entry.score, entry.coord(0));
        }
        // The regions behind the partitions, solved with the per-dimension
        // parallel driver (identical output for every worker count).
        let report = computation.compute_parallel(args.threads)?;
        for dim in &report.dims {
            println!(
                "  IR(dim {:>6}) = ({:+.4}, {:+.4})",
                dim.dim.0, dim.immutable.lo, dim.immutable.hi
            );
        }
        println!();
    }
    args.report_wall_clock(started);
    Ok(())
}
