//! Figure 11: ST correlated data, k = 10, varying qlen ∈ {2, 4, 6, 8, 10}.

use immutable_regions::engine::EngineResult;
use ir_bench::{
    measure_method_threaded, print_table, BenchArgs, BenchDataset, ExperimentTable, Scale,
};
use ir_core::{Algorithm, RegionConfig};
use std::time::Instant;

fn main() -> EngineResult<()> {
    let args = BenchArgs::parse();
    let started = Instant::now();
    let scale = Scale::from_env();
    let queries = BenchDataset::queries_per_point(scale);
    let mut table = ExperimentTable::new(
        "Figure 11 — ST correlated data, k = 10, varying qlen",
        "qlen",
    );
    for qlen in [2usize, 4, 6, 8, 10] {
        let (engine, workload) =
            BenchDataset::St.prepare_engine_for(scale, qlen, 10, queries, &args)?;
        for algorithm in Algorithm::ALL {
            let row = measure_method_threaded(
                &engine,
                &workload,
                algorithm,
                RegionConfig::flat(algorithm),
                qlen as f64,
            )?;
            table.push(row);
        }
    }
    print_table(&table);
    args.emit("figure11_st_qlen", &table)?;
    args.report_wall_clock(started);
    Ok(())
}
