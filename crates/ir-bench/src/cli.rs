//! Command-line options shared by every figure/ablation runner binary.
//!
//! All runners understand
//!
//! * `--threads N` (or env `IR_BENCH_THREADS`) — worker count for the
//!   parallel execution layer; the default `1` is the sequential path. The
//!   deterministic series (evaluated candidates, logical reads, memory)
//!   are identical for every value; wall-clock time, physical reads and
//!   the simulated I/O time vary, because threaded runs share one warm
//!   buffer pool instead of cold-starting per query,
//! * `--backend {mem,file,mmap}` (or env `IR_BENCH_BACKEND`) — which page
//!   store backs the index; file and mmap get a scratch page directory.
//!   The deterministic series and the region output are identical for
//!   every backend (the backend-agreement suite proves it byte for byte);
//!   only device-level syscall counts and wall-clock change. `mmap`
//!   requires binaries built with `--features mmap`,
//! * `--emit-json DIR` (or env `IR_BENCH_EMIT_DIR`) — write each printed
//!   table as a `BENCH_<figure>.json` series into `DIR` (for the CI
//!   baseline diff; see the `bench_diff` binary). The parsed backend and
//!   worker count are stamped into the series' policy metadata,
//! * `--fault-plan FILE` (or env `IR_BENCH_FAULT_PLAN`) — run the figure
//!   against a fault-injecting device executing the JSON-serialized
//!   `FaultPlan` in `FILE` (chaos benchmarking: measure a figure under
//!   transient faults or injected latency). The plan is stamped into the
//!   emitted policy metadata; without the flag the stamp is `null`, which
//!   keeps the committed baselines byte-stable,
//! * `--snapshot-dir DIR` (or env `IR_BENCH_SNAPSHOT_DIR`) — serve the
//!   figure from a persisted index snapshot instead of a freshly built
//!   index: the runner builds the index once in memory, saves it into a
//!   unique staging directory under `DIR`, and reopens it zero-copy on
//!   the requested backend. Deterministic query output is identical by
//!   construction (the snapshot CI stage proves it with an exact diff);
//!   the `cold_start` stamp in the emitted policy flips from `built` to
//!   `snapshot` so a snapshot-served run is self-describing.
//!
//! The criterion benches reuse the same parser, so `cargo bench --
//! --backend mmap` (or the env var) swaps their backend too.
//!
//! Unknown arguments are ignored so the runners stay tolerant of harness
//! plumbing.

use crate::emit::{table_to_series, write_figure};
use crate::runner::ExperimentTable;
use immutable_regions::engine::{ClusterTopology, EnginePolicy};
use ir_core::RegionConfig;
use ir_storage::{BackendKind, ColdStartInfo, FaultPlan, StorageBackend};
use ir_types::{IrError, IrResult};
use std::cell::Cell;
use std::path::PathBuf;
use std::time::Instant;

thread_local! {
    // The cold-start provenance of the most recently prepared engine on
    // this thread, stamped into emitted policies. A thread-local cell (not
    // a BenchArgs field) because the engine is prepared long after the
    // arguments are parsed, by workload helpers that never see the
    // emission path; runners prepare and emit on one thread.
    static LAST_COLD_START: Cell<Option<ColdStartInfo>> = const { Cell::new(None) };

    // The cluster topology of the most recently prepared sharded run on
    // this thread (None for every unsharded runner), stamped into emitted
    // policies the same way cold-start provenance is.
    static LAST_CLUSTER: Cell<Option<ClusterTopology>> = const { Cell::new(None) };
}

/// Records how the most recently prepared engine came up (built from the
/// dataset or reopened from a snapshot) so [`BenchArgs::policy_with`] can
/// stamp it into emitted `BENCH_<figure>.json` metadata. Called by the
/// workload preparation helpers; thread-local, so call it on the thread
/// that later emits.
pub fn note_cold_start(info: ColdStartInfo) {
    LAST_COLD_START.with(|cell| cell.set(Some(info)));
}

/// Records the cluster topology of the most recently prepared sharded run
/// so [`BenchArgs::policy_with`] stamps it into emitted metadata. Pass
/// `None` to return to the unsharded default; thread-local, like
/// [`note_cold_start`].
pub fn note_cluster_topology(topology: Option<ClusterTopology>) {
    LAST_CLUSTER.with(|cell| cell.set(topology));
}

/// Materializes a backend kind as a concrete [`StorageBackend`], creating a
/// scratch page directory for the file and mmap backends.
///
/// The returned [`tempfile::TempDir`] guard must be held until the
/// engine/index is *built* (the store creates its page file inside it).
/// Dropping the guard afterwards is safe on Unix: the store keeps its
/// descriptor to the unlinked file, and the disk space is reclaimed when
/// the engine drops — the idiomatic scratch-file pattern the runners rely
/// on. (On Windows, where an open file cannot be unlinked, the scratch
/// directory may simply outlive the run in `%TEMP%`; the harness targets
/// Unix.)
pub fn materialize_backend(
    kind: BackendKind,
) -> IrResult<(StorageBackend, Option<tempfile::TempDir>)> {
    match kind {
        BackendKind::Mem => Ok((StorageBackend::Memory, None)),
        BackendKind::File | BackendKind::Mmap => {
            let dir = tempfile::tempdir()
                .map_err(|e| IrError::Storage(format!("creating scratch page dir: {e}")))?;
            let backend = match kind {
                BackendKind::File => StorageBackend::Disk(dir.path().to_path_buf()),
                _ => StorageBackend::Mmap(dir.path().to_path_buf()),
            };
            Ok((backend, Some(dir)))
        }
    }
}

/// Parsed runner options.
#[derive(Clone, Debug, Default)]
pub struct BenchArgs {
    /// Worker count for batch/per-dimension parallel execution (1 =
    /// sequential, today's default path).
    pub threads: usize,
    /// Which page-store backend the index is built on (default: mem).
    pub backend: BackendKind,
    /// Directory to write `BENCH_<figure>.json` series into, if any.
    pub emit_dir: Option<PathBuf>,
    /// Fault plan the index's device executes, loaded eagerly from the
    /// `--fault-plan` JSON file (default: none — a well-behaved device).
    pub fault_plan: Option<FaultPlan>,
    /// Staging root for snapshot-served runs (`--snapshot-dir`): when set,
    /// the workload helpers save the built index as a snapshot under this
    /// directory and serve the figure from the reopened snapshot.
    pub snapshot_dir: Option<PathBuf>,
}

impl BenchArgs {
    /// Parses the process arguments (with environment-variable fallbacks).
    pub fn parse() -> Self {
        Self::from_arg_list(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests).
    pub fn from_arg_list<I: IntoIterator<Item = String>>(args: I) -> Self {
        // A flag matches only exactly (`--threads 4`) or in `=` form
        // (`--threads=4`); a value is never taken from a following `--flag`,
        // so a missing value cannot swallow the next option.
        fn flag_value(
            arg: &str,
            name: &str,
            args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
        ) -> Option<String> {
            if let Some(rest) = arg.strip_prefix(name) {
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.to_string());
                }
                if rest.is_empty() {
                    if args.peek().is_some_and(|next| !next.starts_with("--")) {
                        return args.next();
                    }
                    eprintln!("warning: {name} requires a value; flag ignored");
                }
            }
            None
        }

        // Loads and parses a fault-plan file eagerly: a chaos run with a
        // typo'd or stale plan must die loudly at startup, not silently
        // measure a healthy device.
        fn load_fault_plan(origin: &str, path: &str) -> FaultPlan {
            let json = match std::fs::read_to_string(path) {
                Ok(json) => json,
                Err(e) => {
                    eprintln!("error: {origin}: reading {path}: {e}");
                    std::process::exit(2);
                }
            };
            match serde_json::from_str(&json) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("error: {origin}: {path} is not a valid fault plan: {e}");
                    std::process::exit(2);
                }
            }
        }

        let mut threads: Option<usize> = None;
        let mut backend: Option<BackendKind> = None;
        let mut emit_dir: Option<PathBuf> = None;
        let mut fault_plan: Option<FaultPlan> = None;
        let mut snapshot_dir: Option<PathBuf> = None;
        let mut args = args.into_iter().peekable();
        while let Some(arg) = args.next() {
            if let Some(value) = flag_value(&arg, "--threads", &mut args) {
                match value.parse::<usize>() {
                    Ok(n) => threads = Some(n.max(1)),
                    Err(_) => eprintln!("warning: invalid --threads value `{value}`; ignored"),
                }
            } else if let Some(value) = flag_value(&arg, "--backend", &mut args) {
                match value.parse::<BackendKind>() {
                    Ok(kind) => backend = Some(kind),
                    // An explicit flag deserves a hard error, never a
                    // fallback: deterministic output is backend-invariant
                    // by design, so a run that silently swapped mem in for
                    // a typo'd backend would look indistinguishable from
                    // the intended one and a CI backend matrix would pass
                    // vacuously.
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    }
                }
            } else if let Some(dir) = flag_value(&arg, "--emit-json", &mut args) {
                emit_dir = Some(PathBuf::from(dir));
            } else if let Some(path) = flag_value(&arg, "--fault-plan", &mut args) {
                fault_plan = Some(load_fault_plan("--fault-plan", &path));
            } else if let Some(dir) = flag_value(&arg, "--snapshot-dir", &mut args) {
                snapshot_dir = Some(PathBuf::from(dir));
            }
        }
        let threads = threads
            .or_else(|| {
                std::env::var("IR_BENCH_THREADS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(1)
            .max(1);
        let backend = backend
            .or_else(|| {
                let value = std::env::var("IR_BENCH_BACKEND").ok()?;
                match value.parse() {
                    Ok(kind) => Some(kind),
                    // Same hard error as the flag: the env var is documented
                    // as its equivalent, and a silent mem fallback would be
                    // indistinguishable from the intended run.
                    Err(e) => {
                        eprintln!("error: IR_BENCH_BACKEND: {e}");
                        std::process::exit(2);
                    }
                }
            })
            .unwrap_or_default();
        let emit_dir = emit_dir.or_else(|| std::env::var("IR_BENCH_EMIT_DIR").ok().map(Into::into));
        let fault_plan = fault_plan.or_else(|| {
            std::env::var("IR_BENCH_FAULT_PLAN")
                .ok()
                .map(|path| load_fault_plan("IR_BENCH_FAULT_PLAN", &path))
        });
        let snapshot_dir =
            snapshot_dir.or_else(|| std::env::var("IR_BENCH_SNAPSHOT_DIR").ok().map(Into::into));
        BenchArgs {
            threads,
            backend,
            emit_dir,
            fault_plan,
            snapshot_dir,
        }
    }

    /// Materializes the parsed backend kind as a concrete
    /// [`StorageBackend`] (see [`materialize_backend`]).
    pub fn storage_backend(&self) -> IrResult<(StorageBackend, Option<tempfile::TempDir>)> {
        materialize_backend(self.backend)
    }

    /// The engine-policy template stamped into emitted `BENCH_<figure>.json`
    /// files: `config` is the figure's serving template (see
    /// [`BenchArgs::emit_with`]; the per-series algorithm and the figure's
    /// x-axis parameter override it row by row), `threads` is the parsed
    /// worker count, `backend` the parsed storage backend, `fault_plan`
    /// the loaded chaos plan (`null` for ordinary runs, keeping the
    /// committed baselines stable) and `cold_start` the provenance of the
    /// engine most recently prepared on this thread (see
    /// [`note_cold_start`]; the all-zero `built` default before any engine
    /// is prepared).
    pub fn policy_with(&self, config: RegionConfig) -> EnginePolicy {
        EnginePolicy {
            config,
            threads: self.threads,
            backend: self.backend,
            fault_plan: self.fault_plan.clone(),
            cold_start: LAST_COLD_START.with(Cell::get).unwrap_or_default(),
            cluster: LAST_CLUSTER.with(Cell::get),
        }
    }

    /// [`BenchArgs::emit_with`] with the default region configuration as the
    /// figure's template.
    pub fn emit(&self, figure: &str, table: &ExperimentTable) -> IrResult<()> {
        self.emit_with(figure, table, RegionConfig::default())
    }

    /// Writes `table` as `BENCH_<figure>.json` into the emission directory
    /// (a no-op when `--emit-json` was not given), stamping the policy
    /// metadata with `config` — the figure's serving template. Pass the
    /// settings every row shares (e.g. composition-only mode for Figure
    /// 16); the per-series algorithm and the swept x-axis parameter are
    /// recorded in the series themselves.
    pub fn emit_with(
        &self,
        figure: &str,
        table: &ExperimentTable,
        config: RegionConfig,
    ) -> IrResult<()> {
        let Some(dir) = &self.emit_dir else {
            return Ok(());
        };
        let series = table_to_series(figure, table, self.policy_with(config));
        let path = write_figure(dir, &series)
            .map_err(|e| IrError::Storage(format!("emitting {figure}: {e}")))?;
        eprintln!("emitted {}", path.display());
        Ok(())
    }

    /// Prints the total wall-clock time of the runner, labelled with the
    /// worker count and backend — the line the `--threads` speedup and
    /// backend comparisons read.
    pub fn report_wall_clock(&self, started: Instant) {
        println!(
            "wall-clock: {:.3} s (threads = {}, backend = {})",
            started.elapsed().as_secs_f64(),
            self.threads,
            self.backend
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_threads_and_emit_dir() {
        let args = BenchArgs::from_arg_list(strings(&["--threads", "4", "--emit-json", "/tmp/x"]));
        assert_eq!(args.threads, 4);
        assert_eq!(args.emit_dir, Some(PathBuf::from("/tmp/x")));
        let args = BenchArgs::from_arg_list(strings(&["--threads=2", "--emit-json=out"]));
        assert_eq!(args.threads, 2);
        assert_eq!(args.emit_dir, Some(PathBuf::from("out")));
    }

    #[test]
    fn parses_backend_and_defaults_to_mem() {
        assert_eq!(
            BenchArgs::from_arg_list(strings(&[])).backend,
            BackendKind::Mem
        );
        for (flag, kind) in [
            ("mem", BackendKind::Mem),
            ("file", BackendKind::File),
            ("mmap", BackendKind::Mmap),
        ] {
            let args = BenchArgs::from_arg_list(strings(&["--backend", flag]));
            assert_eq!(args.backend, kind);
            let args = BenchArgs::from_arg_list(strings(&[&format!("--backend={flag}")]));
            assert_eq!(args.backend, kind);
        }
        // An unknown backend value on the flag is a hard process exit (not
        // testable in-process); only a *missing* IR_BENCH_BACKEND falls
        // back to the default.
    }

    #[test]
    fn storage_backend_materializes_scratch_dirs() {
        let mem = BenchArgs::default();
        let (backend, guard) = mem.storage_backend().unwrap();
        assert!(matches!(backend, StorageBackend::Memory));
        assert!(guard.is_none());

        let file = BenchArgs {
            backend: BackendKind::File,
            ..BenchArgs::default()
        };
        let (backend, guard) = file.storage_backend().unwrap();
        let StorageBackend::Disk(dir) = backend else {
            panic!("expected a disk backend, got {backend:?}");
        };
        assert!(dir.is_dir(), "scratch dir must exist while the guard lives");
        drop(guard);
        assert!(!dir.exists(), "dropping the guard removes the scratch dir");
    }

    #[test]
    fn policy_stamp_carries_backend_and_threads() {
        let args = BenchArgs::from_arg_list(strings(&["--threads", "3", "--backend", "mmap"]));
        let policy = args.policy_with(RegionConfig::default());
        assert_eq!(policy.threads, 3);
        assert_eq!(policy.backend, BackendKind::Mmap);
    }

    #[test]
    fn parses_a_fault_plan_file() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("plan.json");
        let plan = FaultPlan::transient_reads(7, 3, 100);
        std::fs::write(&path, serde_json::to_string(&plan).unwrap()).unwrap();
        let args = BenchArgs::from_arg_list(strings(&[
            "--fault-plan",
            path.to_str().unwrap(),
            "--threads",
            "2",
        ]));
        assert_eq!(args.fault_plan, Some(plan.clone()));
        // The plan is stamped into the emitted policy metadata.
        let policy = args.policy_with(RegionConfig::default());
        assert_eq!(policy.fault_plan, Some(plan));
        // Without the flag there is no plan and the stamp is null.
        let args = BenchArgs::from_arg_list(strings(&[]));
        assert_eq!(args.fault_plan, None);
        assert!(args
            .policy_with(RegionConfig::default())
            .to_json()
            .contains("\"fault_plan\":null"));
    }

    #[test]
    fn parses_snapshot_dir_flag() {
        let args = BenchArgs::from_arg_list(strings(&["--snapshot-dir", "/tmp/snaps"]));
        assert_eq!(args.snapshot_dir, Some(PathBuf::from("/tmp/snaps")));
        let args = BenchArgs::from_arg_list(strings(&["--snapshot-dir=staged"]));
        assert_eq!(args.snapshot_dir, Some(PathBuf::from("staged")));
        assert_eq!(BenchArgs::from_arg_list(strings(&[])).snapshot_dir, None);
    }

    #[test]
    fn policy_stamps_the_noted_cold_start() {
        use ir_storage::ColdStartSource;

        let args = BenchArgs::from_arg_list(strings(&[]));
        // Each #[test] runs on a fresh thread, so before any engine is
        // prepared here the stamp is the all-zero `built` default.
        assert_eq!(
            args.policy_with(RegionConfig::default()).cold_start,
            ColdStartInfo::default()
        );
        let info = ColdStartInfo {
            source: ColdStartSource::Snapshot,
            pages: 3,
            bytes: 100,
        };
        note_cold_start(info);
        assert_eq!(args.policy_with(RegionConfig::default()).cold_start, info);
    }

    #[test]
    fn unknown_arguments_are_ignored_and_threads_clamped() {
        let args = BenchArgs::from_arg_list(strings(&["--bench", "--threads", "0", "extra"]));
        assert_eq!(args.threads, 1);
        assert_eq!(args.emit_dir, None);
    }

    #[test]
    fn missing_value_does_not_swallow_the_next_flag() {
        let args = BenchArgs::from_arg_list(strings(&["--threads", "--emit-json", "out"]));
        assert_eq!(args.threads, 1, "bad --threads must be ignored");
        assert_eq!(
            args.emit_dir,
            Some(PathBuf::from("out")),
            "--emit-json must survive a value-less --threads before it"
        );
    }

    #[test]
    fn prefix_garbage_does_not_match_flags() {
        let args = BenchArgs::from_arg_list(strings(&["--threadsX", "4", "--emit-jsonish", "d"]));
        assert_eq!(args.threads, 1);
        assert_eq!(args.emit_dir, None);
    }
}
