//! Command-line options shared by every figure/ablation runner binary.
//!
//! All runners understand
//!
//! * `--threads N` (or env `IR_BENCH_THREADS`) — worker count for the
//!   parallel execution layer; the default `1` is the sequential path. The
//!   deterministic series (evaluated candidates, logical reads, memory)
//!   are identical for every value; wall-clock time, physical reads and
//!   the simulated I/O time vary, because threaded runs share one warm
//!   buffer pool instead of cold-starting per query,
//! * `--emit-json DIR` (or env `IR_BENCH_EMIT_DIR`) — write each printed
//!   table as a `BENCH_<figure>.json` series into `DIR` (for the CI
//!   baseline diff; see the `bench_diff` binary).
//!
//! Unknown arguments are ignored so the runners stay tolerant of harness
//! plumbing.

use crate::emit::{table_to_series, write_figure};
use crate::runner::ExperimentTable;
use immutable_regions::engine::EnginePolicy;
use ir_core::RegionConfig;
use ir_types::{IrError, IrResult};
use std::path::PathBuf;
use std::time::Instant;

/// Parsed runner options.
#[derive(Clone, Debug, Default)]
pub struct BenchArgs {
    /// Worker count for batch/per-dimension parallel execution (1 =
    /// sequential, today's default path).
    pub threads: usize,
    /// Directory to write `BENCH_<figure>.json` series into, if any.
    pub emit_dir: Option<PathBuf>,
}

impl BenchArgs {
    /// Parses the process arguments (with environment-variable fallbacks).
    pub fn parse() -> Self {
        Self::from_arg_list(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests).
    pub fn from_arg_list<I: IntoIterator<Item = String>>(args: I) -> Self {
        // A flag matches only exactly (`--threads 4`) or in `=` form
        // (`--threads=4`); a value is never taken from a following `--flag`,
        // so a missing value cannot swallow the next option.
        fn flag_value(
            arg: &str,
            name: &str,
            args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
        ) -> Option<String> {
            if let Some(rest) = arg.strip_prefix(name) {
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.to_string());
                }
                if rest.is_empty() {
                    if args.peek().is_some_and(|next| !next.starts_with("--")) {
                        return args.next();
                    }
                    eprintln!("warning: {name} requires a value; flag ignored");
                }
            }
            None
        }

        let mut threads: Option<usize> = None;
        let mut emit_dir: Option<PathBuf> = None;
        let mut args = args.into_iter().peekable();
        while let Some(arg) = args.next() {
            if let Some(value) = flag_value(&arg, "--threads", &mut args) {
                match value.parse::<usize>() {
                    Ok(n) => threads = Some(n.max(1)),
                    Err(_) => eprintln!("warning: invalid --threads value `{value}`; ignored"),
                }
            } else if let Some(dir) = flag_value(&arg, "--emit-json", &mut args) {
                emit_dir = Some(PathBuf::from(dir));
            }
        }
        let threads = threads
            .or_else(|| {
                std::env::var("IR_BENCH_THREADS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(1)
            .max(1);
        let emit_dir = emit_dir.or_else(|| std::env::var("IR_BENCH_EMIT_DIR").ok().map(Into::into));
        BenchArgs { threads, emit_dir }
    }

    /// The engine-policy template stamped into emitted `BENCH_<figure>.json`
    /// files: `config` is the figure's serving template (see
    /// [`BenchArgs::emit_with`]; the per-series algorithm and the figure's
    /// x-axis parameter override it row by row) and `threads` is the parsed
    /// worker count.
    pub fn policy_with(&self, config: RegionConfig) -> EnginePolicy {
        EnginePolicy {
            config,
            threads: self.threads,
        }
    }

    /// [`BenchArgs::emit_with`] with the default region configuration as the
    /// figure's template.
    pub fn emit(&self, figure: &str, table: &ExperimentTable) -> IrResult<()> {
        self.emit_with(figure, table, RegionConfig::default())
    }

    /// Writes `table` as `BENCH_<figure>.json` into the emission directory
    /// (a no-op when `--emit-json` was not given), stamping the policy
    /// metadata with `config` — the figure's serving template. Pass the
    /// settings every row shares (e.g. composition-only mode for Figure
    /// 16); the per-series algorithm and the swept x-axis parameter are
    /// recorded in the series themselves.
    pub fn emit_with(
        &self,
        figure: &str,
        table: &ExperimentTable,
        config: RegionConfig,
    ) -> IrResult<()> {
        let Some(dir) = &self.emit_dir else {
            return Ok(());
        };
        let series = table_to_series(figure, table, self.policy_with(config));
        let path = write_figure(dir, &series)
            .map_err(|e| IrError::Storage(format!("emitting {figure}: {e}")))?;
        eprintln!("emitted {}", path.display());
        Ok(())
    }

    /// Prints the total wall-clock time of the runner, labelled with the
    /// worker count — the number the `--threads` speedup comparison reads.
    pub fn report_wall_clock(&self, started: Instant) {
        println!(
            "wall-clock: {:.3} s (threads = {})",
            started.elapsed().as_secs_f64(),
            self.threads
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_threads_and_emit_dir() {
        let args = BenchArgs::from_arg_list(strings(&["--threads", "4", "--emit-json", "/tmp/x"]));
        assert_eq!(args.threads, 4);
        assert_eq!(args.emit_dir, Some(PathBuf::from("/tmp/x")));
        let args = BenchArgs::from_arg_list(strings(&["--threads=2", "--emit-json=out"]));
        assert_eq!(args.threads, 2);
        assert_eq!(args.emit_dir, Some(PathBuf::from("out")));
    }

    #[test]
    fn unknown_arguments_are_ignored_and_threads_clamped() {
        let args = BenchArgs::from_arg_list(strings(&["--bench", "--threads", "0", "extra"]));
        assert_eq!(args.threads, 1);
        assert_eq!(args.emit_dir, None);
    }

    #[test]
    fn missing_value_does_not_swallow_the_next_flag() {
        let args = BenchArgs::from_arg_list(strings(&["--threads", "--emit-json", "out"]));
        assert_eq!(args.threads, 1, "bad --threads must be ignored");
        assert_eq!(
            args.emit_dir,
            Some(PathBuf::from("out")),
            "--emit-json must survive a value-less --threads before it"
        );
    }

    #[test]
    fn prefix_garbage_does_not_match_flags() {
        let args = BenchArgs::from_arg_list(strings(&["--threadsX", "4", "--emit-jsonish", "d"]));
        assert_eq!(args.threads, 1);
        assert_eq!(args.emit_dir, None);
    }
}
