//! Aggregated measurements: what the paper's figures plot.

use ir_core::Algorithm;
use serde::{Deserialize, Serialize};

/// One data point: a method at one x-axis value, averaged over the workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MethodMeasurement {
    /// The algorithm measured.
    pub algorithm: String,
    /// x-axis value of the experiment (qlen, k or φ).
    pub x: f64,
    /// Average evaluated candidates per query dimension (Figures 10a, 11a,
    /// 12a, 13a/c, 14a, 16a).
    pub evaluated_per_dim: f64,
    /// Average simulated I/O time per query in milliseconds (Figures 10b,
    /// 14b, 15a, 16b).
    pub io_time_ms: f64,
    /// Average CPU time per query in milliseconds (Figures 10c, 11b, 12b,
    /// 13b/d, 14c, 15b, 16c).
    pub cpu_time_ms: f64,
    /// Average memory footprint in KiB (Figure 10d).
    pub memory_kbytes: f64,
    /// Average logical page reads per query (machine-independent I/O).
    pub logical_reads: f64,
    /// Average physical page reads per query.
    pub physical_reads: f64,
}

/// A series of measurements for one algorithm across the x-axis.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MethodSeries {
    /// Algorithm name.
    pub algorithm: String,
    /// The points, in x order.
    pub points: Vec<MethodMeasurement>,
}

impl MethodMeasurement {
    /// Creates a zeroed measurement for an algorithm at `x`.
    pub fn new(algorithm: Algorithm, x: f64) -> Self {
        MethodMeasurement {
            algorithm: algorithm.to_string(),
            x,
            evaluated_per_dim: 0.0,
            io_time_ms: 0.0,
            cpu_time_ms: 0.0,
            memory_kbytes: 0.0,
            logical_reads: 0.0,
            physical_reads: 0.0,
        }
    }

    /// Divides every metric by `n` (to turn sums into per-query averages).
    pub fn averaged_over(mut self, n: usize) -> Self {
        let n = n.max(1) as f64;
        self.evaluated_per_dim /= n;
        self.io_time_ms /= n;
        self.cpu_time_ms /= n;
        self.memory_kbytes /= n;
        self.logical_reads /= n;
        self.physical_reads /= n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averaging_divides_every_metric() {
        let mut m = MethodMeasurement::new(Algorithm::Cpt, 4.0);
        m.evaluated_per_dim = 10.0;
        m.io_time_ms = 20.0;
        m.cpu_time_ms = 30.0;
        m.memory_kbytes = 40.0;
        m.logical_reads = 50.0;
        m.physical_reads = 5.0;
        let avg = m.averaged_over(10);
        assert_eq!(avg.evaluated_per_dim, 1.0);
        assert_eq!(avg.io_time_ms, 2.0);
        assert_eq!(avg.cpu_time_ms, 3.0);
        assert_eq!(avg.memory_kbytes, 4.0);
        assert_eq!(avg.logical_reads, 5.0);
        assert_eq!(avg.physical_reads, 0.5);
        assert_eq!(avg.algorithm, "CPT");
    }

    #[test]
    fn averaging_over_zero_is_safe() {
        let m = MethodMeasurement::new(Algorithm::Scan, 1.0).averaged_over(0);
        assert_eq!(m.evaluated_per_dim, 0.0);
    }
}
