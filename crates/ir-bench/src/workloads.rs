//! Benchmark datasets and workloads (the paper's WSJ, KB and ST).

use immutable_regions::engine::{EngineResult, IrEngine};
use ir_datagen::queries::DimSelection;
use ir_datagen::{
    CorrelatedConfig, CorrelatedGenerator, FeatureConfig, FeatureVectorGenerator, QueryWorkload,
    TextCorpusConfig, TextCorpusGenerator, WorkloadConfig,
};
use ir_storage::{BackendKind, FaultPlan, TopKIndex};
use ir_types::{Dataset, IrResult};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique staging directory under `root` for one saved snapshot,
/// removed — with everything inside it — when the guard drops.
///
/// Process id plus a process-wide counter keeps concurrent runners (and
/// repeated preparations inside one runner) from saving over each other
/// when they share one `--snapshot-dir`; the drop keeps repeated runner
/// invocations from accreting orphaned `snap-*` directories there. On
/// Unix the removal is safe even while a file or mmap engine still
/// serves from the directory: the page store holds its descriptor (or
/// established mapping) to the then-unlinked snapshot file.
pub struct StagedSnapshotDir {
    path: PathBuf,
}

impl StagedSnapshotDir {
    /// Reserves a fresh `snap-{pid}-{n}` staging path under `root`.
    pub fn unique(root: &Path) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        StagedSnapshotDir {
            path: root.join(format!("snap-{}-{}", std::process::id(), n)),
        }
    }

    /// The staging path (not created until a snapshot is saved into it).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StagedSnapshotDir {
    fn drop(&mut self) {
        // Best-effort: a staging dir that was never created (error before
        // the save) or raced away is not worth failing a run over.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Dataset scale, selected with the `IR_BENCH_SCALE` environment variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds per figure; used by `cargo bench` and CI.
    Smoke,
    /// Laptop-scale runs (the scale behind `EXPERIMENTS.md`).
    Default,
    /// The paper's cardinalities (172,891 / 28,452 / 1M tuples).
    Full,
}

impl Scale {
    /// Reads the scale from `IR_BENCH_SCALE` (defaults to `smoke`).
    pub fn from_env() -> Scale {
        match std::env::var("IR_BENCH_SCALE").unwrap_or_default().as_str() {
            "full" => Scale::Full,
            "default" => Scale::Default,
            _ => Scale::Smoke,
        }
    }
}

/// The three evaluation datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchDataset {
    /// WSJ-like sparse TF-IDF corpus.
    Wsj,
    /// KB-like image feature vectors.
    Kb,
    /// ST correlated synthetic data.
    St,
}

impl BenchDataset {
    /// Display name used in table headers.
    pub fn name(&self) -> &'static str {
        match self {
            BenchDataset::Wsj => "WSJ-like",
            BenchDataset::Kb => "KB-like",
            BenchDataset::St => "ST",
        }
    }

    /// Generates the dataset at the given scale (deterministic).
    pub fn generate(&self, scale: Scale) -> Dataset {
        match self {
            BenchDataset::Wsj => {
                let config = match scale {
                    Scale::Smoke => TextCorpusConfig {
                        num_docs: 3_000,
                        vocabulary: 2_500,
                        mean_distinct_terms: 25.0,
                        zipf_exponent: 1.0,
                    },
                    Scale::Default => TextCorpusConfig::default(),
                    Scale::Full => TextCorpusConfig::full_scale(),
                };
                TextCorpusGenerator::new(config).generate_corpus(0xC0FFEE)
            }
            BenchDataset::Kb => {
                let config = match scale {
                    Scale::Smoke => FeatureConfig {
                        num_images: 2_000,
                        num_features: 512,
                        latent_factors: 16,
                        activation_rate: 0.08,
                    },
                    Scale::Default => FeatureConfig::default(),
                    Scale::Full => FeatureConfig::full_scale(),
                };
                FeatureVectorGenerator::new(config).generate_dataset(0xC0FFEE)
            }
            BenchDataset::St => {
                let config = match scale {
                    Scale::Smoke => CorrelatedConfig {
                        cardinality: 3_000,
                        dimensionality: 20,
                        correlation: 0.5,
                    },
                    Scale::Default => CorrelatedConfig::default(),
                    Scale::Full => CorrelatedConfig::full_scale(),
                };
                CorrelatedGenerator::new(config).generate_dataset(0xC0FFEE)
            }
        }
    }

    /// How query dimensions are selected for this dataset.
    pub fn selection(&self) -> DimSelection {
        match self {
            BenchDataset::Wsj => DimSelection::PopularityBiased,
            _ => DimSelection::Uniform,
        }
    }

    /// The standard workload of `num_queries` queries over `dataset` with
    /// the given `qlen` and `k` (the seeded generation every runner and
    /// bench shares).
    pub fn workload_for(
        &self,
        dataset: &Dataset,
        qlen: usize,
        k: usize,
        num_queries: usize,
    ) -> IrResult<QueryWorkload> {
        QueryWorkload::generate(
            dataset,
            &WorkloadConfig {
                qlen,
                k,
                num_queries,
                min_postings: (2 * k).max(20),
                max_postings: usize::MAX,
                selection: self.selection(),
                equal_weights: false,
            },
            0xBEEF,
        )
    }

    /// Builds the (in-memory) index plus a workload of `num_queries`
    /// queries with the given `qlen` and `k`.
    pub fn prepare(
        &self,
        scale: Scale,
        qlen: usize,
        k: usize,
        num_queries: usize,
    ) -> IrResult<(TopKIndex, QueryWorkload)> {
        let dataset = self.generate(scale);
        let index = TopKIndex::build_in_memory(&dataset)?;
        let workload = self.workload_for(&dataset, qlen, k, num_queries)?;
        Ok((index, workload))
    }

    /// Like [`BenchDataset::prepare`], but wrapping the index into an
    /// [`IrEngine`] with `threads` batch workers on the requested storage
    /// backend — the front door every figure runner serves its workload
    /// through. File and mmap backends build onto a scratch page directory
    /// (see [`crate::cli::materialize_backend`]).
    pub fn prepare_engine(
        &self,
        scale: Scale,
        qlen: usize,
        k: usize,
        num_queries: usize,
        threads: usize,
        backend: BackendKind,
    ) -> EngineResult<(IrEngine, QueryWorkload)> {
        self.prepare_engine_faulty(scale, qlen, k, num_queries, threads, backend, None, None)
    }

    /// [`BenchDataset::prepare_engine`] driven by parsed runner options —
    /// worker count, storage backend, the optional fault plan from
    /// `--fault-plan` and the optional snapshot staging root from
    /// `--snapshot-dir` (serve the figure from a reopened snapshot instead
    /// of the freshly built index).
    pub fn prepare_engine_for(
        &self,
        scale: Scale,
        qlen: usize,
        k: usize,
        num_queries: usize,
        args: &crate::cli::BenchArgs,
    ) -> EngineResult<(IrEngine, QueryWorkload)> {
        self.prepare_engine_faulty(
            scale,
            qlen,
            k,
            num_queries,
            args.threads,
            args.backend,
            args.fault_plan.clone(),
            args.snapshot_dir.as_deref(),
        )
    }

    /// [`BenchDataset::prepare_engine`] with an optional [`FaultPlan`] and
    /// an optional snapshot staging root.
    ///
    /// With a fault plan the engine's device executes it, armed after the
    /// index build (or after the snapshot trailer read) so the injected
    /// faults strike the measured queries. With a snapshot root the index
    /// is built once in memory, saved into a unique staging directory
    /// under the root, and the serving engine is reopened from that
    /// snapshot on the requested backend — deterministic query output is
    /// identical either way; only the cold-start provenance (stamped via
    /// [`crate::cli::note_cold_start`]) differs.
    #[allow(clippy::too_many_arguments)]
    pub fn prepare_engine_faulty(
        &self,
        scale: Scale,
        qlen: usize,
        k: usize,
        num_queries: usize,
        threads: usize,
        backend: BackendKind,
        fault_plan: Option<FaultPlan>,
        snapshot_dir: Option<&Path>,
    ) -> EngineResult<(IrEngine, QueryWorkload)> {
        let dataset = self.generate(scale);
        let workload = self.workload_for(&dataset, qlen, k, num_queries)?;
        if let Some(root) = snapshot_dir {
            // Build a pristine in-memory index once, persist it, and let
            // the staged snapshot serve the figure. The builder engine
            // never sees the fault plan: faults are meant to strike the
            // measured (snapshot-served) engine, mirroring how the built
            // path arms them only after construction.
            let staged = StagedSnapshotDir::unique(root);
            let built = IrEngine::builder().dataset_ref(&dataset).build()?;
            built.save_snapshot(staged.path())?;
            drop(built);
            // With a snapshot source only the backend's *kind* matters
            // (the snapshot file is served in place); the staged path on
            // the variant documents where the pages live.
            let storage = match backend {
                BackendKind::Mem => ir_storage::StorageBackend::Memory,
                BackendKind::File => ir_storage::StorageBackend::Disk(staged.path().to_path_buf()),
                BackendKind::Mmap => ir_storage::StorageBackend::Mmap(staged.path().to_path_buf()),
            };
            let mut builder = IrEngine::builder()
                .open_snapshot(staged.path())
                .backend(storage)
                .threads(threads);
            if let Some(plan) = fault_plan {
                builder = builder.fault_plan(plan);
            }
            let engine = builder.build()?;
            crate::cli::note_cold_start(engine.cold_start_info());
            // The engine is up (descriptor/mapping established), so the
            // staging directory may go — success and error paths alike
            // clean up via the guard's drop.
            drop(staged);
            return Ok((engine, workload));
        }
        let (storage, scratch) = crate::cli::materialize_backend(backend)?;
        let mut builder = IrEngine::builder()
            .dataset_ref(&dataset)
            .backend(storage)
            .threads(threads);
        if let Some(plan) = fault_plan {
            builder = builder.fault_plan(plan);
        }
        let engine = builder.build()?;
        crate::cli::note_cold_start(engine.cold_start_info());
        // The scratch guard may drop now: the store holds its descriptor to
        // the (unlinked) page file for the engine's lifetime.
        drop(scratch);
        Ok((engine, workload))
    }

    /// Number of queries to average over at the given scale (the paper uses
    /// 100).
    pub fn queries_per_point(scale: Scale) -> usize {
        match scale {
            Scale::Smoke => 5,
            Scale::Default => 25,
            Scale::Full => 100,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_prepares_all_datasets() {
        for dataset in [BenchDataset::Wsj, BenchDataset::Kb, BenchDataset::St] {
            let (index, workload) = dataset.prepare(Scale::Smoke, 3, 10, 2).unwrap();
            assert!(index.cardinality() >= 2_000, "{}", dataset.name());
            assert_eq!(workload.len(), 2);
        }
    }

    #[test]
    fn scale_from_env_defaults_to_smoke() {
        std::env::remove_var("IR_BENCH_SCALE");
        assert_eq!(Scale::from_env(), Scale::Smoke);
    }

    #[test]
    fn prepare_engine_with_snapshot_dir_serves_identically() {
        use ir_storage::ColdStartSource;

        let root = tempfile::tempdir().unwrap();
        let args = crate::cli::BenchArgs {
            snapshot_dir: Some(root.path().to_path_buf()),
            ..Default::default()
        };
        let (engine, workload) = BenchDataset::St
            .prepare_engine_for(Scale::Smoke, 2, 5, 2, &args)
            .unwrap();
        let info = engine.cold_start_info();
        assert_eq!(info.source, ColdStartSource::Snapshot);
        // The stamp reaches the emitted policy metadata (same thread).
        let policy = args.policy_with(ir_core::RegionConfig::default());
        assert_eq!(policy.cold_start, info);

        // Deterministic output identical to the built path.
        let (built, _) = BenchDataset::St
            .prepare_engine(Scale::Smoke, 2, 5, 2, 1, BackendKind::Mem)
            .unwrap();
        assert_eq!(built.cold_start_info().source, ColdStartSource::Built);
        for query in workload.queries() {
            assert_eq!(
                engine.query(query).unwrap().dims,
                built.query(query).unwrap().dims
            );
        }
    }

    #[test]
    fn snapshot_staging_dirs_are_cleaned_up() {
        let root = tempfile::tempdir().unwrap();
        let list = |root: &Path| -> Vec<PathBuf> {
            std::fs::read_dir(root)
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect()
        };

        // Success path: the staged `snap-*` dir is gone by the time
        // `prepare_engine_faulty` returns, on every backend, and the
        // engine still serves from its (unlinked) snapshot.
        let mut backends = vec![BackendKind::Mem, BackendKind::File];
        if cfg!(feature = "mmap") {
            backends.push(BackendKind::Mmap);
        }
        for backend in backends {
            let (engine, workload) = BenchDataset::St
                .prepare_engine_faulty(Scale::Smoke, 2, 5, 2, 1, backend, None, Some(root.path()))
                .unwrap();
            assert_eq!(
                list(root.path()),
                Vec::<PathBuf>::new(),
                "{backend:?}: staging dir leaked"
            );
            let _ = engine.query(&workload.queries()[0]).unwrap();
        }

        // Error path: an impossible workload config fails preparation
        // before any staging, and a pre-created collision in the staging
        // root never survives a failed run either.
        let err = BenchDataset::St.prepare_engine_faulty(
            Scale::Smoke,
            50,
            5,
            2,
            1,
            BackendKind::Mem,
            None,
            Some(root.path()),
        );
        assert!(err.is_err());
        assert_eq!(list(root.path()), Vec::<PathBuf>::new());

        // The guard itself removes a populated staging dir on drop.
        let staged = StagedSnapshotDir::unique(root.path());
        std::fs::create_dir_all(staged.path()).unwrap();
        std::fs::write(staged.path().join("snapshot.bin"), b"x").unwrap();
        drop(staged);
        assert_eq!(list(root.path()), Vec::<PathBuf>::new());
    }

    #[test]
    fn prepare_engine_serves_from_any_backend() {
        let mut backends = vec![BackendKind::Mem, BackendKind::File];
        if cfg!(feature = "mmap") {
            backends.push(BackendKind::Mmap);
        }
        let mut reports = Vec::new();
        for backend in backends {
            let (engine, workload) = BenchDataset::St
                .prepare_engine(Scale::Smoke, 2, 5, 2, 1, backend)
                .unwrap();
            assert_eq!(engine.backend_kind(), backend);
            reports.push(engine.query(&workload.queries()[0]).unwrap());
        }
        // Identical output regardless of the backend.
        for other in &reports[1..] {
            assert_eq!(reports[0].dims, other.dims);
        }
    }
}
