//! `BENCH_<figure>.json` emission and regression comparison.
//!
//! Each figure runner can serialize its printed table as a JSON series
//! (grouped per method, points in x order). A smoke-scale baseline of these
//! files is committed under `bench_baselines/`; `ci.sh` re-runs the
//! runners, emits fresh series and diffs them against the baseline with
//! [`compare_figures`]. The comparison checks *shape* (methods present, x
//! grids) and the deterministic metrics (evaluated candidates, logical
//! reads, memory) plus cross-method dominance — never wall-clock or
//! physical-read timings, which vary run to run.

use crate::metrics::{MethodMeasurement, MethodSeries};
use crate::runner::ExperimentTable;
use immutable_regions::engine::EnginePolicy;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One figure's emitted series: everything `BENCH_<figure>.json` holds.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Figure identifier (the `<figure>` part of the file name).
    pub figure: String,
    /// Label of the x-axis (`qlen`, `k`, `phi`).
    pub x_label: String,
    /// The engine-policy template the runner served the workload with:
    /// the settings shared by every row (perturbation mode, the fixed φ if
    /// any) plus the worker count. The per-series algorithm and the swept
    /// x-axis parameter (`x_label`) override it row by row. Metadata only —
    /// never compared by [`compare_figures`]: the deterministic series are
    /// worker-count invariant by construction.
    pub policy: EnginePolicy,
    /// One series per method, in first-appearance order.
    pub series: Vec<MethodSeries>,
}

/// Groups a printed table into per-method series (points kept in x order of
/// appearance, methods in first-appearance order), stamped with the engine
/// policy that produced it.
pub fn table_to_series(
    figure: &str,
    table: &ExperimentTable,
    policy: EnginePolicy,
) -> FigureSeries {
    let mut series: Vec<MethodSeries> = Vec::new();
    for row in &table.rows {
        match series.iter_mut().find(|s| s.algorithm == row.algorithm) {
            Some(existing) => existing.points.push(row.clone()),
            None => series.push(MethodSeries {
                algorithm: row.algorithm.clone(),
                points: vec![row.clone()],
            }),
        }
    }
    FigureSeries {
        figure: figure.to_string(),
        x_label: table.x_label.clone(),
        policy,
        series,
    }
}

/// The canonical file name of a figure's series.
pub fn bench_file_name(figure: &str) -> String {
    format!("BENCH_{figure}.json")
}

/// Writes the series as `BENCH_<figure>.json` under `dir` (created if
/// missing). Returns the written path.
pub fn write_figure(dir: &Path, series: &FigureSeries) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(bench_file_name(&series.figure));
    let json = serde_json::to_string(series)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Reads a previously emitted `BENCH_<figure>.json`.
pub fn read_figure(path: &Path) -> Result<FigureSeries, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&json).map_err(|e| format!("{}: {e}", path.display()))
}

/// Relative tolerance for the deterministic metrics. The series are exact
/// re-runs of seeded workloads, so 1% absorbs only numeric formatting
/// drift, not behavioural change.
const REL_TOLERANCE: f64 = 0.01;

fn relative_mismatch(
    metric: &str,
    baseline: f64,
    candidate: f64,
    tolerance: f64,
) -> Option<String> {
    let scale = baseline.abs().max(1.0);
    if (candidate - baseline).abs() > tolerance * scale {
        Some(format!(
            "{metric}: baseline {baseline:.4}, candidate {candidate:.4}"
        ))
    } else {
        None
    }
}

fn point_violations(
    figure: &str,
    algorithm: &str,
    b: &MethodMeasurement,
    c: &MethodMeasurement,
    tolerance: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    let at = format!("{figure}/{algorithm} @ x={}", b.x);
    if (b.x - c.x).abs() > 1e-9 {
        out.push(format!("{at}: x grid moved to {}", c.x));
        return out;
    }
    for (metric, baseline, candidate) in [
        (
            "evaluated_per_dim",
            b.evaluated_per_dim,
            c.evaluated_per_dim,
        ),
        ("logical_reads", b.logical_reads, c.logical_reads),
        ("memory_kbytes", b.memory_kbytes, c.memory_kbytes),
    ] {
        if let Some(v) = relative_mismatch(metric, baseline, candidate, tolerance) {
            out.push(format!("{at}: {v}"));
        }
    }
    out
}

/// Compares a fresh emission against the committed baseline. Returns a
/// list of violations (empty = pass): shape changes (missing methods,
/// different x grids), deterministic-metric drift beyond tolerance, and
/// broken cross-method dominance (a pruning/thresholding method evaluating
/// more than Scan).
pub fn compare_figures(baseline: &FigureSeries, candidate: &FigureSeries) -> Vec<String> {
    compare_figures_with_tolerance(baseline, candidate, REL_TOLERANCE)
}

/// [`compare_figures`] with an explicit relative tolerance for the
/// deterministic metrics. A tolerance of `0.0` demands exact equality —
/// what the CI backend matrix uses to prove a mem-backend emission and an
/// mmap-backend emission of the same run are interchangeable. (Wall-clock
/// and physical-read metrics are never compared at any tolerance; those
/// legitimately differ run to run.)
pub fn compare_figures_with_tolerance(
    baseline: &FigureSeries,
    candidate: &FigureSeries,
    tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    let figure = &baseline.figure;
    if baseline.x_label != candidate.x_label {
        violations.push(format!(
            "{figure}: x-label changed from `{}` to `{}`",
            baseline.x_label, candidate.x_label
        ));
    }
    for base_series in &baseline.series {
        let Some(cand_series) = candidate
            .series
            .iter()
            .find(|s| s.algorithm == base_series.algorithm)
        else {
            violations.push(format!(
                "{figure}: method `{}` missing from candidate",
                base_series.algorithm
            ));
            continue;
        };
        if base_series.points.len() != cand_series.points.len() {
            violations.push(format!(
                "{figure}/{}: {} points in baseline, {} in candidate",
                base_series.algorithm,
                base_series.points.len(),
                cand_series.points.len()
            ));
            continue;
        }
        for (b, c) in base_series.points.iter().zip(&cand_series.points) {
            violations.extend(point_violations(
                figure,
                &base_series.algorithm,
                b,
                c,
                tolerance,
            ));
        }
    }
    for extra in candidate
        .series
        .iter()
        .filter(|c| !baseline.series.iter().any(|b| b.algorithm == c.algorithm))
    {
        violations.push(format!(
            "{figure}: method `{}` not in baseline",
            extra.algorithm
        ));
    }
    // Cross-method dominance: at matching x, Scan is never cheaper in
    // evaluated candidates than the pruning/thresholding methods — the
    // shape every figure of the paper exhibits.
    if let Some(scan) = candidate.series.iter().find(|s| s.algorithm == "Scan") {
        for other in candidate
            .series
            .iter()
            .filter(|s| ["Prune", "Thres", "CPT"].contains(&s.algorithm.as_str()))
        {
            for point in &other.points {
                if let Some(scan_point) = scan.points.iter().find(|p| (p.x - point.x).abs() < 1e-9)
                {
                    if point.evaluated_per_dim > scan_point.evaluated_per_dim * (1.0 + 1e-9) + 1e-9
                    {
                        violations.push(format!(
                            "{figure}/{} @ x={}: evaluates more candidates than Scan ({:.4} > {:.4})",
                            other.algorithm,
                            point.x,
                            point.evaluated_per_dim,
                            scan_point.evaluated_per_dim
                        ));
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_core::Algorithm;

    fn sample_table() -> ExperimentTable {
        let mut table = ExperimentTable::new("Figure T", "qlen");
        for x in [2.0, 4.0] {
            for algorithm in [Algorithm::Scan, Algorithm::Cpt] {
                let mut row = MethodMeasurement::new(algorithm, x);
                row.evaluated_per_dim = if algorithm == Algorithm::Scan {
                    10.0 * x
                } else {
                    3.0 * x
                };
                row.logical_reads = 100.0 * x;
                row.memory_kbytes = 1.5 * x;
                table.push(row);
            }
        }
        table
    }

    #[test]
    fn series_roundtrip_through_json() {
        let series = table_to_series("figureT", &sample_table(), EnginePolicy::default());
        assert_eq!(series.series.len(), 2);
        assert_eq!(series.series[0].algorithm, "Scan");
        assert_eq!(series.series[0].points.len(), 2);
        let json = serde_json::to_string(&series).unwrap();
        let back: FigureSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(series, back);
    }

    #[test]
    fn write_and_read_figure_file() {
        let dir = tempfile::tempdir().unwrap();
        let series = table_to_series("figureT", &sample_table(), EnginePolicy::default());
        let path = write_figure(dir.path(), &series).unwrap();
        assert!(path.ends_with("BENCH_figureT.json"));
        let back = read_figure(&path).unwrap();
        assert_eq!(series, back);
    }

    #[test]
    fn identical_series_pass_comparison() {
        let series = table_to_series("figureT", &sample_table(), EnginePolicy::default());
        assert!(compare_figures(&series, &series).is_empty());
    }

    #[test]
    fn drift_and_shape_changes_are_flagged() {
        let baseline = table_to_series("figureT", &sample_table(), EnginePolicy::default());

        // Metric drift beyond tolerance.
        let mut drifted = baseline.clone();
        drifted.series[1].points[0].evaluated_per_dim *= 2.0;
        let violations = compare_figures(&baseline, &drifted);
        assert!(violations.iter().any(|v| v.contains("evaluated_per_dim")));

        // Missing method.
        let mut missing = baseline.clone();
        missing.series.pop();
        assert!(compare_figures(&baseline, &missing)
            .iter()
            .any(|v| v.contains("missing")));

        // Broken dominance: CPT above Scan.
        let mut broken = baseline.clone();
        broken.series[1].points[0].evaluated_per_dim = 1e6;
        assert!(compare_figures(&baseline, &broken)
            .iter()
            .any(|v| v.contains("more candidates than Scan")));

        // Wall-clock-style metrics are ignored entirely.
        let mut timed = baseline.clone();
        timed.series[0].points[0].cpu_time_ms = 1e9;
        timed.series[0].points[0].io_time_ms = 1e9;
        timed.series[0].points[0].physical_reads = 1e9;
        assert!(compare_figures(&baseline, &timed).is_empty());
    }

    #[test]
    fn zero_tolerance_demands_exact_deterministic_metrics() {
        let baseline = table_to_series("figureT", &sample_table(), EnginePolicy::default());
        // A drift far below the default 1% tolerance...
        let mut hair = baseline.clone();
        hair.series[0].points[0].logical_reads += 0.001;
        assert!(compare_figures(&baseline, &hair).is_empty());
        // ...still fails the exact comparison the backend matrix uses.
        let violations = compare_figures_with_tolerance(&baseline, &hair, 0.0);
        assert!(violations.iter().any(|v| v.contains("logical_reads")));
        // Identical series pass exactly; timing metrics stay exempt.
        let mut timed = baseline.clone();
        timed.series[0].points[0].cpu_time_ms = 1e9;
        timed.series[0].points[0].physical_reads = 1e9;
        assert!(compare_figures_with_tolerance(&baseline, &timed, 0.0).is_empty());
    }
}
